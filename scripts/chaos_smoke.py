#!/usr/bin/env python
"""CI smoke test for the robustness layer, at the process level.

Two end-to-end scenarios against the real ``python -m repro batch``
CLI over the synthetic PERFECT corpus:

1. **kill -9 and resume.**  Start a checkpointed batch slowed by a
   chaos hang plan (some shard workers sleep at entry, others do not,
   so the checkpoint fills while work is still in flight), SIGKILL the
   driver once at least one shard has been recorded, then rerun with
   ``--resume`` and assert the stdout report is **bit-identical** to
   an uninterrupted run of the same batch.

2. **seeded crash storm.**  Run the same batch under a fault plan that
   crashes a fraction of all shard workers, with the watchdog armed.
   The run must exit 0 within the deadline (zero hangs), answer every
   query, and never flip a dependent verdict to independent (the
   conservative direction only).

Exits 0 when all checks pass, 1 otherwise.
"""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.robust.chaos import CRASH, ENV_VAR, HANG, FaultPlan  # noqa: E402

JOBS = 4
SCALE = 1.0
RUN_TIMEOUT_S = 300


def batch_cmd(*extra: str) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "batch",
        "--scale",
        str(SCALE),
        "-j",
        str(JOBS),
        *extra,
    ]


def run(cmd: list[str], plan: FaultPlan | None = None, **popen):
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    if plan is not None:
        env[ENV_VAR] = plan.to_json()
    return subprocess.run(
        cmd,
        cwd=str(REPO),
        env=env,
        capture_output=True,
        text=True,
        timeout=RUN_TIMEOUT_S,
        **popen,
    )


def pick_hang_plan() -> FaultPlan:
    """A plan where some first-attempt shard workers hang and some run
    free — the free ones fill the checkpoint while the hung ones keep
    the driver alive long enough to SIGKILL it mid-flight."""
    for seed in range(1000):
        plan = FaultPlan(seed=seed, hang_rate=0.5, hang_s=20.0)
        fates = [
            plan.peek("engine.shard", f"shard:{i}:0", (CRASH, HANG))
            for i in range(JOBS)
        ]
        if HANG in fates and None in fates:
            return plan
    raise AssertionError("no suitable hang seed in range")


def check_kill_and_resume(tmp: pathlib.Path) -> list[str]:
    reference = run(batch_cmd("--checkpoint", str(tmp / "ref.json")))
    if reference.returncode != 0:
        return [f"reference run exited {reference.returncode}: "
                f"{reference.stderr[-500:]}"]

    ckpt = tmp / "victim.json"
    plan = pick_hang_plan()
    env = {
        "PYTHONPATH": str(REPO / "src"),
        "PATH": "/usr/bin:/bin",
        ENV_VAR: plan.to_json(),
    }
    victim = subprocess.Popen(
        batch_cmd("--checkpoint", str(ckpt)),
        cwd=str(REPO),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    # Wait for a *valid* partial checkpoint, then SIGKILL — no
    # warning, no cleanup, exactly the crash the format must survive.
    deadline = time.monotonic() + 60
    shards_recorded = 0
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            return [
                "victim batch finished before it could be killed "
                f"(exit {victim.returncode}); hang plan ineffective"
            ]
        try:
            shards_recorded = len(json.loads(ckpt.read_text())["shards"])
        except (OSError, ValueError, KeyError):
            shards_recorded = 0
        if shards_recorded:
            break
        time.sleep(0.02)
    if not shards_recorded:
        victim.kill()
        return ["no shard was checkpointed within 60s"]
    victim.kill()  # SIGKILL: the checkpoint is all that survives
    victim.wait(timeout=30)

    resumed = run(batch_cmd("--checkpoint", str(ckpt), "--resume"))
    if resumed.returncode != 0:
        return [f"resume exited {resumed.returncode}: {resumed.stderr[-500:]}"]
    if resumed.stdout != reference.stdout:
        return [
            "resumed report is not bit-identical to the uninterrupted "
            f"run:\n--- reference\n{reference.stdout}\n--- resumed\n"
            f"{resumed.stdout}"
        ]
    print(
        f"ok: killed -9 with {shards_recorded} shard(s) checkpointed; "
        "--resume output bit-identical to the uninterrupted run"
    )
    return []


_TOTALS = re.compile(r"(\d+) dependent / (\d+) independent")


def parse_totals(stdout: str) -> tuple[int, int]:
    match = _TOTALS.search(stdout)
    assert match, f"no totals line in: {stdout!r}"
    return int(match.group(1)), int(match.group(2))


def check_crash_storm(tmp: pathlib.Path) -> list[str]:
    clean = run(batch_cmd())
    if clean.returncode != 0:
        return [f"clean run exited {clean.returncode}"]
    plan = FaultPlan(seed=18, crash_rate=0.4)
    start = time.monotonic()
    stormy = run(
        batch_cmd("--shard-timeout", "60", "--shard-retries", "1"),
        plan=plan,
    )
    elapsed = time.monotonic() - start
    if stormy.returncode != 0:
        return [
            f"crash-storm run exited {stormy.returncode}: "
            f"{stormy.stderr[-500:]}"
        ]
    dep_clean, ind_clean = parse_totals(clean.stdout)
    dep_storm, ind_storm = parse_totals(stormy.stdout)
    if dep_clean + ind_clean != dep_storm + ind_storm:
        return [
            f"query count drifted under chaos: "
            f"{dep_storm + ind_storm} != {dep_clean + ind_clean}"
        ]
    if dep_storm < dep_clean:
        # Degradation may only add conservative "dependent" answers —
        # a dependence lost under chaos is a correctness violation.
        return [
            f"chaos flipped dependences to independent: "
            f"{dep_storm} dependent < clean {dep_clean}"
        ]
    quarantined = stormy.stdout.count("] ")  # quarantine detail lines
    print(
        f"ok: crash storm survived in {elapsed:.1f}s; "
        f"{dep_storm}/{dep_storm + ind_storm} dependent "
        f"(clean: {dep_clean}), {quarantined} quarantine line(s)"
    )
    return []


def main() -> int:
    import tempfile

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = pathlib.Path(tmpdir)
        print("scenario 1: kill -9 mid-batch, then --resume ...")
        failures = check_kill_and_resume(tmp)
        if failures:
            print(f"FAIL: {failures[0]}", file=sys.stderr)
            return 1
        print("scenario 2: seeded worker crash storm ...")
        failures = check_crash_storm(tmp)
        if failures:
            print(f"FAIL: {failures[0]}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    status = main()
    print(f"chaos smoke finished in {time.perf_counter() - start:.1f}s")
    sys.exit(status)
