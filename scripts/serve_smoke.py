#!/usr/bin/env python
"""CI smoke test for the dependence daemon (repro.serve).

End-to-end, at the process level:

1. start ``python -m repro serve`` as a subprocess and read the
   announced port;
2. fire 200 queries from 8 concurrent clients (each client pipelines
   the full stream) and assert every response is **bit-identical** to
   a serial ``analyze_batch`` run over the same queries;
3. SIGTERM the daemon while a second wave of load is in flight and
   assert a clean drain: the process exits 0 and every response that
   did arrive is either a correct answer or an explicit
   ``shutting_down`` error — never garbage, never a hang.

Exits 0 when all checks pass, 1 otherwise.
"""

from __future__ import annotations

import json
import pathlib
import signal
import subprocess
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import DependenceReport  # noqa: E402
from repro.core.engine import analyze_batch, queries_from_suite  # noqa: E402
from repro.ir.serde import query_to_dict  # noqa: E402
from repro.perfect import load_suite  # noqa: E402
from repro.serve import protocol  # noqa: E402
from repro.serve.client import ServeClient, ServeError  # noqa: E402

N_QUERIES = 200
N_CLIENTS = 8


def build_workload():
    queries = queries_from_suite(
        load_suite(include_symbolic=True, scale=0.02)
    )[:N_QUERIES]
    assert len(queries) == N_QUERIES, f"corpus too small: {len(queries)}"
    serial = analyze_batch(queries, jobs=1, want_directions=True)
    expected = [
        protocol.report_to_wire(
            DependenceReport.from_results(
                str(outcome.query.ref1),
                str(outcome.query.ref2),
                outcome.result,
                outcome.directions,
            )
        )
        for outcome in serial.outcomes
    ]
    calls = [
        (
            "analyze",
            {
                "query": query_to_dict(q.ref1, q.nest1, q.ref2, q.nest2),
                "directions": True,
            },
        )
        for q in queries
    ]
    return calls, expected


def start_server() -> tuple[subprocess.Popen, str, int]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--queue-limit",
            "50000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    line = proc.stdout.readline()
    announce = json.loads(line)["serving"]
    return proc, announce["host"], announce["port"]


def check_bit_identical(host: str, port: int, calls, expected) -> list[str]:
    failures: list[str] = []

    def worker(index: int):
        try:
            with ServeClient.connect(
                host, port, timeout=120.0, retry_for=10.0
            ) as client:
                results = client.call_many(calls)
            for i, (got, want) in enumerate(zip(results, expected)):
                if got != want:
                    failures.append(
                        f"client {index} query {i}: {got!r} != {want!r}"
                    )
                    return
        except Exception as err:
            failures.append(f"client {index}: {err!r}")

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(300)
    return failures


def check_sigterm_drain(proc, host, port, calls, expected) -> list[str]:
    """SIGTERM mid-load: exit 0, and nothing but answers or explicit
    shutting_down errors come back."""
    failures: list[str] = []
    fired = threading.Event()

    def loader():
        try:
            with ServeClient.connect(host, port, timeout=120.0) as client:
                for i, (op, params) in enumerate(calls):
                    if i == 20:
                        fired.set()  # enough in flight: time to SIGTERM
                    try:
                        got = client.call(op, params)
                        if got != expected[i]:
                            failures.append(
                                f"drain query {i}: {got!r} != {expected[i]!r}"
                            )
                            return
                    except ServeError as err:
                        if err.code != protocol.ErrorCode.SHUTTING_DOWN:
                            failures.append(
                                f"drain query {i}: unexpected {err!r}"
                            )
                        return
        except (ConnectionError, OSError):
            pass  # the drain closed the connection after in-flight work

    threads = [threading.Thread(target=loader) for _ in range(N_CLIENTS)]
    for t in threads:
        t.start()
    assert fired.wait(60), "load never ramped"
    proc.send_signal(signal.SIGTERM)
    for t in threads:
        t.join(60)
    try:
        code = proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        failures.append("server did not exit within 60s of SIGTERM")
        return failures
    if code != 0:
        failures.append(f"server exited {code}, expected 0 after drain")
    return failures


def main() -> int:
    print(f"building workload: {N_QUERIES} queries, serial reference ...")
    calls, expected = build_workload()

    print("starting daemon ...")
    proc, host, port = start_server()
    try:
        print(
            f"serving on {host}:{port}; firing {N_CLIENTS} concurrent "
            f"clients x {N_QUERIES} queries ..."
        )
        failures = check_bit_identical(host, port, calls, expected)
        if failures:
            print(f"FAIL: {failures[0]}", file=sys.stderr)
            return 1
        print(
            f"ok: {N_CLIENTS * N_QUERIES} responses bit-identical to "
            "serial analyze_batch"
        )

        print("SIGTERM mid-load ...")
        failures = check_sigterm_drain(proc, host, port, calls, expected)
        if failures:
            print(f"FAIL: {failures[0]}", file=sys.stderr)
            return 1
        print("ok: clean drain, exit code 0")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


if __name__ == "__main__":
    start = time.perf_counter()
    status = main()
    print(f"serve smoke finished in {time.perf_counter() - start:.1f}s")
    sys.exit(status)
