#!/usr/bin/env python
"""CI smoke test for incremental re-analysis (repro.core.incremental).

The gauntlet that proves **delta ≡ full**: drive one
:class:`IncrementalSession` through a seeded 200-edit storm and, after
*every* edit, compare the incrementally maintained graph's full dump
(edge list, ``edge_dicts`` serde, DOT text) against a cold full
re-analysis of the current program.  Any divergence — one edge, one
byte of DOT — fails the job.

Also enforces the efficiency side on the larger program: across the
storm the session must reuse far more pair answers than it re-queries,
or the delta engine is full re-analysis in disguise.

With ``--stats-out PATH`` writes a per-edit stats artifact — one
record per edit: kind, kept/dirty/removed counts, pairs reused vs
re-queried, edge count, delta and full wall times — which CI passes
explicitly and uploads for offline inspection.  Without the flag
nothing is written to disk.

Exits 0 when every edit's graphs match, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.incremental import IncrementalSession, full_graph  # noqa: E402
from repro.fuzz.edits import mutate, storm_program  # noqa: E402

SEED = 20260807
N_EDITS = 200
STATEMENTS = 16
ARRAYS = 6


def run_storm(seed: int, n_edits: int) -> tuple[list[dict], list[str]]:
    """One seeded storm; per-edit stats plus any mismatch messages."""
    rng = random.Random(seed)
    program = storm_program(seed, statements=STATEMENTS, arrays=ARRAYS)
    session = IncrementalSession()
    session.update(program)
    stats: list[dict] = []
    mismatches: list[str] = []
    for index in range(n_edits):
        program, description = mutate(program, rng, arrays=ARRAYS)
        start = time.perf_counter()
        report = session.update(program)
        delta_s = time.perf_counter() - start

        start = time.perf_counter()
        reference = full_graph(program)
        full_s = time.perf_counter() - start

        identical = (
            session.graph.edges == reference.edges
            and session.graph.edge_dicts() == reference.edge_dicts()
            and session.graph.to_dot() == reference.to_dot()
        )
        if not identical:
            mismatches.append(
                f"edit {index} ({description}): delta graph has "
                f"{len(session.graph.edges)} edges, full has "
                f"{len(reference.edges)}"
            )
        stats.append(
            {
                "edit": index,
                "kind": description.split()[0],
                "description": description,
                "statements": len(program.statements),
                "kept": len(report.delta.kept),
                "dirty": len(report.delta.dirty),
                "removed": len(report.delta.removed),
                "pairs": report.total_pairs,
                "reused": report.reused_pairs,
                "requeried": report.requeried_pairs,
                "requery_fraction": round(report.requery_fraction, 4),
                "edges": report.edges,
                "delta_ms": round(delta_s * 1000.0, 3),
                "full_ms": round(full_s * 1000.0, 3),
                "identical": identical,
            }
        )
    return stats, mismatches


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--edits", type=int, default=N_EDITS)
    parser.add_argument(
        "--stats-out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write the per-edit stats artifact here (default: nowhere)",
    )
    args = parser.parse_args()

    print(
        f"incremental smoke: {args.edits}-edit storm (seed {args.seed}), "
        "delta vs cold full after every edit"
    )
    stats, mismatches = run_storm(args.seed, args.edits)

    total_reused = sum(s["reused"] for s in stats)
    total_requeried = sum(s["requeried"] for s in stats)
    delta_ms = sum(s["delta_ms"] for s in stats)
    full_ms = sum(s["full_ms"] for s in stats)
    kinds = sorted({s["kind"] for s in stats})
    summary = {
        "seed": args.seed,
        "edits": args.edits,
        "kinds": kinds,
        "reused_pairs": total_reused,
        "requeried_pairs": total_requeried,
        "delta_total_ms": round(delta_ms, 1),
        "full_total_ms": round(full_ms, 1),
        "mismatches": mismatches,
        "per_edit": stats,
    }
    print(
        f"  reused {total_reused} pair answers, re-queried "
        f"{total_requeried}; delta {delta_ms:.0f} ms vs full "
        f"{full_ms:.0f} ms total"
    )
    print(f"  edit kinds exercised: {', '.join(kinds)}")
    if args.stats_out is not None:
        args.stats_out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"  wrote {args.stats_out}")

    status = 0
    if mismatches:
        print(f"FAIL: {len(mismatches)} delta/full mismatch(es):")
        for message in mismatches:
            print(f"  - {message}")
        status = 1
    if set(kinds) != {"insert", "delete", "mutate"}:
        print(f"FAIL: storm exercised only {kinds}")
        status = 1
    if total_reused <= total_requeried:
        print(
            "FAIL: the delta path re-queried more than it reused "
            f"({total_requeried} vs {total_reused}) — full re-analysis "
            "in disguise"
        )
        status = 1
    if status == 0:
        print(
            f"OK: {args.edits} edits, delta ≡ full after every one "
            "(edges, serde and DOT all bit-identical)"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
