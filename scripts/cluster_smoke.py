#!/usr/bin/env python
"""CI chaos test for the serve cluster (repro.serve.cluster).

End-to-end, at the process level:

1. start ``python -m repro serve --cluster 4`` and read the announced
   router port plus every worker's pid;
2. fire 200 queries from 8 concurrent clients (each pipelines the
   full stream) and assert every response is **bit-identical** to a
   serial ``analyze_batch`` run over the same queries;
3. ``kill -9`` one worker while a second wave of load is in flight and
   assert **zero lost queries**: every client still receives an answer
   for every query, and every answer is still bit-identical — the
   router replays the dead worker's debt onto the re-sharded ring and
   the supervisor restarts it;
4. SIGTERM the supervisor and assert a clean drain (exit 0);
5. dump the router's merged metrics to ``cluster_stats.json`` as the
   CI artifact.

With ``--netchaos`` the script runs the *resilience* acceptance storm
instead: a seeded :class:`~repro.robust.netchaos.ChaosProxy` sits
between the client and the router, injecting delays, drops, resets and
torn frames while

1. a resilient client pushes 500 fuzz queries through the proxy in
   pipelined chunks, with one worker ``kill -9``'d mid-storm — zero
   lost queries, every answer bit-identical to serial
   ``analyze_batch``;
2. a durable incremental session applies 50 edits through the same
   proxy (another worker dies mid-session) and its final graph is
   bit-identical to an uninterrupted ``full_graph`` run;
3. the ``client.*`` and ``netchaos.*`` counters land in
   ``netchaos_stats.json`` as the CI artifact.

Exits 0 when all checks pass, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import DependenceReport  # noqa: E402
from repro.core.engine import analyze_batch, queries_from_suite  # noqa: E402
from repro.ir.serde import query_to_dict  # noqa: E402
from repro.perfect import load_suite  # noqa: E402
from repro.serve import protocol  # noqa: E402
from repro.serve.client import Client  # noqa: E402

N_QUERIES = 200
N_CLIENTS = 8
N_WORKERS = 4
STATS_OUT = "cluster_stats.json"

NETCHAOS_QUERIES = 500
NETCHAOS_EDITS = 50
NETCHAOS_CHUNK = 25
NETCHAOS_STATS_OUT = "netchaos_stats.json"


def build_workload():
    queries = queries_from_suite(
        load_suite(include_symbolic=True, scale=0.02)
    )[:N_QUERIES]
    assert len(queries) == N_QUERIES, f"corpus too small: {len(queries)}"
    serial = analyze_batch(queries, jobs=1, want_directions=True)
    expected = [
        protocol.report_to_wire(
            DependenceReport.from_results(
                str(outcome.query.ref1),
                str(outcome.query.ref2),
                outcome.result,
                outcome.directions,
            )
        )
        for outcome in serial.outcomes
    ]
    calls = [
        (
            "analyze",
            {
                "query": query_to_dict(q.ref1, q.nest1, q.ref2, q.nest2),
                "directions": True,
            },
        )
        for q in queries
    ]
    return calls, expected


def start_cluster() -> tuple[subprocess.Popen, dict]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--cluster",
            str(N_WORKERS),
            "--queue-limit",
            "50000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    line = proc.stdout.readline()
    announce = json.loads(line)["serving"]
    assert announce["cluster"] is True, announce
    assert len(announce["workers"]) == N_WORKERS, announce
    return proc, announce


def fire_clients(
    endpoint: str, calls, expected, kill_pid: int | None = None
) -> list[str]:
    """8 pipelined clients; optionally kill -9 a worker mid-load.

    Every client must get one bit-identical answer per query — no
    losses, no errors — whether or not a worker dies under it.
    """
    failures: list[str] = []
    fired = threading.Event()

    def worker(index: int):
        try:
            with Client(endpoint, timeout=240.0, retry_for=10.0) as client:
                results = client.call_many(calls)
            if len(results) != len(calls):
                failures.append(
                    f"client {index}: {len(results)}/{len(calls)} answers"
                )
                return
            for i, (got, want) in enumerate(zip(results, expected)):
                if got != want:
                    failures.append(
                        f"client {index} query {i}: {got!r} != {want!r}"
                    )
                    return
        except Exception as err:
            failures.append(f"client {index}: {err!r}")

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    if kill_pid is not None:
        time.sleep(0.1)  # the wave is connecting/pipelining right now
        os.kill(kill_pid, signal.SIGKILL)
        fired.set()
    for t in threads:
        t.join(600)
        if t.is_alive():
            failures.append("client thread hung")
    return failures


def dump_stats(endpoint: str) -> None:
    with Client(endpoint, timeout=60.0) as client:
        stats = client.stats()
    artifact = {
        "workers": N_WORKERS,
        "clients": N_CLIENTS,
        "queries": N_QUERIES,
        "router": stats["router"],
        "ring": stats["ring"],
    }
    pathlib.Path(STATS_OUT).write_text(json.dumps(artifact, indent=2))
    print(f"wrote {STATS_OUT}")


def build_fuzz_workload(n: int):
    """n fuzz queries plus the serial batch engine's wire answers."""
    from repro.core.engine import PairQuery
    from repro.fuzz.generator import generate_cases

    cases = generate_cases(seed=7, iterations=n)
    queries = [
        PairQuery(case.ref1, case.nest1, case.ref2, case.nest2)
        for case in cases
    ]
    serial = analyze_batch(queries, jobs=1, want_directions=True)
    expected = [
        protocol.report_to_wire(
            DependenceReport.from_results(
                str(outcome.query.ref1),
                str(outcome.query.ref2),
                outcome.result,
                outcome.directions,
            )
        )
        for outcome in serial.outcomes
    ]
    calls = [
        (
            "analyze",
            {
                "query": query_to_dict(q.ref1, q.nest1, q.ref2, q.nest2),
                "directions": True,
            },
        )
        for q in queries
    ]
    return calls, expected


def build_session_workload(edits: int):
    """An edit storm plus the clean final graph it must converge to."""
    import random

    from repro.core.incremental import full_graph
    from repro.fuzz.edits import mutate, storm_program
    from repro.lang.unparse import program_to_source

    rng = random.Random(41)
    program = storm_program(41, statements=8, arrays=4)
    sources = [program_to_source(program)]
    for _ in range(edits):
        program, _ = mutate(program, rng, arrays=4)
        sources.append(program_to_source(program))
    reference = full_graph(program)
    return sources, reference.edge_dicts(), reference.to_dot()


def run_netchaos(seed: int) -> int:
    from repro.robust.netchaos import ChaosProxy, NetFaultPlan
    from repro.serve.client import CircuitBreaker, RetryPolicy

    print(
        f"building workloads: {NETCHAOS_QUERIES} fuzz queries + "
        f"{NETCHAOS_EDITS}-edit session, serial references ..."
    )
    calls, expected = build_fuzz_workload(NETCHAOS_QUERIES)
    sources, ref_edges, ref_dot = build_session_workload(NETCHAOS_EDITS)

    print(f"starting --cluster {N_WORKERS} ...")
    proc, announce = start_cluster()
    pids = {w["id"]: w["pid"] for w in announce["workers"]}

    # Rates are calibrated to the retry budget (see the in-process twin
    # in tests/test_cluster.py): each fatal fault costs a retry round,
    # and drops additionally cost a socket timeout.
    plan = NetFaultPlan(
        seed=seed,
        delay_rate=0.02,
        drop_rate=0.001,
        reset_rate=0.006,
        torn_rate=0.006,
        delay_s=0.005,
    )
    proxy = ChaosProxy(plan, announce["host"], announce["port"])
    proxy_thread = threading.Thread(target=proxy.run, daemon=True)
    proxy_thread.start()
    assert proxy.started.wait(10), "proxy did not start"
    endpoint = f"tcp://{proxy.bound_host}:{proxy.bound_port}"

    def resilient_client() -> Client:
        return Client(
            endpoint,
            timeout=5.0,
            retry_for=10.0,
            retry=RetryPolicy(attempts=12, base_delay_s=0.01, deadline_s=300.0),
            breaker=CircuitBreaker(failure_threshold=100_000),
        )

    try:
        print(
            f"chaos storm on {endpoint} (seed {seed}): "
            f"{NETCHAOS_QUERIES} queries in chunks of {NETCHAOS_CHUNK}, "
            f"kill -9 of w1 (pid {pids['w1']}) mid-storm ..."
        )
        client = resilient_client()
        results = []
        with client:
            for start in range(0, len(calls), NETCHAOS_CHUNK):
                if start == len(calls) // 2:
                    os.kill(pids["w1"], signal.SIGKILL)
                results.extend(
                    client.call_many(calls[start : start + NETCHAOS_CHUNK])
                )
            query_counters = client.registry.counter_snapshot()["scalars"]
        if len(results) != len(expected):
            print(
                f"FAIL: {len(results)}/{len(expected)} answers",
                file=sys.stderr,
            )
            return 1
        mismatches = [
            i for i, (g, w) in enumerate(zip(results, expected)) if g != w
        ]
        if mismatches:
            i = mismatches[0]
            print(
                f"FAIL: {len(mismatches)} answers diverged; first at "
                f"{i}: {results[i]!r} != {expected[i]!r}",
                file=sys.stderr,
            )
            return 1
        if not proxy.injection_log():
            print("FAIL: chaos proxy injected nothing", file=sys.stderr)
            return 1
        print(
            f"ok: zero lost queries, {len(results)} answers bit-identical "
            f"through {len(proxy.injection_log())} injected faults "
            f"({dict(proxy.injected_counts())})"
        )

        # Mint a session id whose ring home is provably w2: placement
        # is a pure SHA-256 function of the worker ids, so the script
        # can replicate the router's decision and then kill exactly the
        # worker holding the session — a guaranteed failover, not a
        # 1-in-4 lottery.
        from repro.serve.router import HashRing

        ring = HashRing(tuple(sorted(pids)))
        sid = next(
            f"smoke-{i}"
            for i in range(10_000)
            if ring.node_for(
                protocol.canonical_json({"session": f"smoke-{i}"}).encode()
            )
            == "w2"
        )
        print(
            f"durable session {sid!r} (ring home w2): {NETCHAOS_EDITS} "
            f"edits through the proxy, kill -9 of w2 (pid {pids['w2']}) "
            "mid-session ..."
        )
        client = resilient_client()
        with client:
            opened_sid = client.open_session(
                source=sources[0], session_id=sid
            )["session"]
            assert opened_sid == sid, opened_sid
            for index, source in enumerate(sources[1:]):
                if index == NETCHAOS_EDITS // 2:
                    os.kill(pids["w2"], signal.SIGKILL)
                client.update_source(sid, source)
            graph = client.graph(sid)
            session_counters = client.registry.counter_snapshot()["scalars"]
        if not session_counters.get("client.session_replays"):
            print(
                "FAIL: the session's home worker died yet the journal "
                "was never replayed",
                file=sys.stderr,
            )
            return 1
        if graph["edges"] != ref_edges or graph["dot"] != ref_dot:
            print(
                "FAIL: session graph diverged from the clean full_graph run",
                file=sys.stderr,
            )
            return 1
        print(
            "ok: final session graph bit-identical to an uninterrupted "
            f"run (replays: {session_counters.get('client.session_replays', 0)})"
        )

        artifact = {
            "seed": seed,
            "workers": N_WORKERS,
            "queries": NETCHAOS_QUERIES,
            "edits": NETCHAOS_EDITS,
            "plan": json.loads(plan.to_json()),
            "injected": dict(proxy.injected_counts()),
            "proxy_counters": proxy.registry.counter_snapshot()["scalars"],
            "query_client_counters": query_counters,
            "session_client_counters": session_counters,
        }
        pathlib.Path(NETCHAOS_STATS_OUT).write_text(
            json.dumps(artifact, indent=2, sort_keys=True)
        )
        print(f"wrote {NETCHAOS_STATS_OUT}")

        print("SIGTERM the supervisor ...")
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            proc.kill()
            print("FAIL: supervisor did not exit", file=sys.stderr)
            return 1
        if code != 0:
            print(f"FAIL: supervisor exited {code}", file=sys.stderr)
            print(proc.stderr.read()[-4000:], file=sys.stderr)
            return 1
        print("ok: clean drain, exit code 0")
        return 0
    finally:
        proxy.request_shutdown()
        proxy_thread.join(10)
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def main() -> int:
    print(f"building workload: {N_QUERIES} queries, serial reference ...")
    calls, expected = build_workload()

    print(f"starting --cluster {N_WORKERS} ...")
    proc, announce = start_cluster()
    endpoint = f"cluster://{announce['host']}:{announce['port']}"
    pids = {w["id"]: w["pid"] for w in announce["workers"]}
    try:
        print(
            f"router on {endpoint}, workers {pids}; firing "
            f"{N_CLIENTS} clients x {N_QUERIES} queries ..."
        )
        failures = fire_clients(endpoint, calls, expected)
        if failures:
            print(f"FAIL: {failures[0]}", file=sys.stderr)
            return 1
        print(
            f"ok: {N_CLIENTS * N_QUERIES} responses bit-identical to "
            "serial analyze_batch"
        )

        victim = pids["w1"]
        print(f"second wave with kill -9 of worker w1 (pid {victim}) ...")
        failures = fire_clients(endpoint, calls, expected, kill_pid=victim)
        if failures:
            print(f"FAIL: {failures[0]}", file=sys.stderr)
            return 1
        print(
            f"ok: zero lost queries, {N_CLIENTS * N_QUERIES} responses "
            "still bit-identical across the kill -9"
        )

        dump_stats(endpoint)

        print("SIGTERM the supervisor ...")
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            proc.kill()
            print("FAIL: supervisor did not exit", file=sys.stderr)
            return 1
        if code != 0:
            print(f"FAIL: supervisor exited {code}", file=sys.stderr)
            print(proc.stderr.read()[-4000:], file=sys.stderr)
            return 1
        print("ok: clean drain, exit code 0")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


if __name__ == "__main__":
    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "--netchaos",
        action="store_true",
        help="run the seeded chaos-proxy resilience storm instead",
    )
    cli.add_argument(
        "--seed", type=int, default=13, help="netchaos fault-plan seed"
    )
    options = cli.parse_args()
    start = time.perf_counter()
    status = run_netchaos(options.seed) if options.netchaos else main()
    print(f"cluster smoke finished in {time.perf_counter() - start:.1f}s")
    sys.exit(status)
