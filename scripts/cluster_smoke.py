#!/usr/bin/env python
"""CI chaos test for the serve cluster (repro.serve.cluster).

End-to-end, at the process level:

1. start ``python -m repro serve --cluster 4`` and read the announced
   router port plus every worker's pid;
2. fire 200 queries from 8 concurrent clients (each pipelines the
   full stream) and assert every response is **bit-identical** to a
   serial ``analyze_batch`` run over the same queries;
3. ``kill -9`` one worker while a second wave of load is in flight and
   assert **zero lost queries**: every client still receives an answer
   for every query, and every answer is still bit-identical — the
   router replays the dead worker's debt onto the re-sharded ring and
   the supervisor restarts it;
4. SIGTERM the supervisor and assert a clean drain (exit 0);
5. dump the router's merged metrics to ``cluster_stats.json`` as the
   CI artifact.

Exits 0 when all checks pass, 1 otherwise.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import DependenceReport  # noqa: E402
from repro.core.engine import analyze_batch, queries_from_suite  # noqa: E402
from repro.ir.serde import query_to_dict  # noqa: E402
from repro.perfect import load_suite  # noqa: E402
from repro.serve import protocol  # noqa: E402
from repro.serve.client import Client  # noqa: E402

N_QUERIES = 200
N_CLIENTS = 8
N_WORKERS = 4
STATS_OUT = "cluster_stats.json"


def build_workload():
    queries = queries_from_suite(
        load_suite(include_symbolic=True, scale=0.02)
    )[:N_QUERIES]
    assert len(queries) == N_QUERIES, f"corpus too small: {len(queries)}"
    serial = analyze_batch(queries, jobs=1, want_directions=True)
    expected = [
        protocol.report_to_wire(
            DependenceReport.from_results(
                str(outcome.query.ref1),
                str(outcome.query.ref2),
                outcome.result,
                outcome.directions,
            )
        )
        for outcome in serial.outcomes
    ]
    calls = [
        (
            "analyze",
            {
                "query": query_to_dict(q.ref1, q.nest1, q.ref2, q.nest2),
                "directions": True,
            },
        )
        for q in queries
    ]
    return calls, expected


def start_cluster() -> tuple[subprocess.Popen, dict]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--cluster",
            str(N_WORKERS),
            "--queue-limit",
            "50000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    line = proc.stdout.readline()
    announce = json.loads(line)["serving"]
    assert announce["cluster"] is True, announce
    assert len(announce["workers"]) == N_WORKERS, announce
    return proc, announce


def fire_clients(
    endpoint: str, calls, expected, kill_pid: int | None = None
) -> list[str]:
    """8 pipelined clients; optionally kill -9 a worker mid-load.

    Every client must get one bit-identical answer per query — no
    losses, no errors — whether or not a worker dies under it.
    """
    failures: list[str] = []
    fired = threading.Event()

    def worker(index: int):
        try:
            with Client(endpoint, timeout=240.0, retry_for=10.0) as client:
                results = client.call_many(calls)
            if len(results) != len(calls):
                failures.append(
                    f"client {index}: {len(results)}/{len(calls)} answers"
                )
                return
            for i, (got, want) in enumerate(zip(results, expected)):
                if got != want:
                    failures.append(
                        f"client {index} query {i}: {got!r} != {want!r}"
                    )
                    return
        except Exception as err:
            failures.append(f"client {index}: {err!r}")

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    if kill_pid is not None:
        time.sleep(0.1)  # the wave is connecting/pipelining right now
        os.kill(kill_pid, signal.SIGKILL)
        fired.set()
    for t in threads:
        t.join(600)
        if t.is_alive():
            failures.append("client thread hung")
    return failures


def dump_stats(endpoint: str) -> None:
    with Client(endpoint, timeout=60.0) as client:
        stats = client.stats()
    artifact = {
        "workers": N_WORKERS,
        "clients": N_CLIENTS,
        "queries": N_QUERIES,
        "router": stats["router"],
        "ring": stats["ring"],
    }
    pathlib.Path(STATS_OUT).write_text(json.dumps(artifact, indent=2))
    print(f"wrote {STATS_OUT}")


def main() -> int:
    print(f"building workload: {N_QUERIES} queries, serial reference ...")
    calls, expected = build_workload()

    print(f"starting --cluster {N_WORKERS} ...")
    proc, announce = start_cluster()
    endpoint = f"cluster://{announce['host']}:{announce['port']}"
    pids = {w["id"]: w["pid"] for w in announce["workers"]}
    try:
        print(
            f"router on {endpoint}, workers {pids}; firing "
            f"{N_CLIENTS} clients x {N_QUERIES} queries ..."
        )
        failures = fire_clients(endpoint, calls, expected)
        if failures:
            print(f"FAIL: {failures[0]}", file=sys.stderr)
            return 1
        print(
            f"ok: {N_CLIENTS * N_QUERIES} responses bit-identical to "
            "serial analyze_batch"
        )

        victim = pids["w1"]
        print(f"second wave with kill -9 of worker w1 (pid {victim}) ...")
        failures = fire_clients(endpoint, calls, expected, kill_pid=victim)
        if failures:
            print(f"FAIL: {failures[0]}", file=sys.stderr)
            return 1
        print(
            f"ok: zero lost queries, {N_CLIENTS * N_QUERIES} responses "
            "still bit-identical across the kill -9"
        )

        dump_stats(endpoint)

        print("SIGTERM the supervisor ...")
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            proc.kill()
            print("FAIL: supervisor did not exit", file=sys.stderr)
            return 1
        if code != 0:
            print(f"FAIL: supervisor exited {code}", file=sys.stderr)
            print(proc.stderr.read()[-4000:], file=sys.stderr)
            return 1
        print("ok: clean drain, exit code 0")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


if __name__ == "__main__":
    start = time.perf_counter()
    status = main()
    print(f"cluster smoke finished in {time.perf_counter() - start:.1f}s")
    sys.exit(status)
