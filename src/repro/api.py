"""repro.api — the stable public facade.

One import surface for the whole analyzer.  Instead of juggling
:class:`~repro.core.result.DependenceResult`,
:class:`~repro.core.result.DirectionResult`, engine batch records and
deep imports from ``repro.core.*`` / ``repro.system.*``, callers build
an :class:`AnalysisConfig`, open an :class:`AnalysisSession`, and get
every per-query answer as one unified :class:`DependenceReport`::

    from repro.api import AnalysisConfig, AnalysisSession

    session = AnalysisSession(AnalysisConfig(symmetry=True))
    report = session.analyze(ref1, nest1, ref2, nest2)
    if report.dependent:
        print(report.decided_by, report.directions)

    program_report = session.analyze_program(program)   # batch engine
    for pair in program_report.pairs:                   # DependenceReports
        ...

The session owns the memoizer and the statistics registry, so repeated
queries share memo tables, ``session.registry`` accumulates the metrics
every harness table is derived from, and ``session.explain(...)``
captures one query's full decision trace (the ``repro explain`` CLI is
a thin wrapper over it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.core.result import DependenceResult, DirectionResult
from repro.core.stats import AnalyzerStats
from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest
from repro.ir.program import AccessSite, Program
from repro.obs.metrics import MetricsRegistry
from repro.obs.render import format_trace
from repro.obs.sinks import NULL_SINK, CollectingSink, TraceSink
from repro.robust.budget import ResourceBudget

__all__ = [
    "AnalysisConfig",
    "AnalysisSession",
    "DependenceReport",
    "ProgramReport",
    "ExplainResult",
    "SourceReport",
    "analyze_source",
    "run_fuzz",
    "connect",
    "Client",
    "RetryPolicy",
    "CircuitBreaker",
    "TransportError",
    "CircuitOpenError",
]


def run_fuzz(*args: Any, **kwargs: Any):
    """Run a differential-fuzzing campaign (see :mod:`repro.fuzz`).

    Thin lazy forwarder to :func:`repro.fuzz.harness.run_fuzz` so
    facade users don't need a second import surface (and so importing
    ``repro.api`` never pulls in the fuzzing stack, which itself calls
    back into this module for the end-to-end source check).
    """
    from repro.fuzz.harness import run_fuzz as _run_fuzz

    return _run_fuzz(*args, **kwargs)


def connect(
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float | None = 30.0,
    retry_for: float = 0.0,
):
    """Deprecated alias for :class:`repro.serve.client.Client`.

    The unified client takes an endpoint URL and speaks to bare
    workers (``tcp://``), cluster routers (``cluster://``) and private
    child daemons (``stdio:``) with one call surface::

        from repro.api import Client

        client = Client("tcp://127.0.0.1:4733")
        verdict = client.analyze(source=text, pair=0)

    This shim keeps old ``connect(host, port)`` callers working but
    warns; it will be removed in a future release.
    """
    import warnings

    warnings.warn(
        "repro.api.connect(host, port) is deprecated; use "
        "repro.api.Client('tcp://HOST:PORT') "
        "(or cluster://HOST:PORT, stdio:) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.serve.client import ServeClient

    return ServeClient.connect(
        host, port, timeout=timeout, retry_for=retry_for
    )


#: Serve-client symbols re-exported lazily: the resilience surface
#: (retry policy, breaker, typed transport errors) belongs to the
#: facade, but importing ``repro.api`` must not drag in the
#: socket/subprocess machinery for pure-analysis uses.
_CLIENT_EXPORTS = frozenset(
    {"Client", "RetryPolicy", "CircuitBreaker", "TransportError", "CircuitOpenError"}
)


def __getattr__(name: str):
    if name in _CLIENT_EXPORTS:
        from repro.serve import client as _client

        return getattr(_client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything a session can be configured with.

    Attributes:
        memo: keep a memo table across the session's queries (the
            paper's section-5 scheme; on by default).
        improved: use the reduced-problem memo keying (improved scheme).
        symmetry: share one memo slot between reference-swapped twins.
        fm_budget: Fourier-Motzkin branch-and-bound node budget.
        eliminate_unused: drop loop variables no subscript mentions.
        want_witness: lift an integer witness for dependent answers.
        jobs: worker processes for :meth:`AnalysisSession.analyze_program`
            (None: CPU count).
        sink: trace sink receiving every query's decision events
            (None: tracing off, the zero-overhead default).
        budget: resource governor
            (:class:`~repro.robust.budget.ResourceBudget`) applied to
            every query; a blown budget degrades that query to a
            conservative flagged answer (None: ungoverned).
    """

    memo: bool = True
    improved: bool = True
    symmetry: bool = False
    fm_budget: int = 256
    eliminate_unused: bool = True
    want_witness: bool = True
    jobs: int | None = None
    sink: TraceSink | None = None
    budget: ResourceBudget | None = None


@dataclass
class DependenceReport:
    """The unified answer to one dependence query.

    Produced by every facade entry point — plain queries, direction
    queries and each pair of a whole-program batch — so callers handle
    one shape.  ``directions`` is None when direction vectors were not
    requested (a plain ``analyze``), an empty frozenset when the pair
    is independent.
    """

    ref1: str
    ref2: str
    dependent: bool
    decided_by: str
    exact: bool = True
    from_memo: bool = False
    distance: tuple[int | None, ...] | None = None
    witness: tuple[int, ...] | None = None
    directions: frozenset[tuple[str, ...]] | None = None
    n_common: int = 0
    deduped: bool = False
    tag: Any = None
    degraded_reason: str | None = None

    @property
    def degraded(self) -> bool:
        """True when a blown resource budget forced this conservative
        answer (see :mod:`repro.robust.budget` for the reason codes)."""
        return self.degraded_reason is not None

    @classmethod
    def from_results(
        cls,
        ref1: str,
        ref2: str,
        result: DependenceResult | None,
        directions: DirectionResult | None,
        deduped: bool = False,
        tag: Any = None,
    ) -> "DependenceReport":
        """Fuse the legacy result pair into one report."""
        if result is None:
            assert directions is not None
            return cls(
                ref1=ref1,
                ref2=ref2,
                dependent=bool(directions.vectors),
                decided_by="directions",
                exact=directions.exact,
                from_memo=directions.from_memo,
                directions=directions.vectors,
                n_common=directions.n_common,
                deduped=deduped,
                tag=tag,
                degraded_reason=directions.degraded_reason,
            )
        degraded_reason = result.degraded_reason
        if degraded_reason is None and directions is not None:
            degraded_reason = directions.degraded_reason
        return cls(
            ref1=ref1,
            ref2=ref2,
            dependent=result.dependent,
            decided_by=result.decided_by,
            exact=result.exact if directions is None else (
                result.exact and directions.exact
            ),
            from_memo=result.from_memo,
            distance=result.distance,
            witness=result.witness,
            directions=None if directions is None else directions.vectors,
            n_common=0 if directions is None else directions.n_common,
            deduped=deduped,
            tag=tag,
            degraded_reason=degraded_reason,
        )

    def elementary_directions(self) -> list[tuple[str, ...]]:
        """Wildcard-free vectors, sorted (empty when none were computed)."""
        if not self.directions:
            return []
        out: set[tuple[str, ...]] = set()
        for vector in self.directions:
            out.update(_expand_wildcards(vector))
        return sorted(out)


def _expand_wildcards(vector: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
    from repro.system.depsystem import Direction

    if "*" not in vector:
        yield vector
        return
    idx = vector.index("*")
    for direction in Direction.ALL:
        replaced = vector[:idx] + (direction,) + vector[idx + 1 :]
        yield from _expand_wildcards(replaced)


@dataclass
class ProgramReport:
    """A whole program's dependence analysis, one report per pair."""

    pairs: list[DependenceReport]
    stats: AnalyzerStats
    summary: dict = field(default_factory=dict)

    def __iter__(self) -> Iterator[DependenceReport]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def dependent_pairs(self) -> list[DependenceReport]:
        return [pair for pair in self.pairs if pair.dependent]


@dataclass
class SourceReport:
    """Extraction plus whole-program analysis of one real-source file.

    ``extraction`` carries the nests, skip diagnostics and symbols the
    frontend produced (see :mod:`repro.frontends`); ``report`` is the
    ordinary :class:`ProgramReport` over the extracted program.
    """

    extraction: Any  # repro.frontends.ExtractResult
    report: ProgramReport

    def summary(self) -> dict:
        out = dict(self.extraction.summary())
        out.update(self.report.summary)
        return out


def analyze_source(
    text: str,
    lang: str | None = None,
    name: str = "<source>",
    config: AnalysisConfig | None = None,
    want_directions: bool = True,
) -> SourceReport:
    """Extract loop nests from real source text and analyze them.

    ``lang`` is ``"python"``, ``"c"`` or ``"loop"`` (None: mini-Fortran
    ``.loop``, the historical default).  Sugar over
    :func:`repro.frontends.extract_source` plus
    :meth:`AnalysisSession.analyze_program` on a fresh session; open a
    session yourself to share memo tables across files.
    """
    from repro.frontends import extract_source

    extraction = extract_source(text, lang=lang or "loop", name=name)
    session = AnalysisSession(config)
    report = session.analyze_program(
        extraction.program, want_directions=want_directions
    )
    return SourceReport(extraction=extraction, report=report)


@dataclass
class ExplainResult:
    """One query's answer together with its full decision trace."""

    report: DependenceReport
    events: list[Any]

    def render(self) -> str:
        return format_trace(self.events)


class AnalysisSession:
    """A configured analyzer with persistent memo tables and metrics.

    The session wraps one :class:`DependenceAnalyzer` (so its memoizer
    and statistics accumulate across calls) and the batch engine (for
    whole programs, sharded over ``config.jobs`` workers with the memo
    and metrics folded back into the session).
    """

    def __init__(
        self,
        config: AnalysisConfig | None = None,
        memoizer: Memoizer | None = None,
    ):
        self.config = config if config is not None else AnalysisConfig()
        if memoizer is not None:
            self.memoizer: Memoizer | None = memoizer
        elif self.config.memo:
            self.memoizer = Memoizer(
                improved=self.config.improved, symmetry=self.config.symmetry
            )
        else:
            self.memoizer = None
        self.analyzer = DependenceAnalyzer(
            memoizer=self.memoizer,
            fm_budget=self.config.fm_budget,
            eliminate_unused=self.config.eliminate_unused,
            want_witness=self.config.want_witness,
            sink=self.config.sink,
            budget=self.config.budget,
        )
        # Lazily created by update(): the incremental re-analysis
        # engine, sharing this session's memo table.
        self._incremental = None

    @property
    def stats(self) -> AnalyzerStats:
        return self.analyzer.stats

    @property
    def registry(self) -> MetricsRegistry:
        """The session's metrics registry (stats are a view over it)."""
        return self.analyzer.stats.registry

    # -- single queries ----------------------------------------------------

    def analyze(
        self,
        ref1: ArrayRef,
        nest1: LoopNest,
        ref2: ArrayRef,
        nest2: LoopNest,
        want_directions: bool = False,
    ) -> DependenceReport:
        """Is a dependence possible between the two references?"""
        result = self.analyzer.analyze(ref1, nest1, ref2, nest2)
        directions = None
        if want_directions:
            if result.dependent:
                directions = self.analyzer.directions(ref1, nest1, ref2, nest2)
            else:
                # The documented contract (and the batch engine's
                # behavior): requested directions on an independent
                # pair are the empty set, not "not computed".
                directions = DirectionResult(
                    vectors=frozenset(),
                    n_common=nest1.common_prefix_depth(nest2),
                )
        return DependenceReport.from_results(
            str(ref1), str(ref2), result, directions
        )

    def analyze_sites(
        self, site1: AccessSite, site2: AccessSite, want_directions: bool = False
    ) -> DependenceReport:
        return self.analyze(
            site1.ref, site1.nest, site2.ref, site2.nest, want_directions
        )

    def directions(
        self,
        ref1: ArrayRef,
        nest1: LoopNest,
        ref2: ArrayRef,
        nest2: LoopNest,
        **options: Any,
    ) -> DependenceReport:
        """The pair's direction vectors (options as in the analyzer)."""
        directions = self.analyzer.directions(ref1, nest1, ref2, nest2, **options)
        return DependenceReport.from_results(
            str(ref1), str(ref2), None, directions
        )

    # -- whole programs ----------------------------------------------------

    def analyze_program(
        self,
        program: Program,
        want_directions: bool = True,
        include_self_output: bool = False,
    ) -> ProgramReport:
        """Analyze every testable pair of a program via the batch engine.

        The sharded run warm-starts from the session's memo table and
        folds the merged table and worker metrics back into the
        session, so later queries (and ``session.registry``) see the
        batch's work.
        """
        from repro.core.engine import analyze_batch, queries_from_program

        report = analyze_batch(
            queries_from_program(
                program, include_self_output=include_self_output
            ),
            jobs=self.config.jobs,
            warm=self.memoizer,
            want_directions=want_directions,
            want_witness=self.config.want_witness,
            improved=self.config.improved,
            symmetry=self.config.symmetry,
            fm_budget=self.config.fm_budget,
            sink=self.config.sink,
            budget=self.config.budget,
        )
        self.stats.merge(report.stats)
        if self.memoizer is not None:
            self.memoizer.merge_from(report.memoizer)
        pairs = [
            DependenceReport.from_results(
                str(outcome.query.ref1),
                str(outcome.query.ref2),
                outcome.result,
                outcome.directions,
                deduped=outcome.deduped,
                tag=outcome.query.tag,
            )
            for outcome in report.outcomes
        ]
        return ProgramReport(
            pairs=pairs, stats=report.stats, summary=report.summary()
        )

    # -- incremental re-analysis -------------------------------------------

    def update(self, program: Program, verify: bool = False):
        """Incrementally (re-)analyze a program as it is edited.

        The first call runs a full analysis and retains the program's
        dependence graph plus a per-pair answer cache keyed on
        canonical fingerprints (:mod:`repro.ir.fingerprint`).  Every
        later call diffs statement fingerprints and re-queries *only*
        pairs an edit dirtied, through the batch engine with the
        session's warm memo table — the spliced graph is bit-identical
        to a cold full re-analysis (``verify=True`` asserts it).

        Returns an :class:`repro.core.incremental.UpdateReport`; the
        retained graph is ``session.graph``.
        """
        if self._incremental is None:
            from repro.core.incremental import IncrementalSession

            self._incremental = IncrementalSession(
                memoizer=self.memoizer,
                jobs=self.config.jobs or 1,
                improved=self.config.improved,
                symmetry=self.config.symmetry,
                fm_budget=self.config.fm_budget,
                budget=self.config.budget,
            )
        return self._incremental.update(program, verify=verify)

    @property
    def graph(self):
        """The dependence graph retained by :meth:`update` (or None)."""
        if self._incremental is None:
            return None
        return self._incremental.graph

    # -- tracing -----------------------------------------------------------

    def explain(
        self,
        ref1: ArrayRef,
        nest1: LoopNest,
        ref2: ArrayRef,
        nest2: LoopNest,
        want_directions: bool = True,
    ) -> ExplainResult:
        """Answer one query and capture its full decision trace.

        Works regardless of the session's configured sink: events are
        collected locally (and forwarded to the configured sink too,
        when one is active).
        """
        collector = CollectingSink()
        outer = self.analyzer.sink
        self.analyzer.sink = collector
        try:
            report = self.analyze(
                ref1, nest1, ref2, nest2, want_directions=want_directions
            )
        finally:
            self.analyzer.sink = outer
        if outer is not NULL_SINK and getattr(outer, "enabled", False):
            for event in collector.events:
                outer.emit(event)
        return ExplainResult(report=report, events=collector.events)

    def explain_sites(
        self, site1: AccessSite, site2: AccessSite, want_directions: bool = True
    ) -> ExplainResult:
        return self.explain(
            site1.ref, site1.nest, site2.ref, site2.nest, want_directions
        )
