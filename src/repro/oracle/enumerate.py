"""Brute-force enumeration oracle.

Dependence testing asks whether an integer system has a solution; for
small constant bounds that question can be settled by exhaustive
enumeration.  The oracle is the ground truth against which every test
in the cascade is validated (unit tests, hypothesis properties, and
the differential fuzzer in :mod:`repro.fuzz`), and it also computes
reference direction/distance vector sets.

Never used by the analyzer itself — only by tests and examples.

**The enumeration box.**  Enumeration is only complete over a finite
box, so the oracle's answers are exact relative to an explicit search
region.  For loop-bounded variables the box implied by the system's
single-variable constraints already contains every solution (loop
bounds enter the system as one-variable inequalities after constant
screening).  Variables that remain unbounded on one or both ends —
symbolic terms treated as free unknowns (paper section 8), or
degenerate systems with no bound constraints — are searched within
``±radius`` of zero (clamped around the finite end when one exists).
A "no solution in the box" answer for such systems is therefore only
as strong as the box: callers that fuzz symbolic systems compare
one-sidedly (a claimed-independent system must have no solution in the
box) rather than treating box exhaustion as proof of independence.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from itertools import product

from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest
from repro.system.constraints import NEG_INF, POS_INF, ConstraintSystem
from repro.system.depsystem import Direction

__all__ = [
    "DEFAULT_RADIUS",
    "enumeration_box",
    "solve_system",
    "solve_in_box",
    "iterate_solutions",
    "iterate_box",
    "oracle_dependent",
    "oracle_direction_vectors",
    "oracle_distance_set",
]

# Default half-width of the search interval for variables the system
# itself does not bound (symbolic terms, degenerate systems).
DEFAULT_RADIUS = 6


def iterate_solutions(
    system: ConstraintSystem, lo: int, hi: int
) -> Iterator[tuple[int, ...]]:
    """All integer points in ``[lo, hi]^n`` satisfying the system."""
    for point in product(range(lo, hi + 1), repeat=system.n_vars):
        if system.evaluate(point):
            yield point


def solve_system(
    system: ConstraintSystem, lo: int, hi: int
) -> tuple[int, ...] | None:
    """First solution in the box, or None.

    Only meaningful when the system's solutions (if any) are known to
    intersect the box — callers bound their variables accordingly.
    """
    return next(iterate_solutions(system, lo, hi), None)


def enumeration_box(
    system: ConstraintSystem, radius: int = DEFAULT_RADIUS
) -> list[tuple[int, int]] | None:
    """A finite per-variable search box for the system.

    Each variable's interval comes from the system's one-variable
    constraints; an end the system leaves unbounded is clamped to
    ``radius`` away from zero (or from the finite end, when only one
    end is open, so half-bounded variables still get a ``2*radius + 1``
    wide window starting at their hard limit).  Returns None when the
    one-variable constraints alone are already contradictory (an empty
    interval — e.g. a zero-iteration loop's bounds).
    """
    box: list[tuple[int, int]] = []
    for interval in system.single_variable_intervals():
        if interval.empty:
            return None
        lo, hi = interval.lo, interval.hi
        if lo == NEG_INF and hi == POS_INF:
            lo, hi = -radius, radius
        elif lo == NEG_INF:
            lo = int(hi) - 2 * radius
        elif hi == POS_INF:
            hi = int(lo) + 2 * radius
        box.append((int(lo), int(hi)))
    return box


def iterate_box(
    system: ConstraintSystem, box: Sequence[tuple[int, int]]
) -> Iterator[tuple[int, ...]]:
    """All points of a per-variable box satisfying the system."""
    if len(box) != system.n_vars:
        raise ValueError(
            f"box has {len(box)} intervals, system has {system.n_vars} variables"
        )
    ranges = [range(lo, hi + 1) for lo, hi in box]
    for point in product(*ranges):
        if system.evaluate(point):
            yield point


def solve_in_box(
    system: ConstraintSystem, radius: int = DEFAULT_RADIUS
) -> tuple[int, ...] | None:
    """First solution within :func:`enumeration_box`, or None.

    The go-to entry point for systems with symbolic/unbounded
    variables: complete for variables the system bounds on both ends,
    and a documented ``±radius`` search window for the rest.  A
    zero-variable system degenerates to checking the constant
    constraints themselves (the empty point satisfies an empty or
    all-trivial system).
    """
    box = enumeration_box(system, radius)
    if box is None:
        return None
    return next(iterate_box(system, box), None)


def _iteration_vectors(
    nest: LoopNest, env: Mapping[str, int]
) -> Iterator[dict[str, int]]:
    yield from nest.iteration_space(dict(env))


def _conflicts(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
    env: Mapping[str, int],
) -> Iterator[tuple[dict[str, int], dict[str, int]]]:
    """All pairs of iterations at which the two references collide."""
    if ref1.array != ref2.array or ref1.rank != ref2.rank:
        return
    points2 = list(_iteration_vectors(nest2, env))
    for iter1 in _iteration_vectors(nest1, env):
        env1 = {**env, **iter1}
        addr1 = tuple(s.evaluate(env1) for s in ref1.subscripts)
        for iter2 in points2:
            env2 = {**env, **iter2}
            addr2 = tuple(s.evaluate(env2) for s in ref2.subscripts)
            if addr1 == addr2:
                yield iter1, iter2


def oracle_dependent(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
    env: Mapping[str, int] | None = None,
) -> bool:
    """True iff some pair of iterations touches the same element."""
    return next(_conflicts(ref1, nest1, ref2, nest2, env or {}), None) is not None


def oracle_direction_vectors(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
    env: Mapping[str, int] | None = None,
) -> set[tuple[str, ...]]:
    """The exact set of elementary direction vectors over the common loops.

    Each vector has one component from ``{<, =, >}`` per common loop
    level (paper section 6); non-common levels do not participate.
    """
    n_common = nest1.common_prefix_depth(nest2)
    common_vars = nest1.variables[:n_common]
    found: set[tuple[str, ...]] = set()
    for iter1, iter2 in _conflicts(ref1, nest1, ref2, nest2, env or {}):
        vector = []
        for var in common_vars:
            a, b = iter1[var], iter2[var]
            if a < b:
                vector.append(Direction.LT)
            elif a == b:
                vector.append(Direction.EQ)
            else:
                vector.append(Direction.GT)
        found.add(tuple(vector))
    return found


def oracle_distance_set(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
    env: Mapping[str, int] | None = None,
) -> set[tuple[int, ...]]:
    """All observed distance vectors ``i' - i`` over the common loops."""
    n_common = nest1.common_prefix_depth(nest2)
    common_vars = nest1.variables[:n_common]
    return {
        tuple(iter2[v] - iter1[v] for v in common_vars)
        for iter1, iter2 in _conflicts(ref1, nest1, ref2, nest2, env or {})
    }
