"""Brute-force enumeration oracle.

Dependence testing asks whether an integer system has a solution; for
small constant bounds that question can be settled by exhaustive
enumeration.  The oracle is the ground truth against which every test
in the cascade is validated (unit tests and hypothesis properties),
and it also computes reference direction/distance vector sets.

Never used by the analyzer itself — only by tests and examples.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from itertools import product

from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest
from repro.system.constraints import ConstraintSystem
from repro.system.depsystem import Direction

__all__ = [
    "solve_system",
    "iterate_solutions",
    "oracle_dependent",
    "oracle_direction_vectors",
    "oracle_distance_set",
]


def iterate_solutions(
    system: ConstraintSystem, lo: int, hi: int
) -> Iterator[tuple[int, ...]]:
    """All integer points in ``[lo, hi]^n`` satisfying the system."""
    for point in product(range(lo, hi + 1), repeat=system.n_vars):
        if system.evaluate(point):
            yield point


def solve_system(
    system: ConstraintSystem, lo: int, hi: int
) -> tuple[int, ...] | None:
    """First solution in the box, or None.

    Only meaningful when the system's solutions (if any) are known to
    intersect the box — callers bound their variables accordingly.
    """
    return next(iterate_solutions(system, lo, hi), None)


def _iteration_vectors(
    nest: LoopNest, env: Mapping[str, int]
) -> Iterator[dict[str, int]]:
    yield from nest.iteration_space(dict(env))


def _conflicts(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
    env: Mapping[str, int],
) -> Iterator[tuple[dict[str, int], dict[str, int]]]:
    """All pairs of iterations at which the two references collide."""
    if ref1.array != ref2.array or ref1.rank != ref2.rank:
        return
    points2 = list(_iteration_vectors(nest2, env))
    for iter1 in _iteration_vectors(nest1, env):
        env1 = {**env, **iter1}
        addr1 = tuple(s.evaluate(env1) for s in ref1.subscripts)
        for iter2 in points2:
            env2 = {**env, **iter2}
            addr2 = tuple(s.evaluate(env2) for s in ref2.subscripts)
            if addr1 == addr2:
                yield iter1, iter2


def oracle_dependent(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
    env: Mapping[str, int] | None = None,
) -> bool:
    """True iff some pair of iterations touches the same element."""
    return next(_conflicts(ref1, nest1, ref2, nest2, env or {}), None) is not None


def oracle_direction_vectors(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
    env: Mapping[str, int] | None = None,
) -> set[tuple[str, ...]]:
    """The exact set of elementary direction vectors over the common loops.

    Each vector has one component from ``{<, =, >}`` per common loop
    level (paper section 6); non-common levels do not participate.
    """
    n_common = nest1.common_prefix_depth(nest2)
    common_vars = nest1.variables[:n_common]
    found: set[tuple[str, ...]] = set()
    for iter1, iter2 in _conflicts(ref1, nest1, ref2, nest2, env or {}):
        vector = []
        for var in common_vars:
            a, b = iter1[var], iter2[var]
            if a < b:
                vector.append(Direction.LT)
            elif a == b:
                vector.append(Direction.EQ)
            else:
                vector.append(Direction.GT)
        found.add(tuple(vector))
    return found


def oracle_distance_set(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
    env: Mapping[str, int] | None = None,
) -> set[tuple[int, ...]]:
    """All observed distance vectors ``i' - i`` over the common loops."""
    n_common = nest1.common_prefix_depth(nest2)
    common_vars = nest1.variables[:n_common]
    return {
        tuple(iter2[v] - iter1[v] for v in common_vars)
        for iter1, iter2 in _conflicts(ref1, nest1, ref2, nest2, env or {})
    }
