"""Exhaustive-enumeration ground truth for validating the exact tests."""

from repro.oracle.enumerate import (
    iterate_solutions,
    oracle_dependent,
    oracle_direction_vectors,
    oracle_distance_set,
    solve_system,
)

__all__ = [
    "iterate_solutions",
    "solve_system",
    "oracle_dependent",
    "oracle_direction_vectors",
    "oracle_distance_set",
]
