"""Exhaustive-enumeration ground truth for validating the exact tests."""

from repro.oracle.enumerate import (
    DEFAULT_RADIUS,
    enumeration_box,
    iterate_box,
    iterate_solutions,
    oracle_dependent,
    oracle_direction_vectors,
    oracle_distance_set,
    solve_in_box,
    solve_system,
)

__all__ = [
    "DEFAULT_RADIUS",
    "enumeration_box",
    "iterate_box",
    "iterate_solutions",
    "solve_system",
    "solve_in_box",
    "oracle_dependent",
    "oracle_direction_vectors",
    "oracle_distance_set",
]
