"""Experiments regenerating every table of the paper's evaluation.

Each ``run_tableN`` function executes the synthetic PERFECT workload
through the appropriate analyzer configuration and returns a
:class:`TableResult` holding both per-program rows and the rendered
text.  The configurations map onto the paper:

========  ==========================================================
Table 1   plain queries, no memoization — which test decides each case
Table 2   memoization unique-case percentages, simple vs improved keys
Table 3   test frequencies counting unique cases only
Table 4   direction vectors, naive hierarchical refinement
Table 5   direction vectors with unused-variable + distance pruning
Table 6   dependence-test wall-clock cost per program
Table 7   Table 5 plus symbolic-term cases (section 8)
§7 stats  per-test independent/dependent outcome splits; inexact
          baseline comparison (simple GCD + Banerjee vs the cascade)
========  ==========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api import AnalysisConfig, AnalysisSession
from repro.baselines import BaselineAnalyzer
from repro.core.memo import Memoizer
from repro.core.stats import TEST_ORDER, AnalyzerStats
from repro.harness.tables import render_table
from repro.obs.metrics import MetricsRegistry
from repro.perfect.programs import PROGRAM_SPECS
from repro.perfect.suite import SuiteProgram, load_suite

__all__ = [
    "TableResult",
    "collect_table1",
    "render_table1",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_outcomes",
    "run_baseline_comparison",
    "ALL_EXPERIMENTS",
]

# Paper-reported f77 -O3 compile seconds per program (Table 6's right
# column); used only to recompute the paper's ~3% overhead claim since
# no Fortran compiler exists in this environment (see DESIGN.md).
PAPER_F77_SECONDS = {
    "AP": 151.4,
    "CS": 485.0,
    "LG": 65.4,
    "LW": 33.0,
    "MT": 45.0,
    "NA": 136.3,
    "OC": 38.2,
    "SD": 62.1,
    "SM": 102.5,
    "SR": 118.5,
    "TF": 116.6,
    "TI": 12.6,
    "WS": 110.0,
}


@dataclass
class TableResult:
    """One regenerated table: machine-readable rows plus rendered text."""

    name: str
    headers: list[str]
    rows: list[list[object]]
    text: str
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


def _suite(include_symbolic: bool = False, scale: float = 1.0):
    return load_suite(include_symbolic=include_symbolic, scale=scale)


def _run_plain(program: SuiteProgram, memoizer: Memoizer | None) -> AnalyzerStats:
    session = AnalysisSession(
        AnalysisConfig(memo=memoizer is not None, want_witness=False),
        memoizer=memoizer,
    )
    for query in program.queries:
        session.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
    return session.stats


def collect_table1(
    scale: float = 1.0,
) -> list[tuple[str, int, MetricsRegistry]]:
    """Table 1's raw material: one metrics registry per program.

    Registries round-trip through ``to_dict``/``from_dict``, so the
    rendered table regenerates bit-identically from serialized metrics
    (no re-analysis needed).
    """
    collected: list[tuple[str, int, MetricsRegistry]] = []
    for program in _suite(scale=scale):
        stats = _run_plain(program, memoizer=None)
        collected.append((program.name, program.lines, stats.registry))
    return collected


def render_table1(
    collected: list[tuple[str, int, MetricsRegistry]],
) -> TableResult:
    """Render Table 1 from collected registries; pure, no analysis."""
    headers = [
        "Program", "#Lines", "Constant", "GCD",
        "SVPC", "Acyclic", "Loop Residue", "Fourier-Motzkin",
    ]
    rows: list[list[object]] = []
    totals = [0] * 6
    for name, lines, registry in collected:
        stats = AnalyzerStats(registry)
        counts = stats.test_counts()
        row = [
            name,
            lines,
            stats.constant_cases,
            stats.gcd_independent,
            counts["svpc"],
            counts["acyclic"],
            counts["loop_residue"],
            counts["fourier_motzkin"],
        ]
        rows.append(row)
        for k in range(6):
            totals[k] += row[k + 2]
    footer = ["TOTAL", sum(spec.lines for spec in PROGRAM_SPECS)] + totals
    text = render_table(
        "Table 1: number of times each test was called per program",
        headers,
        rows,
        footer,
    )
    return TableResult("table1", headers, rows, text)


def run_table1(scale: float = 1.0) -> TableResult:
    """Table 1: how many times each test decided a case, per program."""
    return render_table1(collect_table1(scale=scale))


def run_table2(scale: float = 1.0) -> TableResult:
    """Table 2: % unique cases under memoization, simple vs improved."""
    headers = [
        "Program",
        "NB Total", "NB Simple%", "NB Improved%",
        "WB Total", "WB Simple%", "WB Improved%",
    ]
    rows: list[list[object]] = []
    agg = [0, 0, 0, 0, 0, 0]  # totals and unique counts for footer
    for program in _suite(scale=scale):
        cells: dict[str, float] = {}
        for improved in (False, True):
            memo = Memoizer(improved=improved)
            session = AnalysisSession(
                AnalysisConfig(
                    improved=improved,
                    want_witness=False,
                    eliminate_unused=improved,
                ),
                memoizer=memo,
            )
            for query in program.queries:
                session.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
            label = "improved" if improved else "simple"
            cells[f"nb_total_{label}"] = memo.no_bounds.stats.queries
            cells[f"nb_unique_{label}"] = memo.no_bounds.stats.unique
            cells[f"wb_total_{label}"] = memo.with_bounds.stats.queries
            cells[f"wb_unique_{label}"] = memo.with_bounds.stats.unique
        nb_total = int(cells["nb_total_improved"])
        wb_total = int(cells["wb_total_improved"])
        rows.append(
            [
                program.name,
                nb_total,
                _pct(cells["nb_unique_simple"], cells["nb_total_simple"]),
                _pct(cells["nb_unique_improved"], nb_total),
                wb_total,
                _pct(cells["wb_unique_simple"], cells["wb_total_simple"]),
                _pct(cells["wb_unique_improved"], wb_total),
            ]
        )
        agg[0] += nb_total
        agg[1] += int(cells["nb_unique_simple"])
        agg[2] += int(cells["nb_unique_improved"])
        agg[3] += wb_total
        agg[4] += int(cells["wb_unique_simple"])
        agg[5] += int(cells["wb_unique_improved"])
    footer = [
        "TOTAL",
        agg[0], _pct(agg[1], agg[0]), _pct(agg[2], agg[0]),
        agg[3], _pct(agg[4], agg[3]), _pct(agg[5], agg[3]),
    ]
    text = render_table(
        "Table 2: percentage of unique cases (memoization), "
        "simple scheme vs unused-variables-eliminated",
        headers,
        rows,
        footer,
    )
    return TableResult("table2", headers, rows, text)


def run_table3(scale: float = 1.0) -> TableResult:
    """Table 3: tests run counting unique cases only (memoized)."""
    headers = [
        "Program", "#Lines", "Total Cases",
        "SVPC", "Acyclic", "Loop Residue", "Fourier-Motzkin",
    ]
    rows: list[list[object]] = []
    totals = [0] * 5
    for program in _suite(scale=scale):
        memo = Memoizer(improved=True)
        stats = _run_plain(program, memoizer=memo)
        counts = stats.test_counts()
        total_cases = sum(
            stats.decided_by.get(t, 0) for t in TEST_ORDER
        ) + stats.memo_hits_bounds
        row = [
            program.name,
            program.lines,
            total_cases,
            counts["svpc"],
            counts["acyclic"],
            counts["loop_residue"],
            counts["fourier_motzkin"],
        ]
        rows.append(row)
        totals[0] += total_cases
        for k, t in enumerate(TEST_ORDER):
            totals[k + 1] += counts[t]
    footer = ["TOTAL", "", *totals]
    text = render_table(
        "Table 3: number of times each test was called, unique cases only",
        headers,
        rows,
        footer,
    )
    result = TableResult("table3", headers, rows, text)
    result.extra["unique_tests"] = sum(totals[1:])
    result.extra["total_cases"] = totals[0]
    return result


def _run_directions(
    program: SuiteProgram,
    prune: bool,
    include_symbolic_stats: bool = False,
) -> AnalyzerStats:
    session = AnalysisSession(
        AnalysisConfig(want_witness=False, eliminate_unused=prune)
    )
    for query in program.queries:
        session.directions(
            query.ref1,
            query.nest1,
            query.ref2,
            query.nest2,
            prune_unused=prune,
            prune_distance=prune,
        )
    return session.stats


def _direction_table(
    name: str,
    title: str,
    prune: bool,
    include_symbolic: bool,
    scale: float,
) -> TableResult:
    headers = [
        "Program", "#Lines",
        "SVPC", "Acyclic", "Loop Residue", "Fourier-Motzkin",
    ]
    rows: list[list[object]] = []
    totals = [0] * 4
    outcome_stats = AnalyzerStats()
    for program in _suite(include_symbolic=include_symbolic, scale=scale):
        stats = _run_directions(program, prune=prune)
        counts = stats.direction_test_counts()
        row = [
            program.name,
            program.lines,
            counts["svpc"],
            counts["acyclic"],
            counts["loop_residue"],
            counts["fourier_motzkin"],
        ]
        rows.append(row)
        for k, t in enumerate(TEST_ORDER):
            totals[k] += counts[t]
        outcome_stats.merge(stats)
    footer = ["TOTAL", "", *totals]
    text = render_table(title, headers, rows, footer)
    result = TableResult(name, headers, rows, text)
    result.extra["total_tests"] = sum(totals)
    result.extra["outcomes"] = dict(outcome_stats.outcomes)
    return result


def run_table4(scale: float = 1.0) -> TableResult:
    """Table 4: direction vectors, naive hierarchical refinement."""
    return _direction_table(
        "table4",
        "Table 4: tests called for direction vectors (no pruning), "
        "unique cases only",
        prune=False,
        include_symbolic=False,
        scale=scale,
    )


def run_table5(scale: float = 1.0) -> TableResult:
    """Table 5: direction vectors with both pruning optimizations."""
    return _direction_table(
        "table5",
        "Table 5: tests called with distance-vector pruning and unused "
        "variables eliminated",
        prune=True,
        include_symbolic=False,
        scale=scale,
    )


def run_table7(scale: float = 1.0) -> TableResult:
    """Table 7: Table 5 configuration plus symbolic-term cases."""
    return _direction_table(
        "table7",
        "Table 7: tests called computing direction vectors with "
        "symbolic constraints added",
        prune=True,
        include_symbolic=True,
        scale=scale,
    )


def run_table6(scale: float = 1.0) -> TableResult:
    """Table 6: dependence testing wall-clock cost per program.

    The paper compares against ``f77 -O3`` compile times; we report the
    paper's published seconds as a static reference column and recompute
    the overhead ratio against them (DESIGN.md documents why).
    """
    headers = [
        "Program", "Dep. Test Cost (s)",
        "f77 -O3 (paper, s)", "Overhead %",
    ]
    rows: list[list[object]] = []
    measured_total = 0.0
    paper_total = 0.0
    for program in _suite(scale=scale):
        start = time.perf_counter()
        _run_directions(program, prune=True)
        elapsed = time.perf_counter() - start
        paper_seconds = PAPER_F77_SECONDS[program.name]
        rows.append(
            [
                program.name,
                f"{elapsed:.2f}",
                f"{paper_seconds:.1f}",
                f"{100.0 * elapsed / paper_seconds:.1f}",
            ]
        )
        measured_total += elapsed
        paper_total += paper_seconds
    footer = [
        "TOTAL",
        f"{measured_total:.2f}",
        f"{paper_total:.1f}",
        f"{100.0 * measured_total / paper_total:.1f}",
    ]
    text = render_table(
        "Table 6: total cost of dependence testing (measured) vs "
        "f77 -O3 compile time (paper-reported reference)",
        headers,
        rows,
        footer,
    )
    result = TableResult("table6", headers, rows, text)
    result.extra["measured_seconds"] = measured_total
    return result


def run_outcomes(scale: float = 1.0) -> TableResult:
    """Section 7: per-test independent/dependent splits (Table 5 run)."""
    table5 = run_table5(scale=scale)
    outcomes = table5.extra["outcomes"]
    headers = ["Test", "Independent", "Total", "Independent %"]
    rows: list[list[object]] = []
    for test in TEST_ORDER:
        indep = outcomes.get((test, "independent"), 0)
        dep = outcomes.get((test, "dependent"), 0)
        total = indep + dep
        rows.append(
            [test, indep, total, _pct(indep, total) if total else "-"]
        )
    text = render_table(
        "Section 7: how often each test returned independent "
        "(direction-vector run of Table 5)",
        headers,
        rows,
    )
    return TableResult("outcomes", headers, rows, text)


def run_baseline_comparison(scale: float = 1.0) -> TableResult:
    """Section 7: inexact GCD+Banerjee baseline vs the exact cascade."""
    exact_session = AnalysisSession(AnalysisConfig(want_witness=False))
    baseline = BaselineAnalyzer()
    seen: set[tuple] = set()
    independent_exact = 0
    independent_baseline = 0
    vectors_exact = 0
    vectors_baseline = 0
    for program in _suite(scale=scale):
        for query in program.queries:
            key = (
                query.ref1,
                query.ref2,
                query.nest1,
                query.nest2,
            )
            if key in seen:
                continue
            seen.add(key)
            if query.bucket == "constant":
                continue
            exact = exact_session.analyze(
                query.ref1, query.nest1, query.ref2, query.nest2
            )
            base_dep = baseline.analyze(
                query.ref1, query.nest1, query.ref2, query.nest2
            )
            if not exact.dependent:
                independent_exact += 1
                if not base_dep:
                    independent_baseline += 1
            if exact.dependent or not base_dep:
                ex_dirs = exact_session.directions(
                    query.ref1, query.nest1, query.ref2, query.nest2
                )
                base_dirs = baseline.directions(
                    query.ref1, query.nest1, query.ref2, query.nest2
                )
                vectors_exact += len(ex_dirs.directions)
                vectors_baseline += len(base_dirs.vectors)
    missed = independent_exact - independent_baseline
    miss_pct = _pct(missed, independent_exact)
    over_pct = _pct(vectors_baseline - vectors_exact, vectors_exact)
    headers = ["Metric", "Exact cascade", "GCD+Banerjee", "Gap"]
    rows = [
        [
            "independent pairs found",
            independent_exact,
            independent_baseline,
            f"misses {miss_pct}%",
        ],
        [
            "direction vectors reported",
            vectors_exact,
            vectors_baseline,
            f"+{over_pct}%",
        ],
    ]
    text = render_table(
        "Section 7: exact cascade vs traditional inexact tests "
        "(unique non-constant cases)",
        headers,
        rows,
    )
    result = TableResult("baselines", headers, rows, text)
    result.extra.update(
        independent_exact=independent_exact,
        independent_baseline=independent_baseline,
        vectors_exact=vectors_exact,
        vectors_baseline=vectors_baseline,
    )
    return result


def _pct(part: float, whole: float) -> float:
    if not whole:
        return 0.0
    return round(100.0 * part / whole, 1)


ALL_EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "outcomes": run_outcomes,
    "baselines": run_baseline_comparison,
}
