"""Experiment harness regenerating the paper's tables."""

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    TableResult,
    run_baseline_comparison,
    run_outcomes,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)
from repro.harness.tables import render_table
from repro.harness.timing import TestTiming, time_tests

__all__ = [
    "ALL_EXPERIMENTS",
    "TableResult",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_outcomes",
    "run_baseline_comparison",
    "render_table",
    "time_tests",
    "TestTiming",
]
