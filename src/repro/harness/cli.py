"""Command-line entry point: ``python -m repro.harness [experiment]``."""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.tables import render_table
from repro.harness.timing import time_tests

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description=(
            "Regenerate the evaluation tables of 'Efficient and Exact "
            "Data Dependence Analysis' (PLDI 1991) on the synthetic "
            "PERFECT workload."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=(
            "which experiments to run: "
            + ", ".join(sorted(ALL_EXPERIMENTS))
            + ", costs, or 'all' (default)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink repetition counts (0 < scale <= 1) for quick runs",
    )
    args = parser.parse_args(argv)

    names = args.experiments
    if names == ["all"] or "all" in names:
        names = [*sorted(ALL_EXPERIMENTS), "costs"]

    for name in names:
        if name == "costs":
            _print_costs()
            continue
        runner = ALL_EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        print(runner(scale=args.scale).text)
        print()
    return 0


def _print_costs() -> None:
    timings = time_tests()
    rows = [
        [t.name, f"{t.microseconds:.1f}", f"{t.ratio_to_svpc:.1f}x"]
        for t in timings
    ]
    print(
        render_table(
            "Section 7: per-test cost (paper: SVPC 0.1ms, Acyclic 0.5ms, "
            "Loop Residue 0.9ms, FM 3ms on a 12-MIPS R2000)",
            ["Test", "usec/test", "Ratio to SVPC"],
            rows,
        )
    )
    print()
