"""Per-test cost measurements (paper section 7's msec/test numbers).

The paper timed the four tests on a MIPS R2000: SVPC ~0.1 ms, Acyclic
~0.5 ms, Loop Residue ~0.9 ms, Fourier-Motzkin ~3 ms per test — the
cost ordering that justifies the cascade order.  Absolute numbers are
hardware-bound; we measure each test on a representative input drawn
from the same workload bucket and report times plus ratios to SVPC.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.analyzer import DependenceAnalyzer
from repro.deptests.acyclic import AcyclicTest
from repro.deptests.fourier_motzkin import FourierMotzkinTest
from repro.deptests.loop_residue import LoopResidueTest
from repro.deptests.svpc import SvpcTest
from repro.perfect.patterns import make_query
from repro.system.constraints import ConstraintSystem
from repro.system.depsystem import build_problem
from repro.system.transform import gcd_transform

__all__ = ["representative_system", "time_tests", "TestTiming"]

# Workload bucket that exercises each test.
_BUCKET_FOR_TEST = {
    "svpc": "svpc",
    "acyclic": "acyclic",
    "loop_residue": "loop_residue",
    "fourier_motzkin": "fourier_motzkin",
}


def representative_system(test_name: str, idx: int = 0) -> ConstraintSystem:
    """A transformed constraint system that the named test decides."""
    query = make_query(_BUCKET_FOR_TEST[test_name], idx)
    problem = build_problem(query.ref1, query.nest1, query.ref2, query.nest2)
    outcome = gcd_transform(problem)
    assert outcome.transformed is not None
    system = outcome.transformed.system
    if test_name in ("loop_residue", "fourier_motzkin"):
        # These run on the Acyclic test's residual in the real cascade.
        elimination = AcyclicTest().eliminate(system)
        if elimination.residual is not None:
            system = elimination.residual
    return system


@dataclass
class TestTiming:
    name: str
    microseconds: float
    ratio_to_svpc: float


def time_tests(repeats: int = 200) -> list[TestTiming]:
    """Measure per-invocation cost of each cascade test."""
    tests = {
        "svpc": SvpcTest(),
        "acyclic": AcyclicTest(),
        "loop_residue": LoopResidueTest(),
        "fourier_motzkin": FourierMotzkinTest(),
    }
    measured: dict[str, float] = {}
    for name, test in tests.items():
        systems = [representative_system(name, idx) for idx in range(5)]
        start = time.perf_counter()
        for _ in range(repeats):
            for system in systems:
                test.run(system)
        elapsed = time.perf_counter() - start
        measured[name] = 1e6 * elapsed / (repeats * len(systems))
    base = measured["svpc"] or 1.0
    return [
        TestTiming(name, microseconds, microseconds / base)
        for name, microseconds in measured.items()
    ]


def time_full_pipeline(repeats: int = 50) -> float:
    """Microseconds per full analyze() call on a mixed workload."""
    queries = [
        make_query(bucket, idx)
        for bucket in ("svpc", "acyclic", "loop_residue", "fourier_motzkin")
        for idx in range(3)
    ]
    analyzer = DependenceAnalyzer(want_witness=False)
    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            analyzer.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
    elapsed = time.perf_counter() - start
    return 1e6 * elapsed / (repeats * len(queries))
