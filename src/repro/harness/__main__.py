"""Module entry point for ``python -m repro.harness``."""

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
