"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table"]


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    footer: Sequence[object] | None = None,
) -> str:
    """Render an aligned ASCII table with a title and optional footer row."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    if footer is not None:
        str_rows.append([_fmt(cell) for cell in footer])
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in str_rows))
        if str_rows
        else len(headers[col])
        for col in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, rule, line(list(headers)), rule]
    body = str_rows[:-1] if footer is not None else str_rows
    out.extend(line(row) for row in body)
    if footer is not None:
        out.append(rule)
        out.append(line(str_rows[-1]))
    out.append(rule)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
