"""IR -> real-language source emitters.

The inverse direction of the frontends: render an IR program as Python
(and C) text that the corresponding frontend extracts back to the same
dependence behavior.  Mirrors
:func:`repro.lang.unparse.program_to_source` — statements sharing a
nest are not re-fused; each assignment carries its own copy of the
enclosing loops, which is sufficient for dependence round-trips (they
work per statement pair).  Used by the fuzz harness's end-to-end check
and the frontend golden tests.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.lang.unparse import _affine_to_text

__all__ = ["program_to_python", "program_to_c"]


def program_to_python(program: Program) -> str:
    """Render an IR program as Python the Python frontend re-extracts.

    Free symbolic names are left free (the frontend treats them as
    symbolic terms), so the emitted text is for analysis, not
    execution.
    """
    out: list[str] = []
    for stmt in program.statements:
        depth = 0
        for loop in stmt.nest:
            pad = "    " * depth
            lower = _affine_to_text(loop.lower)
            upper = _affine_to_text(loop.upper)
            out.append(f"{pad}for {loop.var} in range({lower}, ({upper}) + 1):")
            depth += 1
        pad = "    " * depth
        out.append(f"{pad}{_py_stmt(stmt)}")
    return "\n".join(out) + "\n"


def program_to_c(program: Program) -> str:
    """Render an IR program as a C function the C frontend re-extracts."""
    out: list[str] = ["void kernel() {"]
    for stmt in program.statements:
        depth = 1
        for loop in stmt.nest:
            pad = "  " * depth
            lower = _affine_to_text(loop.lower)
            upper = _affine_to_text(loop.upper)
            out.append(
                f"{pad}for ({loop.var} = {lower}; "
                f"{loop.var} <= {upper}; {loop.var}++)"
            )
            depth += 1
        pad = "  " * depth
        out.append(f"{pad}{_ref_text(stmt)};")
    out.append("}")
    return "\n".join(out) + "\n"


def _ref_text(stmt) -> str:
    write = stmt.write
    target = (
        write.array
        + "".join(f"[{_affine_to_text(s)}]" for s in write.subscripts)
        if write is not None
        else "scratch"
    )
    reads = " + ".join(
        ref.array + "".join(f"[{_affine_to_text(s)}]" for s in ref.subscripts)
        for ref in stmt.reads
    ) or "0"
    return f"{target} = {reads}"


def _py_stmt(stmt) -> str:
    return _ref_text(stmt)
