"""Real-source frontends: lower C and Python loop nests into repro.ir.

See DESIGN.md section 16.  ``extract_source``/``extract_path`` are the
entry points; :mod:`repro.frontends.pyfront` and
:mod:`repro.frontends.cfront` hold the per-language translators, and
:mod:`repro.frontends.base` the shared record types and the stable
skip-reason codes.
"""

from repro.frontends.base import (
    ExtractedNest,
    ExtractResult,
    SkipReason,
    SkipRecord,
    SourceSpan,
    Untranslatable,
)
from repro.frontends.emit import program_to_c, program_to_python
from repro.frontends.extract import (
    EXTENSIONS,
    LANGUAGES,
    detect_language,
    extract_path,
    extract_source,
)

__all__ = [
    "ExtractedNest",
    "ExtractResult",
    "SkipReason",
    "SkipRecord",
    "SourceSpan",
    "Untranslatable",
    "LANGUAGES",
    "EXTENSIONS",
    "detect_language",
    "extract_source",
    "extract_path",
    "program_to_python",
    "program_to_c",
]
