"""Python frontend: lower real Python loop nests to the mini-Fortran AST.

Walks a module with the stdlib :mod:`ast` parser and translates
``for``-loop nests over ``range(...)`` with subscripted reads/writes
into :class:`~repro.lang.ast_nodes.SourceProgram` — the exact shape the
mini-Fortran parser produces — so the existing prepass optimizer and
affine lowering run unchanged and the frontend inherits their
semantics bit-for-bit.

Supported surface, per the frontend contract (see
:mod:`repro.frontends.base`):

* ``for i in range(n)`` / ``range(lo, hi)`` / ``range(lo, hi, step)``
  with a literal integer step (negative steps included; the prepass
  normalizer rewrites them to step 1);
* subscripted stores and loads in all three common spellings —
  chained ``A[i][j]``, linearized ``A[i*64 + j]``, numpy-style
  ``A[i, j]`` — with index expressions linear in loop variables and
  literals;
* free loop-invariant names (``n`` in ``range(1, n)``) as symbolic
  terms, like a mini-Fortran ``read(n)``;
* augmented assignment (``acc[i] += a[i][j]``) as read-modify-write;
* scalar assignments: affine ones fold away in the optimizer's
  induction substitution; opaque ones poison the scalar so any
  subscript using it is rejected as not provably loop-invariant;
* ``if``/``else`` conservatively (both branches' references treated as
  potentially executed, conditions ignored — may over-report, never
  misses);
* a right-hand side the affine subset cannot express (calls,
  float math) degrades to the *sum of its array reads* when every read
  is itself affine — dependence testing only consumes the read set, so
  ``A[i] = math.sin(B[i])`` still contributes ``B[i] -> A[i]``.

Everything else — ``while``, slices, non-``range`` iterators, calls in
index positions, starred/tuple targets — is skipped with a stable
reason code, never silently dropped.
"""

from __future__ import annotations

import ast

from repro.frontends.base import (
    OPAQUE_ARRAY,
    SkipReason,
    SkipRecord,
    SourceSpan,
    Untranslatable,
)
from repro.lang.ast_nodes import (
    Access,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Num,
    SourceProgram,
    Stmt,
)

__all__ = ["translate_python"]


def translate_python(
    text: str, name: str = "<source>"
) -> tuple[SourceProgram, list[SkipRecord], list[tuple[str, SourceSpan]]]:
    """Translate Python source into the mini-Fortran AST.

    Returns the translated program, the skip records, and one
    ``(context, span)`` record per outermost extracted loop nest, all
    in source order.  Raises :class:`SyntaxError` when the text is not
    valid Python at all.
    """
    module = ast.parse(text, filename=name)
    translator = _PyTranslator(_scalar_assigned_names(module))
    body = translator.body(module.body, "<module>", depth=0)
    program = SourceProgram(
        body=body, name=name, source_lines=text.count("\n") + 1
    )
    return program, translator.skipped, translator.nest_spans


def _scalar_assigned_names(module: ast.Module) -> frozenset[str]:
    """Names bound by plain/augmented assignment anywhere in the module.

    Subscripting through such a name (``row = A[i]; row[j] = x``) is a
    name-binding alias the affine model cannot express, so accesses
    whose *base* is a rebound name are refused (``alias``).  Names used
    only as scalars or subscript indices are unaffected.
    """
    out: set[str] = set()
    for node in ast.walk(module):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return frozenset(out)


class _PyTranslator:
    def __init__(self, rebound_names: frozenset[str] = frozenset()) -> None:
        self.rebound_names = rebound_names
        self.skipped: list[SkipRecord] = []
        self.nest_spans: list[tuple[str, SourceSpan]] = []

    def skip(self, reason: str, line: int, detail: str) -> None:
        self.skipped.append(SkipRecord(reason, line, detail))

    # -- statements --------------------------------------------------------

    def body(
        self, stmts: list[ast.stmt], context: str, depth: int
    ) -> list[Stmt]:
        out: list[Stmt] = []
        for node in stmts:
            out.extend(self.statement(node, context, depth))
        return out

    def statement(
        self, node: ast.stmt, context: str, depth: int
    ) -> list[Stmt]:
        if isinstance(node, ast.For):
            return self.for_loop(node, context, depth)
        if isinstance(node, ast.Assign):
            return self.assign(node)
        if isinstance(node, ast.AugAssign):
            return self.aug_assign(node)
        if isinstance(node, ast.AnnAssign):
            return self.ann_assign(node)
        if isinstance(node, ast.If):
            # Control flow is conservatively ignored for dependence
            # testing (both branches potentially execute), mirroring
            # the mini-Fortran lowering of `if`.
            then_body = self.body(node.body, context, depth)
            else_body = self.body(node.orelse, context, depth)
            if not then_body and not else_body:
                return []
            return [
                IfStmt(
                    op="<",
                    left=Num(0),
                    right=Num(1),
                    then_body=then_body,
                    else_body=else_body,
                    line=node.lineno,
                )
            ]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Each function is its own extraction context with a fresh
            # loop stack; nests inside are named after it.
            return self.body(node.body, node.name, depth=0)
        if isinstance(node, ast.ClassDef):
            return self.body(node.body, f"{context}.{node.name}", depth=0)
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant):
                return []  # docstring / bare literal: nothing to model
            self.skip(
                SkipReason.UNSUPPORTED_STATEMENT,
                node.lineno,
                f"expression statement ({ast.dump(node.value)[:40]}...) "
                "cannot write an analyzable reference",
            )
            return []
        if isinstance(node, (ast.Break, ast.Continue)):
            # Dropping these *enlarges* the modeled iteration space:
            # conservative for dependence (may over-report, never
            # misses), but worth surfacing.
            self.skip(
                SkipReason.CONTROL_FLOW,
                node.lineno,
                f"{type(node).__name__.lower()} ignored "
                "(iteration space over-approximated)",
            )
            return []
        if isinstance(
            node,
            (
                ast.Import,
                ast.ImportFrom,
                ast.Pass,
                ast.Return,
                ast.Global,
                ast.Nonlocal,
                ast.Assert,
                ast.Delete,
            ),
        ):
            return []  # no array writes; nothing to model
        self.skip(
            SkipReason.UNSUPPORTED_STATEMENT,
            node.lineno,
            f"{type(node).__name__} statement outside the analyzable subset",
        )
        return []

    def for_loop(
        self, node: ast.For, context: str, depth: int
    ) -> list[Stmt]:
        line = node.lineno
        if node.orelse:
            self.skip(
                SkipReason.UNSUPPORTED_STATEMENT,
                line,
                "for/else loop (else clause not modeled)",
            )
            return []
        if not isinstance(node.target, ast.Name):
            self.skip(
                SkipReason.NON_NAME_TARGET,
                line,
                "loop target is not a plain variable name",
            )
            return []
        bounds = self.range_bounds(node.iter, line)
        if bounds is None:
            return []
        lower, upper, step = bounds
        body = self.body(node.body, context, depth + 1)
        loop = ForLoop(node.target.id, lower, upper, step, body, line=line)
        if depth == 0:
            end = getattr(node, "end_lineno", None) or line
            self.nest_spans.append((context, SourceSpan(line, end)))
        return [loop]

    def range_bounds(
        self, iter_node: ast.expr, line: int
    ) -> tuple[Expr, Expr, int] | None:
        """``(lower, inclusive upper, step)`` of a ``range(...)`` call."""
        if not (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
        ):
            self.skip(
                SkipReason.NON_RANGE_LOOP,
                line,
                "for loop does not iterate over range(...)",
            )
            return None
        if iter_node.keywords or not 1 <= len(iter_node.args) <= 3:
            self.skip(
                SkipReason.NON_RANGE_LOOP,
                line,
                "range(...) call outside the 1-3 positional-argument form",
            )
            return None
        step = 1
        if len(iter_node.args) == 3:
            step_value = _literal_int(iter_node.args[2])
            if step_value is None:
                self.skip(
                    SkipReason.NON_LITERAL_STEP,
                    line,
                    "range step is not an integer literal",
                )
                return None
            if step_value == 0:
                self.skip(SkipReason.ZERO_STEP, line, "range step is zero")
                return None
            step = step_value
        try:
            if len(iter_node.args) == 1:
                lower: Expr = Num(0)
                limit = self.expr(iter_node.args[0])
            else:
                lower = self.expr(iter_node.args[0])
                limit = self.expr(iter_node.args[1])
        except Untranslatable as err:
            self.skip(
                SkipReason.NONAFFINE_BOUND,
                line,
                f"loop bound: {err.detail}",
            )
            return None
        # range's limit is exclusive; the mini-Fortran upper bound is
        # inclusive (DO semantics), in both step directions.
        if step > 0:
            upper = BinOp("-", limit, Num(1))
        else:
            upper = BinOp("+", limit, Num(1))
        return lower, upper, step

    def assign(self, node: ast.Assign) -> list[Stmt]:
        if len(node.targets) != 1:
            self.skip(
                SkipReason.UNSUPPORTED_STATEMENT,
                node.lineno,
                "chained assignment (a = b = ...)",
            )
            return []
        return self.store(node.targets[0], node.value, node.lineno)

    def ann_assign(self, node: ast.AnnAssign) -> list[Stmt]:
        if node.value is None:
            return []  # bare annotation declares nothing we model
        return self.store(node.target, node.value, node.lineno)

    def aug_assign(self, node: ast.AugAssign) -> list[Stmt]:
        """``target op= value`` as an explicit read-modify-write."""
        line = node.lineno
        op = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}.get(type(node.op))
        if op is None:
            # Outside the affine operator set (/=, //=, ...): the
            # value's exact form is unrepresentable, but the *reads*
            # are target + value reads — hand the read-collection
            # fallback an addition it will fail to fully translate.
            synthetic = ast.BinOp(
                left=node.target, op=ast.Div(), right=node.value
            )
            ast.copy_location(synthetic, node)
            ast.fix_missing_locations(synthetic)
            return self.store(node.target, synthetic, line)
        rmw = ast.BinOp(left=node.target, op=node.op, right=node.value)
        ast.copy_location(rmw, node)
        ast.fix_missing_locations(rmw)
        return self.store(node.target, rmw, line)

    def store(
        self, target: ast.expr, value: ast.expr, line: int
    ) -> list[Stmt]:
        if isinstance(target, ast.Name):
            return self.scalar_store(target.id, value, line)
        if not isinstance(target, ast.Subscript):
            self.skip(
                SkipReason.UNSUPPORTED_STATEMENT,
                line,
                "assignment target is neither a name nor a subscript",
            )
            return []
        try:
            access = self.access(target)
        except Untranslatable as err:
            self.skip(err.reason, line, f"store target: {err.detail}")
            return []
        rhs = self.rhs(value, line)
        if rhs is None:
            return []
        return [Assign(access, rhs, line=line)]

    def scalar_store(self, name: str, value: ast.expr, line: int) -> list[Stmt]:
        """A scalar definition: translate exactly, or poison the name.

        An affine definition participates in the optimizer's induction
        substitution (closed forms fold into subscripts).  A definition
        the subset cannot express still *must* be recorded — otherwise
        the lowering stage would wrongly treat the scalar as
        loop-invariant — so it becomes a read of the opaque marker
        array, which can never fold.
        """
        try:
            rhs: Expr = self.expr(value)
        except Untranslatable:
            rhs = Access(OPAQUE_ARRAY, (Num(line),))
        return [Assign(Name(name), rhs, line=line)]

    def rhs(self, value: ast.expr, line: int) -> Expr | None:
        """A store's right-hand side: exact, or the sum of its reads."""
        try:
            return self.expr(value)
        except Untranslatable:
            pass
        reads: list[Expr] = []
        try:
            for node in ast.walk(value):
                if isinstance(node, ast.Subscript) and not _nested_subscript(
                    node, value
                ):
                    reads.append(self.access(node))
        except Untranslatable as err:
            self.skip(err.reason, line, err.detail)
            return None
        total: Expr = Num(0)
        for read in reads:
            total = BinOp("+", total, read)
        return total

    # -- expressions -------------------------------------------------------

    def expr(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, int):
                raise Untranslatable(
                    SkipReason.FLOAT_INDEX,
                    f"non-integer literal {node.value!r}",
                    node.lineno,
                )
            return Num(node.value)
        if isinstance(node, ast.Name):
            return Name(node.id)
        if isinstance(node, ast.BinOp):
            op = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}.get(
                type(node.op)
            )
            if op is None:
                raise Untranslatable(
                    SkipReason.UNSUPPORTED_EXPRESSION,
                    f"operator {type(node.op).__name__} is not affine",
                    node.lineno,
                )
            return BinOp(op, self.expr(node.left), self.expr(node.right))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return BinOp("-", Num(0), self.expr(node.operand))
            if isinstance(node.op, ast.UAdd):
                return self.expr(node.operand)
            raise Untranslatable(
                SkipReason.UNSUPPORTED_EXPRESSION,
                f"unary {type(node.op).__name__}",
                node.lineno,
            )
        if isinstance(node, ast.Subscript):
            return self.access(node)
        if isinstance(node, ast.Call):
            raise Untranslatable(
                SkipReason.CALL_EXPRESSION,
                "function call in a lowered position",
                node.lineno,
            )
        raise Untranslatable(
            SkipReason.UNSUPPORTED_EXPRESSION,
            f"{type(node).__name__} expression",
            getattr(node, "lineno", 0),
        )

    def access(self, node: ast.Subscript) -> Access:
        """Chained / numpy-style subscripts as one multi-dim access."""
        subs: list[Expr] = []
        current: ast.expr = node
        while isinstance(current, ast.Subscript):
            slice_node = current.slice
            if isinstance(slice_node, (ast.Slice, ast.Starred)):
                raise Untranslatable(
                    SkipReason.SLICE_SUBSCRIPT,
                    "slice subscript (A[i:j]) is not an element access",
                    current.lineno,
                )
            if isinstance(slice_node, ast.Tuple):
                dims = [self.expr(element) for element in slice_node.elts]
            else:
                dims = [self.expr(slice_node)]
            subs = dims + subs
            current = current.value
        if not isinstance(current, ast.Name):
            raise Untranslatable(
                SkipReason.UNSUPPORTED_EXPRESSION,
                "subscripted base is not a plain array name",
                node.lineno,
            )
        if current.id in self.rebound_names:
            raise Untranslatable(
                SkipReason.ALIAS,
                f"subscript through rebound name {current.id!r} "
                "(may alias another array)",
                node.lineno,
            )
        return Access(current.id, tuple(subs))


def _literal_int(node: ast.expr) -> int | None:
    """The integer value of a (possibly negated) literal, else None."""
    sign = 1
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.USub):
            sign = -1
            node = node.operand
        elif isinstance(node.op, ast.UAdd):
            node = node.operand
        else:
            return None
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return sign * node.value
    return None


def _nested_subscript(node: ast.Subscript, root: ast.expr) -> bool:
    """Is ``node`` the inner link of a chained ``A[i][j]`` access?

    The read-collection fallback walks every Subscript in an opaque
    right-hand side; for ``A[i][j]`` the walk yields both the full
    chain and its inner ``A[i]`` link, which must not be double
    counted.  A subscript is "nested" when it appears as the *value*
    of another subscript anywhere in the tree.
    """
    for parent in ast.walk(root):
        if isinstance(parent, ast.Subscript) and parent.value is node:
            return True
    return False
