"""Shared types of the real-source frontend layer.

A frontend turns source text written in a *real* language (Python, a C
subset — see :mod:`repro.frontends.pyfront` / :mod:`repro.frontends.cfront`)
into the same :class:`~repro.lang.ast_nodes.SourceProgram` the
mini-Fortran parser produces, so the whole existing pipeline —
prepass optimizer, affine lowering, batch engine, serve daemon,
incremental sessions — applies unchanged.  The contract every
frontend honors:

* **affine** index expressions and loop bounds (linear in loop
  variables with integer literal coefficients) lower exactly;
* **free loop-invariant names** become symbolic terms, exactly like a
  mini-Fortran ``read(n)`` declaration;
* **everything else is skipped, never silently dropped**: each skipped
  construct produces a :class:`SkipRecord` with a *stable reason code*
  from :class:`SkipReason` plus the source line, so callers (and CI
  goldens) can pin what the frontend refused and why.

Extraction results are deterministic: nests, statements and skip
records appear in source order, and re-extracting identical text
yields identical records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import Program, Statement

__all__ = [
    "SkipReason",
    "SkipRecord",
    "SourceSpan",
    "ExtractedNest",
    "ExtractResult",
    "Untranslatable",
    "OPAQUE_ARRAY",
]

# Marker array used to poison scalars whose defining expression a
# frontend cannot translate: ``k = <opaque>`` becomes a read of this
# pseudo-array, which the optimizer can never fold into a closed form,
# so the lowering stage rejects any subscript using ``k`` (the scalar
# is not provably loop-invariant).  The name contains characters no
# surface language accepts in an identifier, so it can never collide
# with (or leak into) real program text.
OPAQUE_ARRAY = "__opaque?"


class SkipReason:
    """Stable machine-readable codes for skipped constructs.

    These strings are part of the frontend contract — CI goldens and
    downstream tools match on them — so existing codes must never be
    renamed, only new ones added.
    """

    NON_RANGE_LOOP = "non-range-loop"  # Python for not over range(...)
    NON_NAME_TARGET = "non-name-target"  # loop variable isn't a plain name
    NON_LITERAL_STEP = "non-literal-step"  # range/for step isn't a literal int
    ZERO_STEP = "zero-step"
    MALFORMED_LOOP = "malformed-loop"  # C for(...) outside the subset
    NONAFFINE_SUBSCRIPT = "nonaffine-subscript"
    NONAFFINE_BOUND = "nonaffine-bound"
    SLICE_SUBSCRIPT = "slice-subscript"  # A[i:j] / A[::2]
    CALL_EXPRESSION = "call-expression"  # call in a lowered position
    POINTER = "pointer"  # *p, &x, p->f, s.f (C)
    FLOAT_INDEX = "float-index"  # non-integer literal in a lowered position
    UNSUPPORTED_STATEMENT = "unsupported-statement"  # while/try/with/...
    UNSUPPORTED_EXPRESSION = "unsupported-expression"
    CONTROL_FLOW = "control-flow"  # break/continue/goto inside a nest
    ALIAS = "alias"  # store through a name bound from another value
    RANK_MISMATCH = "rank-mismatch"  # one array, two subscript ranks
    SCALAR_NOT_INVARIANT = "scalar-not-invariant"  # from the lowering stage
    NONNORMALIZABLE_STEP = "nonnormalizable-step"  # from the lowering stage
    LOWERING = "lowering"  # any other lowering-stage refusal
    PARSE_ERROR = "parse-error"

    ALL = (
        NON_RANGE_LOOP,
        NON_NAME_TARGET,
        NON_LITERAL_STEP,
        ZERO_STEP,
        MALFORMED_LOOP,
        NONAFFINE_SUBSCRIPT,
        NONAFFINE_BOUND,
        SLICE_SUBSCRIPT,
        CALL_EXPRESSION,
        POINTER,
        FLOAT_INDEX,
        UNSUPPORTED_STATEMENT,
        UNSUPPORTED_EXPRESSION,
        CONTROL_FLOW,
        ALIAS,
        RANK_MISMATCH,
        SCALAR_NOT_INVARIANT,
        NONNORMALIZABLE_STEP,
        LOWERING,
        PARSE_ERROR,
    )


class Untranslatable(Exception):
    """Raised inside a frontend when a construct leaves the subset.

    Carries the stable reason code; the frontend catches it at
    statement granularity and converts it to a :class:`SkipRecord`.
    """

    def __init__(self, reason: str, detail: str, line: int = 0):
        super().__init__(detail)
        self.reason = reason
        self.detail = detail
        self.line = line


@dataclass(frozen=True)
class SkipRecord:
    """One construct the frontend declined, with a stable reason code."""

    reason: str
    line: int
    detail: str

    def __str__(self) -> str:
        return f"line {self.line}: [{self.reason}] {self.detail}"

    def to_dict(self) -> dict:
        return {"reason": self.reason, "line": self.line, "detail": self.detail}


@dataclass(frozen=True)
class SourceSpan:
    """An inclusive line range in the original source file."""

    line: int
    end_line: int

    def contains(self, line: int) -> bool:
        return self.line <= line <= self.end_line

    def __str__(self) -> str:
        if self.end_line == self.line:
            return f"line {self.line}"
        return f"lines {self.line}-{self.end_line}"


@dataclass
class ExtractedNest:
    """One outermost loop nest extracted from real source.

    ``statements`` are the lowered IR statements whose enclosing loops
    all live inside this nest's source span; ``context`` names the
    surrounding function (``<module>`` / ``<file>`` at top level).
    """

    index: int
    language: str
    context: str
    span: SourceSpan
    statements: list[Statement] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Deepest loop nesting among the nest's statements."""
        return max((s.nest.depth for s in self.statements), default=0)

    def loop_variables(self) -> tuple[str, ...]:
        """All loop variables, outermost-first, first occurrence wins."""
        seen: list[str] = []
        for stmt in self.statements:
            for var in stmt.nest.variables:
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def program(self) -> Program:
        """This nest's statements alone, as an analyzable program."""
        return Program(
            f"{self.context}:{self.span.line}", list(self.statements)
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "language": self.language,
            "context": self.context,
            "line": self.span.line,
            "end_line": self.span.end_line,
            "depth": self.depth,
            "loop_variables": list(self.loop_variables()),
            "statements": len(self.statements),
        }


@dataclass
class ExtractResult:
    """Everything one extraction produced, in deterministic order.

    ``program`` holds *all* lowered statements (inside nests or not) in
    source order — the thing ``analyze``/``deps``/``batch`` consume;
    ``nests`` groups the subset that lives inside loop nests for
    per-nest reporting; ``skipped`` carries every refusal.
    """

    language: str
    name: str
    program: Program
    nests: list[ExtractedNest] = field(default_factory=list)
    skipped: list[SkipRecord] = field(default_factory=list)
    symbols: frozenset[str] = frozenset()

    def skip_reasons(self) -> list[str]:
        """Sorted unique reason codes over all skip records."""
        return sorted({record.reason for record in self.skipped})

    def summary(self) -> dict:
        return {
            "language": self.language,
            "name": self.name,
            "nests": len(self.nests),
            "statements": len(self.program.statements),
            "skipped": len(self.skipped),
            "skip_reasons": self.skip_reasons(),
        }

    def to_dict(self) -> dict:
        out = self.summary()
        out["nest_records"] = [nest.to_dict() for nest in self.nests]
        out["skip_records"] = [record.to_dict() for record in self.skipped]
        out["symbols"] = sorted(self.symbols)
        return out
