"""Shared extraction driver: real source text to analyzable IR.

``extract_source`` dispatches on language (``python`` / ``c`` /
``loop``), runs the frontend translation to the mini-Fortran AST, then
the *existing* prepass optimizer and permissive affine lowering — so a
frontend-extracted program is, by construction, indistinguishable from
the same nests written natively in the ``.loop`` language.  On top of
the lowered program it produces:

* :class:`~repro.frontends.base.ExtractedNest` records grouping the
  IR statements by outermost source nest (via source spans and the
  ``line{N}`` statement labels);
* a merged, line-ordered skip list in which lowering-stage refusals
  (strings like ``"line 4: non-affine product..."``) are mapped onto
  the same stable reason codes the frontends use;
* the free symbolic names the lowered program depends on.

Extraction is deterministic: identical text yields identical results,
and nests/skips appear in source order.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.frontends.base import (
    ExtractedNest,
    ExtractResult,
    SkipReason,
    SkipRecord,
    SourceSpan,
)
from repro.frontends.cfront import translate_c
from repro.frontends.pyfront import translate_python
from repro.ir.program import Program
from repro.lang.ast_nodes import ForLoop, SourceProgram, walk_statements
from repro.lang.errors import ParseError
from repro.lang.lower import lower
from repro.lang.parser import parse as parse_loop
from repro.opt.pipeline import optimize

__all__ = [
    "LANGUAGES",
    "EXTENSIONS",
    "detect_language",
    "extract_source",
    "extract_path",
]

LANGUAGES = ("python", "c", "loop")

EXTENSIONS = {
    ".py": "python",
    ".c": "c",
    ".h": "c",
    ".loop": "loop",
}

_SKIP_LINE = re.compile(r"^line (\d+): (.*)$", re.DOTALL)

# Lowering-stage refusal messages mapped onto the stable reason codes
# (message fragments are repro.lang.lower's wording).
_LOWERING_REASONS = (
    ("unnormalized step", SkipReason.NONNORMALIZABLE_STEP),
    ("not loop-invariant", SkipReason.SCALAR_NOT_INVARIANT),
    ("non-affine product", SkipReason.NONAFFINE_SUBSCRIPT),
    ("array element", SkipReason.NONAFFINE_SUBSCRIPT),
)


def detect_language(path: str | Path) -> str:
    """Frontend language for a file path, by extension (default loop)."""
    return EXTENSIONS.get(Path(path).suffix.lower(), "loop")


def extract_source(
    text: str, lang: str = "loop", name: str = "<source>"
) -> ExtractResult:
    """Extract loop nests from source text in the given language.

    Never raises on malformed input: a file-level parse failure yields
    an empty program with a single ``parse-error`` skip record, so
    batch runs over real repositories keep going.
    """
    if lang not in LANGUAGES:
        raise ValueError(
            f"unknown language {lang!r}; expected one of {', '.join(LANGUAGES)}"
        )
    try:
        if lang == "python":
            ast_program, skipped, spans = translate_python(text, name)
        elif lang == "c":
            ast_program, skipped, spans = translate_c(text, name)
        else:
            ast_program = parse_loop(text, name=name)
            skipped = []
            spans = _loop_spans(ast_program)
    except (SyntaxError, ParseError) as err:
        line = getattr(err, "lineno", None) or getattr(err, "line", 0) or 0
        record = SkipRecord(SkipReason.PARSE_ERROR, line, str(err))
        return ExtractResult(
            language=lang,
            name=name,
            program=Program(name),
            skipped=[record],
        )
    result = lower(optimize(ast_program), strict=False)
    skipped = skipped + [_map_lowering_skip(entry) for entry in result.skipped]
    program, rank_skips = _enforce_ranks(result.program)
    skipped += rank_skips
    skipped.sort(key=lambda record: record.line)
    nests = _group_nests(lang, program, spans)
    return ExtractResult(
        language=lang,
        name=name,
        program=program,
        nests=nests,
        skipped=skipped,
        symbols=result.symbols | _free_symbols(program),
    )


def extract_path(path: str | Path, lang: str | None = None) -> ExtractResult:
    """Extract from a file, detecting the language from its extension."""
    path = Path(path)
    return extract_source(
        path.read_text(),
        lang=lang or detect_language(path),
        name=str(path),
    )


def _map_lowering_skip(entry: str) -> SkipRecord:
    match = _SKIP_LINE.match(entry)
    line = int(match.group(1)) if match else 0
    detail = match.group(2) if match else entry
    detail = re.sub(r"^\d+:\d+: ", "", detail)  # drop LowerError's loc prefix
    for fragment, reason in _LOWERING_REASONS:
        if fragment in detail:
            return SkipRecord(reason, line, detail)
    return SkipRecord(SkipReason.LOWERING, line, detail)


def _enforce_ranks(program: Program) -> tuple[Program, list[SkipRecord]]:
    """Drop statements that reuse an array at a conflicting rank.

    Real source can subscript one name with different ranks (distinct
    locals in different functions, or genuinely ragged use); the
    dependence system requires a single rank per array, so the first
    occurrence in program order fixes it and later conflicting
    statements are skipped, never silently analyzed wrong.
    """
    ranks: dict[str, int] = {}
    kept: list = []
    skips: list[SkipRecord] = []
    for stmt in program.statements:
        conflict = None
        for ref in stmt.refs():
            rank = len(ref.subscripts)
            seen = ranks.get(ref.array)
            if seen is not None and seen != rank:
                conflict = (ref.array, seen, rank)
                break
        if conflict is None:
            for ref in stmt.refs():
                ranks.setdefault(ref.array, len(ref.subscripts))
            kept.append(stmt)
        else:
            array, seen, rank = conflict
            match = _LABEL_LINE.match(stmt.label)
            line = int(match.group(1)) if match else 0
            skips.append(
                SkipRecord(
                    SkipReason.RANK_MISMATCH,
                    line,
                    f"array {array!r} used with rank {rank} after rank {seen}",
                )
            )
    if len(kept) == len(program.statements):
        return program, skips
    out = Program(program.name, kept, source_lines=program.source_lines)
    return out, skips


def _loop_spans(program: SourceProgram) -> list[tuple[str, SourceSpan]]:
    """Outermost-loop spans of a native mini-Fortran program."""
    spans: list[tuple[str, SourceSpan]] = []
    for stmt in program.body:
        if isinstance(stmt, ForLoop):
            last = max(
                (inner.line for inner in walk_statements([stmt])),
                default=stmt.line,
            )
            spans.append(("<file>", SourceSpan(stmt.line, max(last, stmt.line))))
    return spans


_LABEL_LINE = re.compile(r"^line(\d+)$")


def _group_nests(
    lang: str, program: Program, spans: list[tuple[str, SourceSpan]]
) -> list[ExtractedNest]:
    nests = [
        ExtractedNest(index=i, language=lang, context=context, span=span)
        for i, (context, span) in enumerate(spans)
    ]
    for stmt in program.statements:
        match = _LABEL_LINE.match(stmt.label)
        if not match:
            continue
        line = int(match.group(1))
        for nest in nests:
            if nest.span.contains(line):
                nest.statements.append(stmt)
                break
    return nests


def _free_symbols(program: Program) -> frozenset[str]:
    """Free names the lowered statements depend on (non loop-variable)."""
    out: set[str] = set()
    for stmt in program.statements:
        out |= stmt.nest.symbols()
        loop_vars = set(stmt.nest.variables)
        for ref in stmt.refs():
            out |= ref.variables() - loop_vars
    return frozenset(out)
