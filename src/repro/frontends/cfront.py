"""C-subset frontend: lower C loop nests to the mini-Fortran AST.

A hand-written lexer and recursive-descent parser (mirroring the
:mod:`repro.lang` architecture) for the loop-nest subset of C::

    for (i = lo; i < hi; i++) { A[i][j] = B[i][j] + 1; }

Recognized surface:

* function definitions (each is an extraction context; nests inside
  are named after the function), preprocessor lines and comments are
  skipped at the lexer level;
* ``for`` headers ``(var = lo; var REL hi; STEP)`` where ``REL`` is one
  of ``< <= > >=`` (matching the step direction) and ``STEP`` is
  ``var++ / ++var / var-- / --var / var += k / var -= k /
  var = var + k`` with a literal integer ``k``;
* element stores/loads ``A[i][j]``, compound assignment
  (``A[i] += ...``, read-modify-write), ``++``/``--`` statements,
  scalar declarations with initializers (exact when affine, otherwise
  poisoned so dependent subscripts are refused);
* ``if``/``else`` conservatively (both branches potentially execute).

Pointers are excluded by contract: declarators with ``*``, unary
``* &``, ``->`` and ``.`` member access all produce a ``pointer`` skip
record, and a name declared as a pointer poisons every later subscript
that uses it as an array base.  A right-hand side outside the affine
operator set (``/ % << ...``, calls) degrades to the sum of its array
reads, exactly like the Python frontend.

Statement-level failures never abort the file: the parser records a
:class:`~repro.frontends.base.SkipRecord` and re-synchronizes at the
next ``;`` or block boundary, so one rejected construct cannot hide
the analyzable nests around it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontends.base import (
    OPAQUE_ARRAY,
    SkipReason,
    SkipRecord,
    SourceSpan,
    Untranslatable,
)
from repro.lang.ast_nodes import (
    Access,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Num,
    SourceProgram,
    Stmt,
)

__all__ = ["translate_c"]


def translate_c(
    text: str, name: str = "<source>"
) -> tuple[SourceProgram, list[SkipRecord], list[tuple[str, SourceSpan]]]:
    """Translate C source into the mini-Fortran AST.

    Returns the translated program, the skip records, and one
    ``(context, span)`` record per outermost loop nest, in source
    order.  Never raises on malformed input: unparseable regions
    produce ``parse-error`` skip records instead.
    """
    translator = _CTranslator(_tokenize(text))
    body = translator.translation_unit()
    program = SourceProgram(
        body=body, name=name, source_lines=text.count("\n") + 1
    )
    return program, translator.skipped, translator.nest_spans


# -- lexer -------------------------------------------------------------------


@dataclass(frozen=True)
class _Token:
    kind: str  # "ident" | "int" | "float" | "punct" | "literal" | "eof"
    text: str
    line: int


_PUNCT = (
    "<<=", ">>=", "->", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "(", ")", "[", "]", "{", "}", ";", ",", "=", "+", "-", "*", "/",
    "%", "<", ">", "!", "~", "&", "|", "^", "?", ":", ".",
)


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i, line = 0, 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            i = text.find("\n", i)
            i = n if i < 0 else i
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n if end < 0 else end + 2
            line += text.count("\n", i, end)
            i = end
            continue
        if ch == "#":
            # Preprocessor line, honoring backslash continuations.
            while i < n:
                end = text.find("\n", i)
                if end < 0:
                    i = n
                    break
                cont = text[i:end].rstrip().endswith("\\")
                line += 1
                i = end + 1
                if not cont:
                    break
            continue
        if ch in "\"'":
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            tokens.append(_Token("literal", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and (text[j].isalnum() or text[j] in "._"):
                if text[j] in ".eEpP" and not text[i:j].startswith(("0x", "0X")):
                    is_float = is_float or text[j] == "."
                    if text[j] in "eE" and j + 1 < n and text[j + 1] in "+-":
                        is_float = True
                        j += 1
                j += 1
            word = text[i:j]
            kind = "float" if (is_float or "." in word) else "int"
            tokens.append(_Token(kind, word, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(_Token("ident", text[i:j], line))
            i = j
            continue
        for punct in _PUNCT:
            if text.startswith(punct, i):
                tokens.append(_Token("punct", punct, line))
                i += len(punct)
                break
        else:
            tokens.append(_Token("punct", ch, line))
            i += 1
    tokens.append(_Token("eof", "", line))
    return tokens


def _int_value(text: str) -> int:
    return int(text.rstrip("uUlL") or "0", 0)


# -- tiny C expression AST ----------------------------------------------------


class _CExpr:
    __slots__ = ()


@dataclass(frozen=True)
class _CNum(_CExpr):
    value: int
    line: int


@dataclass(frozen=True)
class _CFloat(_CExpr):
    text: str
    line: int


@dataclass(frozen=True)
class _CName(_CExpr):
    ident: str
    line: int


@dataclass(frozen=True)
class _CIndex(_CExpr):
    base: _CExpr
    index: _CExpr
    line: int


@dataclass(frozen=True)
class _CCall(_CExpr):
    name: str
    args: tuple[_CExpr, ...]
    line: int


@dataclass(frozen=True)
class _CUnary(_CExpr):
    op: str
    operand: _CExpr
    line: int


@dataclass(frozen=True)
class _CBin(_CExpr):
    op: str
    left: _CExpr
    right: _CExpr
    line: int


def _c_children(node: _CExpr) -> tuple[_CExpr, ...]:
    if isinstance(node, _CIndex):
        return (node.base, node.index)
    if isinstance(node, _CCall):
        return node.args
    if isinstance(node, _CUnary):
        return (node.operand,)
    if isinstance(node, _CBin):
        return (node.left, node.right)
    return ()


_TYPE_WORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "float", "double",
        "signed", "unsigned", "const", "volatile", "static", "register",
        "restrict", "inline", "extern", "auto", "struct", "union", "enum",
        "size_t", "ssize_t", "ptrdiff_t", "bool", "_Bool",
        "int8_t", "int16_t", "int32_t", "int64_t",
        "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    }
)

_CONTROL_WORDS = frozenset(
    {"for", "if", "else", "while", "do", "switch", "case", "default",
     "goto", "break", "continue", "return", "sizeof", "typedef"}
)

# Multiplicative/additive binary level table, loosest first; only the
# affine subset (+ - *) survives translation, the rest exists so reads
# inside e.g. `x / 2` are still collected.
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class _CTranslator:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.pos = 0
        self.skipped: list[SkipRecord] = []
        self.nest_spans: list[tuple[str, SourceSpan]] = []
        self.pointer_names: set[str] = set()
        self.rebound_names: set[str] = set()
        self.last_line = 1

    # -- token plumbing ----------------------------------------------------

    @property
    def cur(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.cur
        if token.kind != "eof":
            self.pos += 1
            self.last_line = token.line
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.cur
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        if not self.check(kind, text):
            token = self.cur
            raise Untranslatable(
                SkipReason.PARSE_ERROR,
                f"expected {text or kind!r}, found {token.text or 'EOF'!r}",
                token.line,
            )
        return self.advance()

    def skip(self, reason: str, line: int, detail: str) -> None:
        self.skipped.append(SkipRecord(reason, line, detail))

    def _skip_balanced(self, open_text: str, close_text: str) -> None:
        """Consume from an already-consumed opener to its match."""
        depth = 1
        while depth and not self.check("eof"):
            token = self.advance()
            if token.kind == "punct":
                if token.text == open_text:
                    depth += 1
                elif token.text == close_text:
                    depth -= 1

    def _skip_statement(self) -> None:
        """Re-synchronize after a failed statement."""
        if self.accept("punct", "{"):
            self._skip_balanced("{", "}")
            return
        while not self.check("eof"):
            if self.check("punct", "}"):
                return
            token = self.advance()
            if token.kind == "punct":
                if token.text == ";":
                    return
                if token.text == "(":
                    self._skip_balanced("(", ")")
                elif token.text == "[":
                    self._skip_balanced("[", "]")
                elif token.text == "{":
                    self._skip_balanced("{", "}")

    # -- top level ---------------------------------------------------------

    def translation_unit(self) -> list[Stmt]:
        out: list[Stmt] = []
        while not self.check("eof"):
            function = self._try_function_header()
            if function is not None:
                out.extend(self.statement(function, depth=0))
                continue
            if self.check("ident") or self.check("punct", "{"):
                out.extend(self.guarded_statement("<file>", depth=0))
            else:
                self.advance()
        return out

    def _try_function_header(self) -> str | None:
        """Consume ``type name(params)`` if a body follows; else rewind."""
        start = self.pos
        name: str | None = None
        while self.check("ident") or self.check("punct", "*"):
            token = self.advance()
            if token.kind == "ident":
                if token.text in _CONTROL_WORDS:
                    self.pos = start
                    return None
                name = token.text
        if name is None or not self.check("punct", "("):
            self.pos = start
            return None
        self.advance()
        self._skip_balanced("(", ")")
        if self.check("punct", "{"):
            return name
        self.pos = start
        return None

    # -- statements --------------------------------------------------------

    def guarded_statement(self, context: str, depth: int) -> list[Stmt]:
        before = self.pos
        try:
            return self.statement(context, depth)
        except Untranslatable as err:
            self.skip(err.reason, err.line or self.cur.line, err.detail)
            if self.pos == before:
                self.advance()  # guarantee progress
            self._skip_statement()
            return []

    def statement(self, context: str, depth: int) -> list[Stmt]:
        if self.accept("punct", ";"):
            return []
        if self.accept("punct", "{"):
            out: list[Stmt] = []
            while not self.check("punct", "}") and not self.check("eof"):
                out.extend(self.guarded_statement(context, depth))
            self.expect("punct", "}")
            return out
        token = self.cur
        if token.kind == "ident":
            if token.text == "for":
                return self.for_statement(context, depth)
            if token.text == "if":
                return self.if_statement(context, depth)
            if token.text in ("while", "do", "switch", "goto", "typedef"):
                self.skip(
                    SkipReason.UNSUPPORTED_STATEMENT,
                    token.line,
                    f"{token.text} statement outside the analyzable subset",
                )
                self.advance()
                self._skip_statement()
                return []
            if token.text in ("break", "continue"):
                self.skip(
                    SkipReason.CONTROL_FLOW,
                    token.line,
                    f"{token.text} ignored (iteration space over-approximated)",
                )
                self.advance()
                self.accept("punct", ";")
                return []
            if token.text == "return":
                self.advance()
                self._skip_statement()
                return []  # no array writes; nothing to model
            if self._at_declaration():
                return self.declaration()
        return self.expression_statement()

    def _at_declaration(self) -> bool:
        token = self.cur
        if token.kind != "ident":
            return False
        if token.text in _TYPE_WORDS:
            return True
        # `size_t n = ...` style typedef names: ident followed by
        # another ident (or `* ident`) can only be a declaration.
        after = self.tokens[self.pos + 1]
        if after.kind == "ident" and after.text not in _CONTROL_WORDS:
            return True
        if after.kind == "punct" and after.text == "*":
            third = self.tokens[self.pos + 2]
            return third.kind == "ident"
        return False

    def declaration(self) -> list[Stmt]:
        out: list[Stmt] = []
        while self.check("ident") and (
            self.cur.text in _TYPE_WORDS
            or self.tokens[self.pos + 1].kind == "ident"
            or self.tokens[self.pos + 1].text == "*"
        ):
            if self.tokens[self.pos + 1].kind == "punct" and self.tokens[
                self.pos + 1
            ].text not in ("*",):
                break
            self.advance()
        while True:
            pointer = False
            while self.accept("punct", "*"):
                pointer = True
            name_token = self.expect("ident")
            is_array = False
            while self.accept("punct", "["):
                self._skip_balanced("[", "]")
                is_array = True
            if pointer:
                self.pointer_names.add(name_token.text)
                self.skip(
                    SkipReason.POINTER,
                    name_token.line,
                    f"pointer declarator {name_token.text!r} "
                    "(aliasing not modeled)",
                )
                out.append(
                    Assign(
                        Name(name_token.text),
                        Access(OPAQUE_ARRAY, (Num(name_token.line),)),
                        line=name_token.line,
                    )
                )
                if self.accept("punct", "="):
                    self._skip_initializer()
            elif self.accept("punct", "="):
                if self.check("punct", "{") or is_array:
                    self._skip_initializer()
                else:
                    value = self.c_expression()
                    out.extend(
                        self.scalar_store(
                            name_token.text, value, name_token.line
                        )
                    )
            if self.accept("punct", ","):
                continue
            self.expect("punct", ";")
            return out

    def _skip_initializer(self) -> None:
        if self.accept("punct", "{"):
            self._skip_balanced("{", "}")
            return
        depth = 0
        while not self.check("eof"):
            token = self.cur
            if token.kind == "punct":
                if token.text in ("(", "[", "{"):
                    depth += 1
                elif token.text in (")", "]", "}"):
                    if depth == 0:
                        return
                    depth -= 1
                elif depth == 0 and token.text in (",", ";"):
                    return
            self.advance()

    def if_statement(self, context: str, depth: int) -> list[Stmt]:
        keyword = self.expect("ident", "if")
        self.expect("punct", "(")
        self._skip_balanced("(", ")")  # condition ignored, like lowering
        then_body = self.guarded_statement(context, depth)
        else_body: list[Stmt] = []
        if self.accept("ident", "else"):
            else_body = self.guarded_statement(context, depth)
        if not then_body and not else_body:
            return []
        return [
            IfStmt(
                op="<",
                left=Num(0),
                right=Num(1),
                then_body=then_body,
                else_body=else_body,
                line=keyword.line,
            )
        ]

    # -- for loops ---------------------------------------------------------

    def for_statement(self, context: str, depth: int) -> list[Stmt]:
        keyword = self.expect("ident", "for")
        line = keyword.line
        paren_pos = self.pos
        self.expect("punct", "(")
        try:
            var, lower = self._for_init()
            upper, relop_dir = self._for_condition(var)
            step = self._for_step(var)
            self.expect("punct", ")")
        except Untranslatable as err:
            self.skip(err.reason, err.line or line, err.detail)
            self.pos = paren_pos
            self.advance()
            self._skip_balanced("(", ")")
            self._skip_statement()  # nest body dropped with the header
            return []
        if (step > 0) != (relop_dir > 0):
            self.skip(
                SkipReason.MALFORMED_LOOP,
                line,
                f"loop test direction disagrees with step {step}",
            )
            self._skip_statement()
            return []
        body = self.guarded_statement(context, depth + 1)
        loop = ForLoop(var, lower, upper, step, body, line=line)
        if depth == 0:
            self.nest_spans.append((context, SourceSpan(line, self.last_line)))
        return [loop]

    def _for_init(self) -> tuple[str, Expr]:
        while self.check("ident") and self.cur.text in _TYPE_WORDS:
            self.advance()
        var_token = self.expect("ident")
        self.expect("punct", "=")
        lower = self.translate(self.c_expression())
        if self.check("punct", ","):
            raise Untranslatable(
                SkipReason.MALFORMED_LOOP,
                "multiple initializers in for header",
                var_token.line,
            )
        self.expect("punct", ";")
        return var_token.text, lower

    def _for_condition(self, var: str) -> tuple[Expr, int]:
        """``(inclusive upper bound, direction)`` from ``var REL expr``."""
        test_token = self.expect("ident")
        if test_token.text != var:
            raise Untranslatable(
                SkipReason.MALFORMED_LOOP,
                f"loop test does not compare the loop variable {var!r}",
                test_token.line,
            )
        relop = self.cur
        if relop.text not in ("<", "<=", ">", ">="):
            raise Untranslatable(
                SkipReason.MALFORMED_LOOP,
                f"loop test operator {relop.text!r} outside < <= > >=",
                relop.line,
            )
        self.advance()
        bound = self.translate(self.c_expression())
        self.expect("punct", ";")
        # C limits are exclusive for strict tests; mini-Fortran bounds
        # are inclusive (DO semantics), in both directions.
        if relop.text == "<":
            return BinOp("-", bound, Num(1)), 1
        if relop.text == "<=":
            return bound, 1
        if relop.text == ">":
            return BinOp("+", bound, Num(1)), -1
        return bound, -1

    def _for_step(self, var: str) -> int:
        line = self.cur.line
        if self.accept("punct", "++"):
            self.expect("ident", var)
            return 1
        if self.accept("punct", "--"):
            self.expect("ident", var)
            return -1
        self.expect("ident", var)
        if self.accept("punct", "++"):
            return 1
        if self.accept("punct", "--"):
            return -1
        if self.check("punct", "+=") or self.check("punct", "-="):
            sign = 1 if self.advance().text == "+=" else -1
            return sign * self._literal_step(line)
        if self.accept("punct", "="):
            self.expect("ident", var)
            if self.check("punct", "+") or self.check("punct", "-"):
                sign = 1 if self.advance().text == "+" else -1
                return sign * self._literal_step(line)
        raise Untranslatable(
            SkipReason.MALFORMED_LOOP,
            f"loop step does not increment {var!r} by a constant",
            line,
        )

    def _literal_step(self, line: int) -> int:
        token = self.cur
        if token.kind != "int":
            raise Untranslatable(
                SkipReason.NON_LITERAL_STEP,
                "loop step is not an integer literal",
                line,
            )
        self.advance()
        value = _int_value(token.text)
        if value == 0:
            raise Untranslatable(SkipReason.ZERO_STEP, "loop step is zero", line)
        return value

    # -- assignments -------------------------------------------------------

    def expression_statement(self) -> list[Stmt]:
        line = self.cur.line
        if self.check("punct", "++") or self.check("punct", "--"):
            op = "+" if self.advance().text == "++" else "-"
            target = self.c_postfix()
            self.expect("punct", ";")
            return self._guarded_store(target, "=", self._rmw(target, op, line), line)
        lhs = self.c_expression()
        token = self.cur
        if token.kind == "punct" and token.text in (
            "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
        ):
            self.advance()
            rhs = self.c_expression()
            self.expect("punct", ";")
            return self._guarded_store(lhs, token.text, rhs, line)
        if token.kind == "punct" and token.text in ("++", "--"):
            self.advance()
            op = "+" if token.text == "++" else "-"
            self.expect("punct", ";")
            return self._guarded_store(lhs, "=", self._rmw(lhs, op, line), line)
        self.expect("punct", ";")
        if any(isinstance(n, _CCall) for n in _c_walk(lhs)):
            self.skip(
                SkipReason.CALL_EXPRESSION,
                line,
                "call statement cannot write an analyzable reference",
            )
        return []  # pure expression statement: no writes, nothing to model

    @staticmethod
    def _rmw(target: _CExpr, op: str, line: int) -> _CExpr:
        """``x++`` / ``A[i]--`` as an explicit read-modify-write."""
        return _CBin(op, target, _CNum(1, line), line)

    def _guarded_store(
        self, lhs: _CExpr, op: str, rhs: _CExpr, line: int
    ) -> list[Stmt]:
        """Skip-not-raise once the terminating ``;`` has been consumed
        (a raise here would make recovery eat the *next* statement)."""
        try:
            return self.store(lhs, op, rhs, line)
        except Untranslatable as err:
            self.skip(err.reason, err.line or line, err.detail)
            return []

    def store(
        self, lhs: _CExpr, op: str, rhs: _CExpr, line: int
    ) -> list[Stmt]:
        if op != "=":
            base = {"+=": "+", "-=": "-", "*=": "*"}.get(op, "/")
            # Compound ops outside + - * are not affine, but the RMW
            # read of the target must still be collected — hand the
            # fallback a tree it will fail to translate exactly.
            rhs = _CBin(base, lhs, rhs, line)
        if isinstance(lhs, _CName):
            return self.scalar_store(lhs.ident, rhs, line)
        if not isinstance(lhs, _CIndex):
            raise Untranslatable(
                SkipReason.UNSUPPORTED_STATEMENT,
                "assignment target is neither a name nor a subscript",
                line,
            )
        access = self.c_access(lhs)
        expr = self.rhs(rhs, line)
        if expr is None:
            return []
        return [Assign(access, expr, line=line)]

    def scalar_store(self, name: str, value: _CExpr, line: int) -> list[Stmt]:
        """Exact affine scalar definition, or poison the name."""
        self.rebound_names.add(name)
        try:
            rhs: Expr = self.translate(value)
        except Untranslatable:
            rhs = Access(OPAQUE_ARRAY, (Num(line),))
        return [Assign(Name(name), rhs, line=line)]

    def rhs(self, value: _CExpr, line: int) -> Expr | None:
        """A store's right-hand side: exact, or the sum of its reads."""
        try:
            return self.translate(value)
        except Untranslatable:
            pass
        total: Expr = Num(0)
        for node in _c_walk(value, into_index=False):
            if isinstance(node, _CIndex):
                total = BinOp("+", total, self.c_access(node))
        return total

    # -- C expression grammar ----------------------------------------------

    def c_expression(self) -> _CExpr:
        return self._c_ternary()

    def _c_ternary(self) -> _CExpr:
        cond = self._c_binary(0)
        if self.check("punct", "?"):
            line = self.advance().line
            then = self.c_expression()
            self.expect("punct", ":")
            other = self._c_ternary()
            return _CBin("?:", cond, _CBin("?:", then, other, line), line)
        return cond

    def _c_binary(self, level: int) -> _CExpr:
        if level >= len(_BINARY_LEVELS):
            return self._c_unary()
        expr = self._c_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.cur.kind == "punct" and self.cur.text in ops:
            token = self.advance()
            right = self._c_binary(level + 1)
            expr = _CBin(token.text, expr, right, token.line)
        return expr

    def _c_unary(self) -> _CExpr:
        token = self.cur
        if token.kind == "punct" and token.text in (
            "-", "+", "!", "~", "*", "&", "++", "--",
        ):
            self.advance()
            return _CUnary(token.text, self._c_unary(), token.line)
        if token.kind == "ident" and token.text == "sizeof":
            self.advance()
            if self.accept("punct", "("):
                self._skip_balanced("(", ")")
            else:
                self._c_unary()
            return _CCall("sizeof", (), token.line)
        return self.c_postfix()

    def c_postfix(self) -> _CExpr:
        expr = self._c_primary()
        while True:
            token = self.cur
            if self.accept("punct", "["):
                index = self.c_expression()
                self.expect("punct", "]")
                expr = _CIndex(expr, index, token.line)
            elif self.check("punct", "(") and isinstance(expr, _CName):
                self.advance()
                args: list[_CExpr] = []
                if not self.check("punct", ")"):
                    args.append(self.c_expression())
                    while self.accept("punct", ","):
                        args.append(self.c_expression())
                self.expect("punct", ")")
                expr = _CCall(expr.ident, tuple(args), token.line)
            elif self.check("punct", ".") or self.check("punct", "->"):
                self.advance()
                member = self.expect("ident")
                expr = _CUnary(token.text, expr, member.line)
            elif self.check("punct", "++") or self.check("punct", "--"):
                break  # statement level decides what a postfix crement means
            else:
                break
        return expr

    def _c_primary(self) -> _CExpr:
        token = self.cur
        if token.kind == "int":
            self.advance()
            return _CNum(_int_value(token.text), token.line)
        if token.kind == "float":
            self.advance()
            return _CFloat(token.text, token.line)
        if token.kind == "literal":
            self.advance()
            return _CFloat(token.text, token.line)
        if token.kind == "ident":
            self.advance()
            return _CName(token.text, token.line)
        if self.accept("punct", "("):
            if self.check("ident") and self.cur.text in _TYPE_WORDS:
                self._skip_balanced("(", ")")  # cast: value semantics kept
                return self._c_unary()
            expr = self.c_expression()
            self.expect("punct", ")")
            return expr
        raise Untranslatable(
            SkipReason.PARSE_ERROR,
            f"expected an expression, found {token.text or 'EOF'!r}",
            token.line,
        )

    # -- C AST -> mini-Fortran AST -----------------------------------------

    def translate(self, node: _CExpr) -> Expr:
        if isinstance(node, _CNum):
            return Num(node.value)
        if isinstance(node, _CFloat):
            raise Untranslatable(
                SkipReason.FLOAT_INDEX,
                f"non-integer literal {node.text!r}",
                node.line,
            )
        if isinstance(node, _CName):
            return Name(node.ident)
        if isinstance(node, _CIndex):
            return self.c_access(node)
        if isinstance(node, _CCall):
            raise Untranslatable(
                SkipReason.CALL_EXPRESSION,
                f"call to {node.name!r} in a lowered position",
                node.line,
            )
        if isinstance(node, _CUnary):
            if node.op == "-":
                return BinOp("-", Num(0), self.translate(node.operand))
            if node.op == "+":
                return self.translate(node.operand)
            if node.op in ("*", "&", ".", "->"):
                raise Untranslatable(
                    SkipReason.POINTER,
                    f"pointer/member operator {node.op!r}",
                    node.line,
                )
            raise Untranslatable(
                SkipReason.UNSUPPORTED_EXPRESSION,
                f"unary operator {node.op!r}",
                node.line,
            )
        if isinstance(node, _CBin):
            if node.op in ("+", "-", "*"):
                return BinOp(
                    node.op,
                    self.translate(node.left),
                    self.translate(node.right),
                )
            raise Untranslatable(
                SkipReason.UNSUPPORTED_EXPRESSION,
                f"operator {node.op!r} is not affine",
                node.line,
            )
        raise Untranslatable(
            SkipReason.UNSUPPORTED_EXPRESSION,
            f"{type(node).__name__} expression",
            getattr(node, "line", 0),
        )

    def c_access(self, node: _CIndex) -> Access:
        """A subscript chain ``A[i][j]`` as one multi-dim access."""
        subs: list[Expr] = []
        current: _CExpr = node
        while isinstance(current, _CIndex):
            subs.insert(0, self.translate(current.index))
            current = current.base
        if not isinstance(current, _CName):
            raise Untranslatable(
                SkipReason.POINTER,
                "subscripted base is not a plain array name",
                node.line,
            )
        if current.ident in self.pointer_names:
            raise Untranslatable(
                SkipReason.POINTER,
                f"subscript through pointer {current.ident!r}",
                node.line,
            )
        if current.ident in self.rebound_names:
            raise Untranslatable(
                SkipReason.ALIAS,
                f"subscript through reassigned name {current.ident!r} "
                "(may alias another array)",
                node.line,
            )
        return Access(current.ident, tuple(subs))


def _c_walk(node: _CExpr, into_index: bool = True):
    """Pre-order walk; with ``into_index=False`` a subscript chain is
    yielded whole (its base and indices are part of the chained access
    and must not be double counted by the read collector)."""
    yield node
    if not into_index and isinstance(node, _CIndex):
        return
    for child in _c_children(node):
        yield from _c_walk(child, into_index)
