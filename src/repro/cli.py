"""The ``python -m repro`` command-line tool.

Subcommands:

* ``analyze FILE``  — parse + optimize a mini-Fortran source file,
  run exact dependence analysis on every reference pair and print each
  pair's verdict, deciding test, distances and direction vectors.
* ``parallelize FILE`` — the same pipeline, summarized as a per-loop
  PARALLEL / serial report with the carrying dependences.
* ``deps FILE`` — classified dependence edges (flow / anti / output).
* ``tables ...`` — forwarded to :mod:`repro.harness` (regenerate the
  paper's tables).

Reads from stdin when ``FILE`` is ``-``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.analyzer import DependenceAnalyzer
from repro.core.kinds import classify_pair
from repro.core.memo import Memoizer
from repro.core.parallel import analyze_parallelism
from repro.ir.program import Program, reference_pairs
from repro.lang.errors import LangError
from repro.opt import compile_source

__all__ = ["main"]


def _load_program(path: str) -> Program:
    if path == "-":
        text = sys.stdin.read()
        name = "<stdin>"
    else:
        text = Path(path).read_text()
        name = path
    result = compile_source(text, name=name, strict=False)
    for message in result.skipped:
        print(f"warning: skipped {message}", file=sys.stderr)
    return result.program


def _cmd_analyze(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    analyzer = DependenceAnalyzer(memoizer=Memoizer())
    pairs = reference_pairs(program)
    if not pairs:
        print("no testable reference pairs")
        return 0
    for site1, site2 in pairs:
        result = analyzer.analyze_sites(site1, site2)
        verdict = "DEPENDENT" if result.dependent else "independent"
        line = f"{site1.ref} vs {site2.ref}: {verdict} [{result.decided_by}]"
        if result.dependent:
            directions = analyzer.directions(
                site1.ref, site1.nest, site2.ref, site2.nest
            )
            vectors = " ".join(
                "(" + " ".join(v) + ")" for v in sorted(directions.vectors)
            )
            line += f"  directions {vectors}"
            if result.distance and any(d is not None for d in result.distance):
                line += f"  distance {result.distance}"
        print(line)
    return 0


def _cmd_parallelize(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    analyzer = DependenceAnalyzer(memoizer=Memoizer())
    for report in analyze_parallelism(program, analyzer):
        status = "PARALLEL" if report.parallel else "serial  "
        print(f"[{status}] {report.loop}")
        if args.verbose:
            for site1, site2 in report.carriers:
                print(f"           carried by {site1.ref} <-> {site2.ref}")
    return 0


def _cmd_vectorize(args: argparse.Namespace) -> int:
    from repro.core.vectorize import vectorize

    program = _load_program(args.file)
    if not program.statements:
        print("nothing to vectorize")
        return 0
    nests = {stmt.nest for stmt in program.statements}
    for nest in nests:
        sub = type(program)(
            program.name,
            [s for s in program.statements if s.nest == nest],
        )
        result = vectorize(sub, DependenceAnalyzer(memoizer=Memoizer()))
        print(result.render())
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.core.graph import build_graph

    program = _load_program(args.file)
    graph = build_graph(program, DependenceAnalyzer(memoizer=Memoizer()))
    print(graph.to_dot())
    return 0


def _cmd_deps(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    analyzer = DependenceAnalyzer(memoizer=Memoizer())
    count = 0
    for site1, site2 in reference_pairs(program):
        for edge in classify_pair(site1, site2, analyzer):
            vector = "(" + " ".join(edge.vector) + ")"
            carried = "carried" if edge.loop_carried else "loop-independent"
            print(
                f"{edge.kind:6s} {edge.source.ref} -> {edge.sink.ref} "
                f"{vector} [{carried}]"
            )
            count += 1
    if count == 0:
        print("no dependences")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Exact data dependence analysis (Maydan/Hennessy/Lam, PLDI 1991)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="per-pair dependence report")
    p_analyze.add_argument("file", help="mini-Fortran source file, or -")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_par = sub.add_parser("parallelize", help="per-loop parallelism report")
    p_par.add_argument("file", help="mini-Fortran source file, or -")
    p_par.add_argument("-v", "--verbose", action="store_true")
    p_par.set_defaults(func=_cmd_parallelize)

    p_deps = sub.add_parser("deps", help="classified dependence edges")
    p_deps.add_argument("file", help="mini-Fortran source file, or -")
    p_deps.set_defaults(func=_cmd_deps)

    p_vec = sub.add_parser(
        "vectorize", help="distribute + vectorize loops (Allen-Kennedy)"
    )
    p_vec.add_argument("file", help="mini-Fortran source file, or -")
    p_vec.set_defaults(func=_cmd_vectorize)

    p_dot = sub.add_parser(
        "dot", help="dependence graph as Graphviz DOT"
    )
    p_dot.add_argument("file", help="mini-Fortran source file, or -")
    p_dot.set_defaults(func=_cmd_dot)

    p_tables = sub.add_parser(
        "tables", help="regenerate the paper's tables (see repro.harness)"
    )
    p_tables.add_argument("rest", nargs=argparse.REMAINDER)
    p_tables.set_defaults(func=None)

    args = parser.parse_args(argv)
    if args.command == "tables":
        from repro.harness.cli import main as harness_main

        return harness_main(args.rest)
    try:
        return args.func(args)
    except LangError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
