"""The ``python -m repro`` command-line tool.

Subcommands:

* ``analyze FILE``  — parse + optimize a mini-Fortran source file,
  run exact dependence analysis on every reference pair and print each
  pair's verdict, deciding test, distances and direction vectors.
* ``parallelize FILE`` — the same pipeline, summarized as a per-loop
  PARALLEL / serial report with the carrying dependences.
* ``deps FILE`` — classified dependence edges (flow / anti / output).
* ``extract FILE`` — show the loop nests a language frontend
  (:mod:`repro.frontends`) pulls out of real Python or C source,
  plus every skipped construct with its stable reason code.
* ``batch [FILE ...]`` — run the sharded batch engine over whole
  programs (or the synthetic PERFECT corpus when no files are given),
  with ``--jobs`` worker processes, an optional persistent
  ``--warm-cache`` memo table (loaded before the run when present,
  rewritten with the merged table afterwards), and an optional
  ``--trace`` JSONL dump of every query's decision events.
* ``explain FILE --pair N`` — pretty-print one reference pair's full
  decision trace (EGCD -> memo -> cascade stages -> verdict).
* ``stats [FILE ...]`` — run a corpus and dump the metrics registry.
* ``bench [FILE ...]`` — time a corpus run; ``--profile`` reruns it
  under cProfile and reports the top cumulative sites (text plus a
  JSON artifact), so optimization starts from measurements.
* ``fuzz`` — differential fuzzing of the exact cascade against the
  enumeration oracle (``--seed --iterations --tier --time-budget
  --shrink --corpus``), or deterministic corpus replay (``--replay``).
* ``tables ...`` — forwarded to :mod:`repro.harness` (regenerate the
  paper's tables).
* ``serve`` — run the long-lived dependence-query daemon
  (:mod:`repro.serve`): JSON-lines over TCP (or ``--stdio``), shared
  warm memo tables, optional persistent ``--cache``, per-query
  ``--deadline-ms`` degradation, SIGTERM-triggered graceful drain.
* ``query`` — one-shot client for a running daemon: ``analyze``,
  ``explain`` or ``analyze_program`` a source file, or hit the
  ``health`` / ``stats`` / ``shutdown`` control ops.
* ``watch FILE`` — incremental re-analysis as the file is edited:
  poll its mtime and re-analyze only the pairs each edit dirtied
  (:mod:`repro.core.incremental`), locally or against a daemon's
  protocol-v3 session ops via ``--endpoint`` (durable sessions: the
  client journals frames and replays them across failovers).
* ``ping --endpoint URL`` — one health round-trip with its latency;
  exit 0 when the endpoint answers, 3 when it does not.
* ``chaosproxy LISTEN UPSTREAM`` — the seeded network-fault proxy
  (:mod:`repro.robust.netchaos`): deterministic delay/drop/reset/
  torn-frame/partition injection between a client and an endpoint.

Reads from stdin when ``FILE`` is ``-``.

``FILE`` may be native mini-Fortran (``.loop``), Python (``.py``) or a
C subset (``.c``/``.h``); the language is picked by extension and can
be forced with ``--lang``.

Exit codes
==========

Every subcommand follows one convention:

* **0** — success, and no dependences/findings to report;
* **1** — success, but dependences (or fuzz mismatches) were found:
  ``analyze``/``deps``/``query`` report at least one dependent pair;
* **2** — usage error: unknown flags, missing or unparsable input,
  out-of-range ``--pair``;
* **3** — internal error: unexpected failure inside the tool (or an
  unreachable/overloaded server for ``query``);
* **130** — interrupted (Ctrl-C / SIGINT): the tool stops cleanly with
  no traceback; a ``batch --checkpoint`` run keeps every shard already
  flushed, so ``--resume`` picks up where the interrupt landed.

A downstream reader closing the pipe (``repro extract big.c | head``)
stops the tool quietly with exit 0 — never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.api import AnalysisSession
from repro.core.analyzer import DependenceAnalyzer
from repro.core.kinds import classify_pair
from repro.core.memo import Memoizer
from repro.core.parallel import analyze_parallelism
from repro.ir.program import Program, reference_pairs
from repro.lang.errors import LangError
from repro.opt import compile_source

__all__ = [
    "main",
    "EXIT_OK",
    "EXIT_DEPENDENCE",
    "EXIT_USAGE",
    "EXIT_INTERNAL",
    "EXIT_INTERRUPTED",
]

# The CLI-wide exit-code convention (documented in README.md).
EXIT_OK = 0  # success, nothing found
EXIT_DEPENDENCE = 1  # success, dependences/findings reported
EXIT_USAGE = 2  # bad invocation or unreadable/unparsable input
EXIT_INTERNAL = 3  # unexpected internal failure
EXIT_INTERRUPTED = 130  # Ctrl-C / SIGINT (128 + SIGINT, shell convention)


def _resolve_lang(path: str, lang: str | None) -> str:
    """The frontend language for a file: --lang wins, else extension."""
    from repro.frontends import detect_language

    if lang:
        return lang
    if path == "-":
        return "loop"
    return detect_language(path)


def _read_source(path: str) -> tuple[str, str]:
    if path == "-":
        return sys.stdin.read(), "<stdin>"
    return Path(path).read_text(), path


def _extract(path: str, lang: str | None):
    """Extract a real-source (or .loop) file, warnings to stderr.

    A file-level parse failure is a usage error for the one-file
    commands, so it is re-raised as :class:`ParseError` here (batch
    callers that prefer to keep going use repro.frontends directly).
    """
    from repro.frontends import SkipReason, extract_source
    from repro.lang.errors import ParseError

    text, name = _read_source(path)
    language = _resolve_lang(path, lang)
    extraction = extract_source(text, lang=language, name=name)
    if not extraction.program.statements and any(
        record.reason == SkipReason.PARSE_ERROR
        for record in extraction.skipped
    ):
        record = extraction.skipped[0]
        raise ParseError(record.detail, record.line)
    for record in extraction.skipped:
        print(f"warning: skipped {record}", file=sys.stderr)
    return extraction


def _load_program(path: str, lang: str | None = None) -> Program:
    language = _resolve_lang(path, lang)
    if language == "loop":
        text, name = _read_source(path)
        result = compile_source(text, name=name, strict=False)
        for message in result.skipped:
            print(f"warning: skipped {message}", file=sys.stderr)
        return result.program
    return _extract(path, language).program


def _add_lang_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lang",
        choices=("loop", "python", "c"),
        default=None,
        help="source language (default: by extension — .py python, "
        ".c/.h C, else mini-Fortran .loop)",
    )


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    """The shared resource-governor flags (see repro.robust.budget)."""
    group = parser.add_argument_group(
        "resource budget",
        "bound the analysis; a blown budget degrades that query to the "
        "conservative flagged verdict instead of running away",
    )
    group.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per query",
    )
    group.add_argument(
        "--max-fm-nodes",
        type=int,
        default=None,
        metavar="N",
        help="Fourier-Motzkin branch-and-bound node budget",
    )
    group.add_argument(
        "--max-constraints",
        type=int,
        default=None,
        metavar="N",
        help="live-constraint ceiling during FM elimination",
    )
    group.add_argument(
        "--max-coeff-bits",
        type=int,
        default=None,
        metavar="BITS",
        help="coefficient magnitude ceiling (bit length)",
    )
    group.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help="FM elimination/branch depth ceiling",
    )


def _budget_from_args(args: argparse.Namespace):
    """A ResourceBudget from the shared flags, or None when all unset."""
    from repro.robust.budget import ResourceBudget

    budget = ResourceBudget(
        deadline_s=args.deadline_s,
        fm_branch_nodes=args.max_fm_nodes,
        max_live_constraints=args.max_constraints,
        max_coeff_bits=args.max_coeff_bits,
        max_elim_depth=args.max_depth,
    )
    return None if budget.unlimited else budget


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.api import AnalysisConfig

    program = _load_program(args.file, getattr(args, "lang", None))
    session = AnalysisSession(AnalysisConfig(budget=_budget_from_args(args)))
    pairs = reference_pairs(program)
    if not pairs:
        print("no testable reference pairs")
        return EXIT_OK
    found = 0
    for site1, site2 in pairs:
        report = session.analyze_sites(site1, site2, want_directions=True)
        verdict = "DEPENDENT" if report.dependent else "independent"
        line = f"{report.ref1} vs {report.ref2}: {verdict} [{report.decided_by}]"
        if report.degraded:
            line += f"  (degraded: {report.degraded_reason})"
        if report.dependent:
            found += 1
            vectors = " ".join(
                "(" + " ".join(v) + ")" for v in sorted(report.directions)
            )
            line += f"  directions {vectors}"
            if report.distance and any(d is not None for d in report.distance):
                line += f"  distance {report.distance}"
        print(line)
    return EXIT_DEPENDENCE if found else EXIT_OK


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.events import write_jsonl

    program = _load_program(args.file, getattr(args, "lang", None))
    pairs = reference_pairs(program)
    if not pairs:
        print("no testable reference pairs")
        return 0
    if args.list or args.pair is None:
        for index, (site1, site2) in enumerate(pairs):
            print(f"[{index}] {site1.ref} vs {site2.ref}")
        if args.pair is None and not args.list:
            print("(pick one with --pair N)", file=sys.stderr)
        return 0
    if not 0 <= args.pair < len(pairs):
        print(
            f"error: --pair {args.pair} out of range (0..{len(pairs) - 1})",
            file=sys.stderr,
        )
        return EXIT_USAGE
    site1, site2 = pairs[args.pair]
    session = AnalysisSession()
    explained = session.explain_sites(
        site1, site2, want_directions=not args.no_directions
    )
    print(explained.render())
    if args.jsonl:
        count = write_jsonl(explained.events, args.jsonl)
        print(f"wrote {count} events to {args.jsonl}", file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core.engine import (
        analyze_batch,
        queries_from_program,
        queries_from_suite,
    )

    queries = []
    for path in args.files:
        program = _load_program(path, getattr(args, "lang", None))
        queries.extend(queries_from_program(program))
    if args.suite or not args.files:
        from repro.perfect import load_suite

        suite = load_suite(include_symbolic=True, scale=args.scale)
        queries.extend(queries_from_suite(suite))
        print(
            f"corpus: {len(suite)} synthetic PERFECT programs",
            file=sys.stderr,
        )
    report = analyze_batch(queries, jobs=args.jobs)
    registry = report.stats.registry
    if args.json:
        print(json.dumps(registry.to_dict(), indent=2, sort_keys=True))
    else:
        print(registry.render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Time a corpus run; with ``--profile``, attribute it to hot sites."""
    import time

    from repro.core.engine import (
        analyze_batch,
        queries_from_program,
        queries_from_suite,
    )

    queries = []
    for path in args.files:
        program = _load_program(path, getattr(args, "lang", None))
        queries.extend(queries_from_program(program))
    if not queries:
        from repro.perfect import load_suite

        suite = load_suite(include_symbolic=True, scale=args.scale)
        queries.extend(queries_from_suite(suite))
        print(
            f"corpus: {len(suite)} synthetic PERFECT programs",
            file=sys.stderr,
        )

    if not args.profile:
        start = time.perf_counter()
        analyze_batch(queries, jobs=args.jobs)
        elapsed = time.perf_counter() - start
        print(
            f"{len(queries)} queries in {elapsed:.3f}s "
            f"({len(queries) / elapsed:.1f} q/s, jobs={args.jobs})"
        )
        return 0

    # Profile-first optimization loop: run the serial engine under
    # cProfile and report the top cumulative sites, so "what is slow"
    # is measured, never guessed.  Profiling is in-process by design —
    # worker processes would escape the profiler — so --jobs is ignored.
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    analyze_batch(queries, jobs=1)
    profiler.disable()
    elapsed = time.perf_counter() - start

    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("cumulative")
    rows = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    )
    sites = [
        {
            "file": filename,
            "line": line,
            "function": func,
            "ncalls": ncalls,
            "primitive_calls": primitive,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        }
        for (filename, line, func), (
            primitive,
            ncalls,
            tottime,
            cumtime,
            _callers,
        ) in rows[: args.top]
    ]

    print(
        f"{len(queries)} queries in {elapsed:.3f}s "
        f"({len(queries) / elapsed:.1f} q/s, profiled, serial)"
    )
    print(f"top {len(sites)} sites by cumulative time:")
    for site in sites:
        loc = f"{Path(site['file']).name}:{site['line']}"
        print(
            f"  {site['cumtime_s']:9.4f}s cum  {site['tottime_s']:9.4f}s own"
            f"  {site['ncalls']:>8}x  {site['function']} ({loc})"
        )

    payload = {
        "queries": len(queries),
        "elapsed_s": round(elapsed, 4),
        "qps": round(len(queries) / elapsed, 1),
        "scale": args.scale,
        "top": sites,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    return 0


def _cmd_parallelize(args: argparse.Namespace) -> int:
    program = _load_program(args.file, getattr(args, "lang", None))
    for report in analyze_parallelism(program, jobs=args.jobs):
        status = "PARALLEL" if report.parallel else "serial  "
        print(f"[{status}] {report.loop}")
        if args.verbose:
            for site1, site2 in report.carriers:
                print(f"           carried by {site1.ref} <-> {site2.ref}")
    return 0


def _cmd_vectorize(args: argparse.Namespace) -> int:
    from repro.core.vectorize import vectorize

    program = _load_program(args.file, getattr(args, "lang", None))
    if not program.statements:
        print("nothing to vectorize")
        return 0
    nests = {stmt.nest for stmt in program.statements}
    for nest in nests:
        sub = type(program)(
            program.name,
            [s for s in program.statements if s.nest == nest],
        )
        result = vectorize(sub, DependenceAnalyzer(memoizer=Memoizer()))
        print(result.render())
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.core.graph import build_graph

    program = _load_program(args.file, getattr(args, "lang", None))
    graph = build_graph(program, DependenceAnalyzer(memoizer=Memoizer()))
    print(graph.to_dot())
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.core.engine import (
        analyze_batch,
        queries_from_program,
        queries_from_suite,
    )
    from repro.core.persist import load_memoizer_safe, save_memoizer

    queries = []
    for path in args.files:
        program = _load_program(path, getattr(args, "lang", None))
        queries.extend(queries_from_program(program))
    if args.suite or not args.files:
        from repro.perfect import load_suite

        suite = load_suite(include_symbolic=True, scale=args.scale)
        queries.extend(queries_from_suite(suite))
        print(
            f"corpus: {len(suite)} synthetic PERFECT programs",
            file=sys.stderr,
        )

    warm = None
    if args.warm_cache:
        # A corrupt or truncated cache file is a warmth problem, not a
        # correctness problem: warn and analyze cold (the save below
        # rewrites it wholesale anyway).
        import warnings as _warnings

        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always", RuntimeWarning)
            warm = load_memoizer_safe(args.warm_cache)
        for entry in caught:
            print(f"warning: {entry.message}", file=sys.stderr)
        if warm is not None:
            cached = len(warm.no_bounds) + len(warm.with_bounds)
            print(
                f"warm-start: {cached} cached cases from {args.warm_cache}",
                file=sys.stderr,
            )

    stream = None
    if args.trace:
        from repro.obs.sinks import StreamingSink

        stream = StreamingSink(args.trace)
    try:
        report = analyze_batch(
            queries,
            jobs=args.jobs,
            warm=warm,
            symmetry=args.symmetry,
            want_directions=not args.no_directions,
            sink=stream,
            budget=_budget_from_args(args),
            checkpoint=args.checkpoint,
            resume=args.resume,
            shard_timeout=args.shard_timeout,
            shard_retries=args.shard_retries,
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    finally:
        if stream is not None:
            stream.close()
    if stream is not None:
        print(
            f"wrote {stream.emitted} trace events to {args.trace}",
            file=sys.stderr,
        )

    if args.verbose:
        for outcome in report.outcomes:
            verdict = (
                "DEPENDENT" if outcome.result.dependent else "independent"
            )
            line = (
                f"{outcome.query.ref1} vs {outcome.query.ref2}: "
                f"{verdict} [{outcome.result.decided_by}]"
            )
            if outcome.deduped:
                line += "  (deduped)"
            print(line)

    summary = report.summary()
    dependent = sum(1 for o in report.outcomes if o.result.dependent)
    print(
        f"{summary['queries']} queries -> "
        f"{summary['unique_pairs']} unique pairs -> "
        f"{summary['unique_problems']} unique problems "
        f"({summary['screened_constant']} constant-screened), "
        f"{summary['jobs']} worker(s)"
    )
    print(
        f"{dependent} dependent / {summary['queries'] - dependent} "
        f"independent; {summary['tests_run']} dependence tests run"
    )
    print(
        f"memo hit rates: no-bounds "
        f"{summary['memo_hit_rate_no_bounds']:.1%}, with-bounds "
        f"{summary['memo_hit_rate_bounds']:.1%}; "
        f"{summary['memo_entries']} merged table entries"
    )
    if summary["degraded_queries"]:
        print(
            f"{summary['degraded_queries']} queries degraded to the "
            "conservative verdict (blown resource budget)"
        )
    if report.quarantine:
        print(f"quarantined cases ({len(report.quarantine)}):")
        for case in report.quarantine:
            print(
                f"  [{case.rep_index}] {case.label}: {case.reason} "
                f"after {case.attempts} attempt(s)"
            )

    for path in filter(None, (args.warm_cache, args.save_cache)):
        save_memoizer(report.memoizer, path)
        print(f"saved merged memo table to {path}", file=sys.stderr)
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    """Show what the frontends extracted (and refused) from a file."""
    from repro.frontends import extract_source

    text, name = _read_source(args.file)
    language = _resolve_lang(args.file, args.lang)
    extraction = extract_source(text, lang=language, name=name)
    if args.json:
        print(json.dumps(extraction.to_dict(), indent=2, sort_keys=True))
        return EXIT_OK
    summary = extraction.summary()
    print(
        f"{name}: language {language}, {summary['nests']} nest(s), "
        f"{summary['statements']} statement(s), "
        f"{summary['skipped']} skipped"
    )
    for nest in extraction.nests:
        loop_vars = ", ".join(nest.loop_variables()) or "-"
        print(
            f"  nest {nest.index} [{nest.context}] {nest.span}: "
            f"depth {nest.depth}, {len(nest.statements)} statement(s), "
            f"loops ({loop_vars})"
        )
        for stmt in nest.statements:
            reads = " + ".join(str(ref) for ref in stmt.reads) or "0"
            print(f"    {stmt.label}: {stmt.write} = {reads}")
    if extraction.symbols:
        print("  symbolic: " + ", ".join(sorted(extraction.symbols)))
    for record in extraction.skipped:
        print(f"  skip {record}")
    return EXIT_OK


def _cmd_deps(args: argparse.Namespace) -> int:
    program = _load_program(args.file, getattr(args, "lang", None))
    analyzer = DependenceAnalyzer(memoizer=Memoizer())
    count = 0
    for site1, site2 in reference_pairs(program):
        for edge in classify_pair(site1, site2, analyzer):
            vector = "(" + " ".join(edge.vector) + ")"
            carried = "carried" if edge.loop_carried else "loop-independent"
            print(
                f"{edge.kind:6s} {edge.source.ref} -> {edge.sink.ref} "
                f"{vector} [{carried}]"
            )
            count += 1
    if count == 0:
        print("no dependences")
    return EXIT_DEPENDENCE if count else EXIT_OK


def _worker_passthrough_args(args: argparse.Namespace) -> tuple[str, ...]:
    """Re-spell the serve flags for a cluster worker's child argv.

    Whatever the operator passed to ``repro serve --cluster N`` rides
    through to every worker daemon, so the fleet behaves like N copies
    of the single-daemon configuration.  (``--cache`` stays out: the
    workers would race on one store file; warmth sharing inside a
    cluster goes through the spill directory instead.)
    """
    out: list[str] = [
        "--cache-max-bytes",
        str(args.cache_max_bytes),
        "--max-inflight",
        str(args.max_inflight),
        "--queue-limit",
        str(args.queue_limit),
        "--fm-budget",
        str(args.fm_budget),
    ]
    if args.deadline_ms is not None:
        out += ["--deadline-ms", str(args.deadline_ms)]
    if args.jobs is not None:
        out += ["--jobs", str(args.jobs)]
    if args.symmetry:
        out.append("--symmetry")
    for flag, value in (
        ("--deadline-s", args.deadline_s),
        ("--max-fm-nodes", args.max_fm_nodes),
        ("--max-constraints", args.max_constraints),
        ("--max-coeff-bits", args.max_coeff_bits),
        ("--max-depth", args.max_depth),
    ):
        if value is not None:
            out += [flag, str(value)]
    return tuple(out)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.cluster is not None:
        from repro.serve.cluster import ClusterConfig, ClusterSupervisor

        if args.stdio:
            print("error: --cluster and --stdio are exclusive", file=sys.stderr)
            return EXIT_USAGE
        if args.cache:
            print(
                "error: --cluster workers cannot share one --cache store; "
                "use --spill-dir for warmth sharing",
                file=sys.stderr,
            )
            return EXIT_USAGE
        config = ClusterConfig(
            workers=args.cluster,
            host=args.host,
            port=args.port,
            spill_dir=args.spill_dir,
            spill_interval_s=args.spill_interval,
            worker_args=_worker_passthrough_args(args),
        )
        return ClusterSupervisor(config).run()

    from repro.serve.server import DependenceServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        stdio=args.stdio,
        cache_path=args.cache,
        cache_max_bytes=args.cache_max_bytes,
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        deadline_ms=args.deadline_ms,
        pool_jobs=args.jobs,
        symmetry=args.symmetry,
        fm_budget=args.fm_budget,
        budget=_budget_from_args(args),
        worker_id=args.worker_id,
        spill_dir=args.spill_dir,
        spill_interval_s=args.spill_interval,
    )
    return DependenceServer(config).run()


def _retry_from_args(args: argparse.Namespace):
    """The RetryPolicy ``--retries``/``--retry-backoff`` ask for (or None)."""
    retries = getattr(args, "retries", 0)
    if not retries:
        return None
    from repro.serve.client import RetryPolicy

    return RetryPolicy(
        attempts=retries + 1,
        base_delay_s=getattr(args, "retry_backoff", 0.05),
    )


def _add_retry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry pure ops up to N times across reconnects after a "
        "transport failure (default 0: fail on the first)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base exponential-backoff delay between retries (default 0.05)",
    )


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serve.client import Client, ServeError
    from repro.serve.protocol import ErrorCode

    usage_codes = {
        ErrorCode.PARSE,
        ErrorCode.BAD_REQUEST,
        ErrorCode.UNSUPPORTED,
        ErrorCode.VERSION,
        ErrorCode.SOURCE,
    }
    if args.endpoint is not None:
        endpoint = args.endpoint
    elif args.port is not None:
        endpoint = f"tcp://{args.host}:{args.port}"
    else:
        print(
            "error: give --endpoint URL or --port PORT", file=sys.stderr
        )
        return EXIT_USAGE
    try:
        client = Client(
            endpoint, retry_for=args.retry_for, retry=_retry_from_args(args)
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as err:
        print(
            f"error: cannot reach server at {endpoint}: {err}",
            file=sys.stderr,
        )
        return EXIT_INTERNAL
    with client:
        try:
            if args.op in ("health", "stats", "shutdown"):
                print(json.dumps(client.call(args.op), indent=2, sort_keys=True))
                return EXIT_OK
            if args.file is None:
                print(
                    f"error: op {args.op!r} needs a source FILE",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            if args.file == "-":
                text = sys.stdin.read()
            else:
                text = Path(args.file).read_text()
            language = _resolve_lang(args.file, getattr(args, "lang", None))
            if args.op == "analyze_program":
                result = client.analyze_program(text, lang=language)
                print(json.dumps(result, indent=2, sort_keys=True))
                dependent = any(p["dependent"] for p in result["pairs"])
                return EXIT_DEPENDENCE if dependent else EXIT_OK
            result = client.call(
                args.op, {"source": text, "pair": args.pair, "lang": language}
            )
            print(json.dumps(result, indent=2, sort_keys=True))
            report = result["report"] if args.op == "explain" else result
            return EXIT_DEPENDENCE if report["dependent"] else EXIT_OK
        except ServeError as err:
            print(f"error: {err}", file=sys.stderr)
            return EXIT_USAGE if err.code in usage_codes else EXIT_INTERNAL
        except (ConnectionError, OSError) as err:
            print(f"error: connection lost: {err}", file=sys.stderr)
            return EXIT_INTERNAL


def _watch_summary(index: int, summary: dict, verified: bool) -> str:
    """One human line per watch update from an UpdateReport summary."""
    fraction = summary.get("requery_fraction", 1.0)
    line = (
        f"[{index}] {summary.get('statements', '?')} stmts, "
        f"{summary.get('pairs', '?')} pairs: "
        f"reused {summary.get('reused', 0)}, "
        f"re-queried {summary.get('requeried', 0)} ({fraction:.1%}), "
        f"{summary.get('edges', '?')} edges "
        f"in {summary.get('elapsed_ms', 0.0):.1f}ms"
    )
    if summary.get("degraded_pairs"):
        line += f"  ({summary['degraded_pairs']} degraded)"
    if verified:
        line += "  [verified ≡ full]"
    return line


def _cmd_watch(args: argparse.Namespace) -> int:
    import time as _time

    if args.file == "-":
        print("error: watch needs a real file, not -", file=sys.stderr)
        return EXIT_USAGE
    path = Path(args.file)
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return EXIT_USAGE

    language = _resolve_lang(args.file, getattr(args, "lang", None))

    client = None
    session_id = None
    local_session = None
    if args.endpoint is not None:
        from repro.serve.client import Client

        try:
            client = Client(
                args.endpoint,
                retry_for=args.retry_for,
                retry=_retry_from_args(args),
            )
        except (ValueError, OSError) as err:
            print(f"error: cannot reach {args.endpoint}: {err}", file=sys.stderr)
            return EXIT_INTERNAL
        health = client.health()
        if not health.get("sessions"):
            print(
                f"error: {args.endpoint} does not serve incremental "
                "sessions (needs a protocol v3 worker or cluster router)",
                file=sys.stderr,
            )
            client.close()
            return EXIT_USAGE
        session_id = client.open_session()["session"]
    else:
        from repro.api import AnalysisConfig

        local_session = AnalysisSession(
            AnalysisConfig(budget=_budget_from_args(args))
        )

    def run_update(text: str, index: int) -> bool:
        """One re-analysis; returns False when the edit didn't parse."""
        if client is not None:
            from repro.serve.client import ServeError

            try:
                summary = client.update_source(
                    session_id, text, verify=args.verify, lang=language
                )
            except ServeError as err:
                print(
                    f"warning: {err} (keeping last graph)", file=sys.stderr
                )
                return False
            if summary.get("degraded") and "pairs" not in summary:
                print(
                    f"[{index}] degraded: deadline hit, session catches "
                    "up in the background",
                )
                return True
            print(_watch_summary(index, summary, args.verify))
            return True
        if language == "loop":
            try:
                result = compile_source(text, name=str(path), strict=False)
            except LangError as err:
                print(
                    f"warning: parse error: {err} (keeping last graph)",
                    file=sys.stderr,
                )
                return False
            for message in result.skipped:
                print(f"warning: skipped {message}", file=sys.stderr)
            program = result.program
        else:
            from repro.frontends import SkipReason, extract_source

            extraction = extract_source(text, lang=language, name=str(path))
            if not extraction.program.statements and any(
                record.reason == SkipReason.PARSE_ERROR
                for record in extraction.skipped
            ):
                print(
                    f"warning: parse error: {extraction.skipped[0].detail} "
                    "(keeping last graph)",
                    file=sys.stderr,
                )
                return False
            for record in extraction.skipped:
                print(f"warning: skipped {record}", file=sys.stderr)
            program = extraction.program
        report = local_session.update(program, verify=args.verify)
        print(_watch_summary(index, report.summary(), report.verified))
        return True

    updates = 0
    last_mtime = None
    try:
        while True:
            try:
                mtime = path.stat().st_mtime_ns
            except OSError as err:
                print(f"warning: {err}", file=sys.stderr)
                _time.sleep(args.interval)
                continue
            if mtime != last_mtime:
                last_mtime = mtime
                try:
                    text = path.read_text()
                except OSError as err:
                    print(f"warning: {err}", file=sys.stderr)
                    _time.sleep(args.interval)
                    continue
                if run_update(text, updates):
                    updates += 1
            if args.count is not None and updates >= args.count:
                return EXIT_OK
            _time.sleep(args.interval)
    finally:
        if client is not None:
            client.close()


def _cmd_ping(args: argparse.Namespace) -> int:
    import time as _time

    from repro.serve.client import Client, ServeError

    try:
        client = Client(args.endpoint, timeout=args.timeout)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as err:
        print(f"error: cannot reach {args.endpoint}: {err}", file=sys.stderr)
        return EXIT_INTERNAL
    try:
        start = _time.perf_counter()
        health = client.health()
        elapsed_ms = (_time.perf_counter() - start) * 1000.0
    except (ServeError, ConnectionError, OSError) as err:
        print(f"error: {args.endpoint}: {err}", file=sys.stderr)
        return EXIT_INTERNAL
    finally:
        client.close()
    print(
        f"{args.endpoint}: {health.get('status', '?')} "
        f"protocol={health.get('protocol', '?')} "
        f"sessions={'yes' if health.get('sessions') else 'no'} "
        f"({elapsed_ms:.1f} ms)"
    )
    return EXIT_OK


def _parse_hostport(text: str, *, what: str) -> tuple[str, int]:
    """``HOST:PORT`` or bare ``PORT`` -> (host, port); raises ValueError."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"{what} must be HOST:PORT or PORT, got {text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"{what} port out of range: {port}")
    return host or "127.0.0.1", port


def _cmd_chaosproxy(args: argparse.Namespace) -> int:
    import signal

    from repro.robust.netchaos import ChaosProxy, NetFaultPlan

    try:
        listen_host, listen_port = _parse_hostport(args.listen, what="LISTEN")
        upstream_host, upstream_port = _parse_hostport(args.upstream, what="UPSTREAM")
        plan = NetFaultPlan(
            seed=args.seed,
            delay_rate=args.delay_rate,
            drop_rate=args.drop_rate,
            reset_rate=args.reset_rate,
            torn_rate=args.torn_rate,
            partition_rate=args.partition_rate,
            delay_s=args.delay_s,
            partition_conns=args.partition_conns,
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_USAGE

    proxy = ChaosProxy(
        plan,
        upstream_host,
        upstream_port,
        host=listen_host,
        port=listen_port,
        announce=True,
    )
    signal.signal(signal.SIGTERM, lambda *_: proxy.request_shutdown())
    try:
        proxy.run()
    except KeyboardInterrupt:
        return EXIT_INTERRUPTED
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_INTERNAL
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Exact data dependence analysis (Maydan/Hennessy/Lam, PLDI 1991)",
    )
    from repro import __version__

    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="per-pair dependence report")
    p_analyze.add_argument("file", help="source file (.loop/.py/.c), or -")
    _add_lang_flag(p_analyze)
    _add_budget_flags(p_analyze)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_par = sub.add_parser("parallelize", help="per-loop parallelism report")
    p_par.add_argument("file", help="source file (.loop/.py/.c), or -")
    _add_lang_flag(p_par)
    p_par.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the batch engine (default 1)",
    )
    p_par.add_argument("-v", "--verbose", action="store_true")
    p_par.set_defaults(func=_cmd_parallelize)

    p_deps = sub.add_parser("deps", help="classified dependence edges")
    p_deps.add_argument("file", help="source file (.loop/.py/.c), or -")
    _add_lang_flag(p_deps)
    p_deps.set_defaults(func=_cmd_deps)

    p_extract = sub.add_parser(
        "extract",
        help="show loop nests a frontend extracts from real source",
    )
    p_extract.add_argument("file", help="source file (.loop/.py/.c), or -")
    _add_lang_flag(p_extract)
    p_extract.add_argument(
        "--json", action="store_true", help="dump the extraction as JSON"
    )
    p_extract.set_defaults(func=_cmd_extract)

    p_batch = sub.add_parser(
        "batch",
        help="sharded multi-core batch analysis with warm-start caching",
    )
    p_batch.add_argument(
        "files",
        nargs="*",
        help="source files, .loop/.py/.c (none: the PERFECT corpus)",
    )
    _add_lang_flag(p_batch)
    p_batch.add_argument(
        "--suite",
        action="store_true",
        help="include the synthetic PERFECT corpus alongside any files",
    )
    p_batch.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="repetition scale for the synthetic corpus (default 1.0)",
    )
    p_batch.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: CPU count)",
    )
    p_batch.add_argument(
        "--warm-cache",
        metavar="PATH",
        help="persistent memo table: loaded if present, rewritten after",
    )
    p_batch.add_argument(
        "--save-cache",
        metavar="PATH",
        help="also write the merged memo table here",
    )
    p_batch.add_argument(
        "--symmetry",
        action="store_true",
        help="canonicalize reference-swapped twins onto one memo slot",
    )
    p_batch.add_argument(
        "--no-directions",
        action="store_true",
        help="skip direction-vector analysis (verdicts only)",
    )
    p_batch.add_argument(
        "--trace",
        metavar="PATH",
        help="stream every query's decision events to a JSONL file",
    )
    p_batch.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="atomically checkpoint completed shards here (enables the "
        "supervised watchdog path)",
    )
    p_batch.add_argument(
        "--resume",
        action="store_true",
        help="replay shards already in --checkpoint instead of "
        "recomputing them (bit-identical to an uninterrupted run)",
    )
    p_batch.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard watchdog timeout; a case defeating the retries "
        "is quarantined with a conservative answer",
    )
    p_batch.add_argument(
        "--shard-retries",
        type=int,
        default=1,
        metavar="N",
        help="retries before a crashed/hung shard is split and its "
        "poison case quarantined (default 1)",
    )
    _add_budget_flags(p_batch)
    p_batch.add_argument("-v", "--verbose", action="store_true")
    p_batch.set_defaults(func=_cmd_batch)

    p_explain = sub.add_parser(
        "explain", help="pretty-print one pair's full decision trace"
    )
    p_explain.add_argument("file", help="source file (.loop/.py/.c), or -")
    _add_lang_flag(p_explain)
    p_explain.add_argument(
        "--pair",
        type=int,
        default=None,
        help="pair index to explain (omit or --list to enumerate)",
    )
    p_explain.add_argument(
        "--list", action="store_true", help="list pair indices and exit"
    )
    p_explain.add_argument(
        "--no-directions",
        action="store_true",
        help="skip the direction-refinement part of the trace",
    )
    p_explain.add_argument(
        "--jsonl",
        metavar="PATH",
        help="also dump the raw events as JSONL",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_stats = sub.add_parser(
        "stats", help="run a corpus and dump the metrics registry"
    )
    p_stats.add_argument(
        "files",
        nargs="*",
        help="source files, .loop/.py/.c (none: the PERFECT corpus)",
    )
    _add_lang_flag(p_stats)
    p_stats.add_argument(
        "--suite",
        action="store_true",
        help="include the synthetic PERFECT corpus alongside any files",
    )
    p_stats.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="repetition scale for the synthetic corpus (default 1.0)",
    )
    p_stats.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1)",
    )
    p_stats.add_argument(
        "--json", action="store_true", help="dump as JSON instead of text"
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_bench = sub.add_parser(
        "bench",
        help="time a corpus run; --profile attributes it to hot sites",
    )
    p_bench.add_argument(
        "files",
        nargs="*",
        help="source files, .loop/.py/.c (none: the PERFECT corpus)",
    )
    _add_lang_flag(p_bench)
    p_bench.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="repetition scale for the synthetic corpus (default 0.1)",
    )
    p_bench.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and report top cumulative sites",
    )
    p_bench.add_argument(
        "--top",
        type=int,
        default=25,
        help="number of profile sites to report (default 25)",
    )
    p_bench.add_argument(
        "--out",
        default="PROFILE_bench.json",
        help="JSON artifact path for --profile (default PROFILE_bench.json)",
    )
    p_bench.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the unprofiled timing run (default 1)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    from repro.fuzz.runner import add_fuzz_parser

    add_fuzz_parser(sub)

    p_vec = sub.add_parser(
        "vectorize", help="distribute + vectorize loops (Allen-Kennedy)"
    )
    p_vec.add_argument("file", help="source file (.loop/.py/.c), or -")
    _add_lang_flag(p_vec)
    p_vec.set_defaults(func=_cmd_vectorize)

    p_dot = sub.add_parser(
        "dot", help="dependence graph as Graphviz DOT"
    )
    p_dot.add_argument("file", help="source file (.loop/.py/.c), or -")
    _add_lang_flag(p_dot)
    p_dot.set_defaults(func=_cmd_dot)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived dependence-query daemon (repro.serve)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free one, announced on stdout)",
    )
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve one session over stdin/stdout instead of TCP",
    )
    p_serve.add_argument(
        "--cache",
        metavar="PATH",
        help="persistent two-tier cache store (loaded if present, "
        "rewritten atomically on drain)",
    )
    p_serve.add_argument(
        "--cache-max-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="LRU byte bound for the persistent store (default 64 MiB)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="concurrent analysis worker threads (default 8)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="admitted-but-waiting requests before backpressure "
        "(default 32)",
    )
    p_serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query budget; exceeded queries degrade to the "
        "conservative flagged verdict (default: unbounded)",
    )
    p_serve.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="process-pool workers for heavy batches (default: CPU count)",
    )
    p_serve.add_argument("--symmetry", action="store_true")
    p_serve.add_argument("--fm-budget", type=int, default=256)
    p_serve.add_argument(
        "--cluster",
        type=int,
        default=None,
        metavar="N",
        help="run a consistent-hash router over N worker daemons "
        "instead of one server (see repro.serve.cluster)",
    )
    p_serve.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="this daemon's ring id inside a cluster (set by the "
        "cluster supervisor)",
    )
    p_serve.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help="memo-warmth gossip directory: periodically spill this "
        "daemon's memo table there and absorb peers' images",
    )
    p_serve.add_argument(
        "--spill-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="gossip period for --spill-dir (default 2.0)",
    )
    _add_budget_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_query = sub.add_parser(
        "query", help="query a running dependence daemon"
    )
    p_query.add_argument(
        "file",
        nargs="?",
        default=None,
        help="source file (.loop/.py/.c), or - (not needed for control ops)",
    )
    _add_lang_flag(p_query)
    p_query.add_argument(
        "--endpoint",
        default=None,
        metavar="URL",
        help="tcp://HOST:PORT, cluster://HOST:PORT, or stdio: "
        "(overrides --host/--port)",
    )
    p_query.add_argument("--host", default="127.0.0.1")
    p_query.add_argument("--port", type=int, default=None)
    p_query.add_argument(
        "--op",
        default="analyze",
        choices=[
            "analyze",
            "analyze_program",
            "explain",
            "stats",
            "health",
            "shutdown",
        ],
    )
    p_query.add_argument(
        "--pair",
        type=int,
        default=0,
        help="reference-pair index for analyze/explain (default 0)",
    )
    p_query.add_argument(
        "--retry-for",
        type=float,
        default=0.0,
        help="seconds to retry connecting while the server comes up",
    )
    _add_retry_flags(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_watch = sub.add_parser(
        "watch",
        help="incremental re-analysis of a file as it is edited",
    )
    p_watch.add_argument("file", help="source file (.loop/.py/.c) to watch")
    _add_lang_flag(p_watch)
    p_watch.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="mtime poll period (default 0.5)",
    )
    p_watch.add_argument(
        "--count",
        type=int,
        default=None,
        metavar="N",
        help="exit after N successful updates (default: watch forever)",
    )
    p_watch.add_argument(
        "--endpoint",
        default=None,
        metavar="URL",
        help="use a running daemon's protocol-v3 session ops "
        "(tcp://HOST:PORT) instead of analyzing in-process",
    )
    p_watch.add_argument(
        "--retry-for",
        type=float,
        default=0.0,
        help="seconds to retry connecting while the server comes up",
    )
    p_watch.add_argument(
        "--verify",
        action="store_true",
        help="after every update, run a cold full analysis and assert "
        "the delta graph is identical (slow; for debugging)",
    )
    _add_retry_flags(p_watch)
    _add_budget_flags(p_watch)
    p_watch.set_defaults(func=_cmd_watch)

    p_ping = sub.add_parser(
        "ping",
        help="one health round-trip against a server or router, with latency",
    )
    p_ping.add_argument(
        "--endpoint",
        required=True,
        metavar="URL",
        help="tcp://HOST:PORT, cluster://HOST:PORT, or stdio:",
    )
    p_ping.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="socket timeout for the round-trip (default 5)",
    )
    p_ping.set_defaults(func=_cmd_ping)

    p_chaos = sub.add_parser(
        "chaosproxy",
        help="seeded fault-injecting TCP proxy for resilience testing",
    )
    p_chaos.add_argument(
        "listen", metavar="LISTEN", help="HOST:PORT (or bare PORT) to listen on"
    )
    p_chaos.add_argument(
        "upstream",
        metavar="UPSTREAM",
        help="HOST:PORT (or bare PORT) of the real server behind the proxy",
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--delay-rate", type=float, default=0.0, metavar="P",
        help="probability of delaying a connection or frame",
    )
    p_chaos.add_argument(
        "--drop-rate", type=float, default=0.0, metavar="P",
        help="probability of swallowing a frame (or refusing a connect)",
    )
    p_chaos.add_argument(
        "--reset-rate", type=float, default=0.0, metavar="P",
        help="probability of a hard connection reset",
    )
    p_chaos.add_argument(
        "--torn-rate", type=float, default=0.0, metavar="P",
        help="probability of forwarding half a frame then resetting",
    )
    p_chaos.add_argument(
        "--partition-rate", type=float, default=0.0, metavar="P",
        help="probability a connect opens a partition window",
    )
    p_chaos.add_argument(
        "--delay-s", type=float, default=0.05, metavar="SECONDS",
        help="length of an injected delay (default 0.05)",
    )
    p_chaos.add_argument(
        "--partition-conns", type=int, default=3, metavar="N",
        help="connections refused per partition window (default 3)",
    )
    p_chaos.set_defaults(func=_cmd_chaosproxy)

    p_tables = sub.add_parser(
        "tables", help="regenerate the paper's tables (see repro.harness)"
    )
    p_tables.add_argument("rest", nargs=argparse.REMAINDER)
    p_tables.set_defaults(func=None)

    args = parser.parse_args(argv)
    if args.command == "tables":
        from repro.harness.cli import main as harness_main

        return harness_main(args.rest)
    try:
        return args.func(args)
    except LangError as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_USAGE
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        # Clean stop, no traceback: anything already flushed (e.g. a
        # batch checkpoint's completed shards) stays on disk.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # Downstream closed stdout (``repro extract ... | head``): the
        # Unix convention is a quiet stop, not a traceback.  Point
        # stdout at /dev/null so the interpreter's exit-time flush
        # cannot raise a second BrokenPipeError.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK
    except Exception as err:  # noqa: BLE001 — map anything else to 3
        import traceback

        traceback.print_exc(file=sys.stderr)
        print(f"internal error: {err}", file=sys.stderr)
        return EXIT_INTERNAL
