"""Convenience builders for loop nests, references and programs.

The mini-language frontend (:mod:`repro.lang`) is the main way to
construct programs, but tests, examples and the synthetic workload
generator want a terse programmatic API:

    >>> from repro.ir import builder as B
    >>> nest = B.nest(("i", 1, 10), ("j", 1, B.v("i")))
    >>> prog = B.program("demo")
    >>> B.assign(prog, nest, ("a", [B.v("i") + 1]), [("a", [B.v("i")])])
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.ir.affine import AffineExpr
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program, Statement

__all__ = ["v", "c", "nest", "program", "assign", "ref"]

_Bound = AffineExpr | int | str
_RefSpec = tuple[str, Sequence[AffineExpr | int]]


def v(name: str) -> AffineExpr:
    """An affine variable (loop index or symbolic term)."""
    return AffineExpr.variable(name)


def c(value: int) -> AffineExpr:
    """An affine constant."""
    return AffineExpr(value)


def _expr(value: _Bound) -> AffineExpr:
    if isinstance(value, str):
        return AffineExpr.variable(value)
    return AffineExpr.of(value)


def nest(*loops: tuple[str, _Bound, _Bound]) -> LoopNest:
    """Build a nest from ``(var, lower, upper)`` triples, outermost first.

    Bounds may be ints, affine expressions, or bare variable names
    (interpreted as symbols or outer loop variables).
    """
    return LoopNest([Loop(name, _expr(lo), _expr(hi)) for name, lo, hi in loops])


def ref(
    array: str, subscripts: Sequence[AffineExpr | int], write: bool = False
) -> ArrayRef:
    kind = AccessKind.WRITE if write else AccessKind.READ
    return ArrayRef.make(array, subscripts, kind)


def program(name: str, source_lines: int = 0) -> Program:
    return Program(name, source_lines=source_lines)


def assign(
    prog: Program,
    loop_nest: LoopNest,
    write: _RefSpec | None,
    reads: Sequence[_RefSpec] = (),
    label: str = "",
) -> Statement:
    """Append ``write = f(reads)`` to ``prog`` and return the statement."""
    write_ref = (
        ref(write[0], write[1], write=True) if write is not None else None
    )
    read_refs = tuple(ref(name, subs) for name, subs in reads)
    stmt = Statement(loop_nest, write_ref, read_refs, label)
    prog.add(stmt)
    return stmt
