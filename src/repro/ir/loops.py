"""Loop nests with trapezoidal (affine) bounds.

A :class:`Loop` binds one index variable to an inclusive range whose
ends are affine functions of more outwardly nested loop variables and
symbolic terms (the paper's "nested trapezoidal loops").  Loops are
normalized to step 1; :mod:`repro.opt.normalize` rewrites strided
source loops into this form before analysis.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.ir.affine import AffineExpr

__all__ = ["Loop", "LoopNest"]


@dataclass(frozen=True, slots=True)
class Loop:
    """``for var = lower to upper`` (inclusive, step 1)."""

    var: str
    lower: AffineExpr
    upper: AffineExpr

    def __post_init__(self) -> None:
        if self.var in self.lower.variables() or self.var in self.upper.variables():
            raise ValueError(f"loop bound of {self.var} references itself")

    def rename(self, mapping: dict[str, str]) -> "Loop":
        return Loop(
            mapping.get(self.var, self.var),
            self.lower.rename(mapping),
            self.upper.rename(mapping),
        )

    def __str__(self) -> str:
        return f"for {self.var} = {self.lower} to {self.upper}"


class LoopNest:
    """An ordered sequence of loops, outermost first."""

    __slots__ = ("loops", "_hash")

    def __init__(self, loops: Sequence[Loop]):
        self.loops: tuple[Loop, ...] = tuple(loops)
        self._hash: int | None = None
        seen: set[str] = set()
        for loop in self.loops:
            if loop.var in seen:
                raise ValueError(f"duplicate loop variable {loop.var!r}")
            outer_unknowns = loop.lower.variables() | loop.upper.variables()
            # bounds may reference outer loop vars and symbols, never inner vars
            inner = {l.var for l in self.loops} - seen - {loop.var}
            bad = outer_unknowns & inner
            if bad:
                raise ValueError(
                    f"bound of {loop.var!r} references inner loop vars {sorted(bad)}"
                )
            seen.add(loop.var)

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(loop.var for loop in self.loops)

    def __iter__(self) -> Iterator[Loop]:
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)

    def __getitem__(self, index: int) -> Loop:
        return self.loops[index]

    def symbols(self) -> frozenset[str]:
        """Free variables of the bounds: loop-invariant symbolic terms."""
        bound_vars = set(self.variables)
        free: set[str] = set()
        for loop in self.loops:
            free |= loop.lower.variables() | loop.upper.variables()
        return frozenset(free - bound_vars)

    def common_prefix_depth(self, other: "LoopNest") -> int:
        """Number of leading loops shared (by identity of var and bounds)."""
        depth = 0
        for a, b in zip(self.loops, other.loops):
            if a != b:
                break
            depth += 1
        return depth

    def iteration_space(self, env: dict[str, int] | None = None):
        """Yield all iteration vectors (dicts) for *constant* bounds.

        ``env`` supplies values for symbolic terms.  Used by the
        enumeration oracle and the examples; raises if a bound is not
        resolvable to a constant.
        """
        env = dict(env or {})

        def recurse(level: int):
            if level == len(self.loops):
                yield {v: env[v] for v in self.variables}
                return
            loop = self.loops[level]
            lo = loop.lower.evaluate(env)
            hi = loop.upper.evaluate(env)
            for value in range(lo, hi + 1):
                env[loop.var] = value
                yield from recurse(level + 1)
            env.pop(loop.var, None)

        yield from recurse(0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LoopNest):
            return NotImplemented
        return self.loops == other.loops

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(self.loops)
            self._hash = value
        return value

    def __repr__(self) -> str:
        return f"LoopNest({list(self.loops)!r})"

    def __str__(self) -> str:
        return "\n".join(
            "  " * i + str(loop) for i, loop in enumerate(self.loops)
        )
