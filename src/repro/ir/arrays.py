"""Array references: the objects dependence testing compares."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.ir.affine import AffineExpr

__all__ = ["ArrayRef", "AccessKind"]


class AccessKind:
    """Whether a reference reads or writes its location."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class ArrayRef:
    """A subscripted reference ``array[sub0][sub1]...`` with an access kind."""

    array: str
    subscripts: tuple[AffineExpr, ...]
    kind: str = AccessKind.READ

    @staticmethod
    def make(
        array: str, subscripts: Sequence[AffineExpr | int], kind: str = AccessKind.READ
    ) -> "ArrayRef":
        return ArrayRef(
            array, tuple(AffineExpr.of(s) for s in subscripts), kind
        )

    @property
    def rank(self) -> int:
        return len(self.subscripts)

    @property
    def is_write(self) -> bool:
        return self.kind == AccessKind.WRITE

    def variables(self) -> frozenset[str]:
        free: frozenset[str] = frozenset()
        for sub in self.subscripts:
            free |= sub.variables()
        return free

    def rename(self, mapping: dict[str, str]) -> "ArrayRef":
        return ArrayRef(
            self.array,
            tuple(s.rename(mapping) for s in self.subscripts),
            self.kind,
        )

    def __str__(self) -> str:
        subs = "".join(f"[{s}]" for s in self.subscripts)
        return f"{self.array}{subs}"
