"""JSON serde for the dependence-query IR (refs, nests, affine exprs).

One canonical wire/corpus encoding shared by every layer that ships
queries across a boundary: the fuzz corpus (:mod:`repro.fuzz.corpus`),
the serving protocol (:mod:`repro.serve.protocol`) and any external
tool that wants to pose queries without the mini-Fortran frontend.

The encoding is deterministic — dict keys are emitted in sorted order
where the source container is unordered — so two equal IR values
always serialize to the same JSON text.
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.loops import Loop, LoopNest

__all__ = [
    "expr_to_dict",
    "expr_from_dict",
    "ref_to_dict",
    "ref_from_dict",
    "nest_to_dict",
    "nest_from_dict",
    "query_to_dict",
    "query_from_dict",
]


def expr_to_dict(expr: AffineExpr) -> dict:
    return {"const": expr.constant, "terms": dict(sorted(expr.terms.items()))}


def expr_from_dict(payload: dict) -> AffineExpr:
    return AffineExpr(payload["const"], payload.get("terms", {}))


def ref_to_dict(ref: ArrayRef) -> dict:
    return {
        "array": ref.array,
        "subscripts": [expr_to_dict(s) for s in ref.subscripts],
        "kind": ref.kind,
    }


def ref_from_dict(payload: dict) -> ArrayRef:
    return ArrayRef(
        payload["array"],
        tuple(expr_from_dict(s) for s in payload["subscripts"]),
        payload.get("kind", AccessKind.READ),
    )


def nest_to_dict(nest: LoopNest) -> list[dict]:
    return [
        {
            "var": loop.var,
            "lower": expr_to_dict(loop.lower),
            "upper": expr_to_dict(loop.upper),
        }
        for loop in nest
    ]


def nest_from_dict(payload: list[dict]) -> LoopNest:
    return LoopNest(
        [
            Loop(
                entry["var"],
                expr_from_dict(entry["lower"]),
                expr_from_dict(entry["upper"]),
            )
            for entry in payload
        ]
    )


def query_to_dict(ref1: ArrayRef, nest1: LoopNest, ref2: ArrayRef, nest2: LoopNest) -> dict:
    """One dependence question — the unit both the corpus and the wire ship."""
    return {
        "ref1": ref_to_dict(ref1),
        "nest1": nest_to_dict(nest1),
        "ref2": ref_to_dict(ref2),
        "nest2": nest_to_dict(nest2),
    }


def query_from_dict(payload: dict) -> tuple[ArrayRef, LoopNest, ArrayRef, LoopNest]:
    return (
        ref_from_dict(payload["ref1"]),
        nest_from_dict(payload["nest1"]),
        ref_from_dict(payload["ref2"]),
        nest_from_dict(payload["nest2"]),
    )
