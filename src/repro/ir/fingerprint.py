"""Canonical fingerprints for statements, loop nests and programs.

The incremental re-analysis engine (:mod:`repro.core.incremental`)
needs to answer one question cheaply after an edit: *which statements
still mean what they meant before?*  Fingerprints make that a string
comparison.

Every fingerprint is the SHA-256 hex digest of a canonical JSON
rendering of the analysis-relevant IR content:

* a **loop-nest fingerprint** covers the nest's variables and its
  normalized affine bounds, outermost first;
* a **statement fingerprint** covers the enclosing nest plus the
  written reference and every read reference (normalized subscripts,
  access kinds), in program order within the statement;
* a **program fingerprint** is the ordered list of its statement
  fingerprints plus one combined digest.

Canonicalization rides on :mod:`repro.ir.serde` (sorted dict keys,
zero coefficients dropped by :class:`~repro.ir.affine.AffineExpr`), so
the digest is a pure function of the IR's meaning: whitespace,
comment and formatting differences in the surface source vanish in the
parser, and an unparse → re-parse round trip
(:func:`repro.lang.unparse.program_to_source`) reproduces every
fingerprint bit-for-bit.  Statement labels are deliberately excluded —
they never influence a dependence verdict.

The **pair key** is the same construction applied to an ordered pair
of access sites; it names one dependence question, so a cached answer
keyed on it survives any edit that leaves both endpoints' statements
untouched (including statement insertions and deletions that merely
shift indices).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.ir.loops import LoopNest
from repro.ir.program import AccessSite, Program, Statement, reference_pairs
from repro.ir.serde import nest_to_dict, ref_to_dict

__all__ = [
    "nest_fingerprint",
    "statement_fingerprint",
    "program_fingerprint",
    "pair_key",
    "program_pair_keys",
    "ProgramFingerprint",
    "FingerprintDelta",
    "diff_fingerprints",
]


def _digest(payload) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def nest_fingerprint(nest: LoopNest) -> str:
    """Canonical digest of one loop nest (vars + normalized bounds)."""
    return _digest(nest_to_dict(nest))


def statement_fingerprint(stmt: Statement) -> str:
    """Canonical digest of one statement's analysis-relevant content."""
    return _digest(
        {
            "nest": nest_to_dict(stmt.nest),
            "write": ref_to_dict(stmt.write) if stmt.write is not None else None,
            "reads": [ref_to_dict(ref) for ref in stmt.reads],
        }
    )


def pair_key(site1: AccessSite, site2: AccessSite) -> str:
    """Canonical digest naming one ordered dependence question.

    Covers both references (subscripts + access kind) and both nests —
    the complete input of a direction-vector query.  Two textually
    identical pairs pose identical questions and deliberately share
    one key; the answer is a pure function of it.
    """
    return _digest(
        {
            "ref1": ref_to_dict(site1.ref),
            "nest1": nest_to_dict(site1.nest),
            "ref2": ref_to_dict(site2.ref),
            "nest2": nest_to_dict(site2.nest),
        }
    )


def program_pair_keys(
    program: Program, fp: "ProgramFingerprint | None" = None
) -> list[str]:
    """Content keys for every :func:`reference_pairs` entry, in order.

    The incremental engine's bulk spelling of :func:`pair_key`: each
    key is built from the two endpoint statements' fingerprints (one
    digest per *statement*, already computed for the program diff) plus
    each site's ordinal within its statement, so keying all O(n²) pairs
    costs no per-pair hashing.  A statement fingerprint determines the
    statement's exact content and the ordinal selects the site, so
    equal keys still mean textually identical questions — merely
    slightly narrower sharing than :func:`pair_key` (two identical
    questions posed from *differing* statements get distinct keys).
    """
    if fp is None:
        fp = program_fingerprint(program)
    offsets: list[int] = []
    total = 0
    for stmt in program.statements:
        offsets.append(total)
        total += len(stmt.refs())
    keys: list[str] = []
    for site1, site2 in reference_pairs(program):
        fp1 = fp.statements[site1.stmt_index]
        fp2 = fp.statements[site2.stmt_index]
        ordinal1 = site1.site_index - offsets[site1.stmt_index]
        ordinal2 = site2.site_index - offsets[site2.stmt_index]
        keys.append(f"{fp1}:{ordinal1}|{fp2}:{ordinal2}")
    return keys


@dataclass(frozen=True)
class ProgramFingerprint:
    """Ordered statement fingerprints plus one combined digest."""

    statements: tuple[str, ...]
    digest: str

    def __len__(self) -> int:
        return len(self.statements)


def program_fingerprint(program: Program) -> ProgramFingerprint:
    fps = tuple(statement_fingerprint(s) for s in program.statements)
    return ProgramFingerprint(statements=fps, digest=_digest(list(fps)))


@dataclass(frozen=True)
class FingerprintDelta:
    """What an edit did, at statement granularity.

    ``kept`` maps old statement index → new statement index for every
    statement whose fingerprint survived (greedy in-order matching, so
    duplicated statements pair up positionally).  ``dirty`` holds new
    indices with no surviving twin (edited or inserted statements);
    ``removed`` holds old indices whose statement disappeared.
    """

    kept: tuple[tuple[int, int], ...]
    dirty: tuple[int, ...]
    removed: tuple[int, ...]

    @property
    def unchanged(self) -> bool:
        return not self.dirty and not self.removed


def diff_fingerprints(
    old: ProgramFingerprint, new: ProgramFingerprint
) -> FingerprintDelta:
    """Match statements of two program versions by fingerprint.

    Greedy and in-order: the first unmatched old occurrence of a
    fingerprint pairs with the first new occurrence, so a program of
    repeated statements diffs to "all kept" against itself.
    """
    available: dict[str, list[int]] = {}
    for index, fp in enumerate(old.statements):
        available.setdefault(fp, []).append(index)
    kept: list[tuple[int, int]] = []
    dirty: list[int] = []
    matched_old: set[int] = set()
    for new_index, fp in enumerate(new.statements):
        slots = available.get(fp)
        if slots:
            old_index = slots.pop(0)
            matched_old.add(old_index)
            kept.append((old_index, new_index))
        else:
            dirty.append(new_index)
    removed = tuple(
        index
        for index in range(len(old.statements))
        if index not in matched_old
    )
    return FingerprintDelta(
        kept=tuple(kept), dirty=tuple(dirty), removed=removed
    )
