"""Programs as collections of array accesses inside loop nests."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest

__all__ = ["Statement", "AccessSite", "Program"]


@dataclass(frozen=True)
class Statement:
    """One assignment: a single written reference plus the references read.

    ``reads`` may include scalar-free array references only; scalar data
    flow is resolved earlier by :mod:`repro.opt`.
    """

    nest: LoopNest
    write: ArrayRef | None
    reads: tuple[ArrayRef, ...] = ()
    label: str = ""

    def refs(self) -> tuple[ArrayRef, ...]:
        out = []
        if self.write is not None:
            out.append(self.write)
        out.extend(self.reads)
        return tuple(out)


@dataclass(frozen=True)
class AccessSite:
    """A single array reference at a specific point in the program."""

    ref: ArrayRef
    nest: LoopNest
    stmt_index: int
    site_index: int

    def __str__(self) -> str:
        return f"{self.ref} (stmt {self.stmt_index})"


@dataclass
class Program:
    """A named list of statements, each with its enclosing loop nest."""

    name: str
    statements: list[Statement] = field(default_factory=list)
    source_lines: int = 0

    def add(self, statement: Statement) -> None:
        self.statements.append(statement)

    def sites(self) -> list[AccessSite]:
        """All array access sites, in program order."""
        out: list[AccessSite] = []
        counter = 0
        for stmt_index, stmt in enumerate(self.statements):
            for ref in stmt.refs():
                out.append(AccessSite(ref, stmt.nest, stmt_index, counter))
                counter += 1
        return out

    def arrays(self) -> set[str]:
        return {site.ref.array for site in self.sites()}


def reference_pairs(
    program: Program, include_self_output: bool = False
) -> list[tuple[AccessSite, AccessSite]]:
    """All pairs of references that dependence testing must examine.

    Two sites form a testable pair when they name the same array and at
    least one of them writes.  A write site paired with itself (pure
    output self-dependence) is trivially dependent only at equal
    iterations, so it is skipped unless ``include_self_output`` is set.
    """
    sites = program.sites()
    by_array: dict[str, list[AccessSite]] = {}
    for site in sites:
        by_array.setdefault(site.ref.array, []).append(site)

    pairs: list[tuple[AccessSite, AccessSite]] = []
    for group in by_array.values():
        for i, first in enumerate(group):
            start = i if include_self_output else i + 1
            for second in group[start:]:
                if not (first.ref.is_write or second.ref.is_write):
                    continue
                if second.site_index == first.site_index and not include_self_output:
                    continue
                pairs.append((first, second))
    return pairs
