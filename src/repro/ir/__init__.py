"""Loop-nest intermediate representation."""

from repro.ir.affine import AffineExpr, const, var
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import AccessSite, Program, Statement, reference_pairs

__all__ = [
    "AffineExpr",
    "var",
    "const",
    "ArrayRef",
    "AccessKind",
    "Loop",
    "LoopNest",
    "Statement",
    "AccessSite",
    "Program",
    "reference_pairs",
]
