"""Affine expressions over loop variables and symbolic terms.

The analyses in this package apply to loop nests whose bounds and array
subscripts are *integral affine* functions of the enclosing loop
variables, plus loop-invariant symbolic unknowns (paper sections 2 and
8).  :class:`AffineExpr` is the shared representation: an integer
constant plus a map from variable name to integer coefficient.

Instances are immutable and support the arithmetic needed to build and
manipulate subscripts: addition, subtraction, scaling by an integer,
and substitution of a variable by another affine expression (the basis
of forward substitution and induction-variable elimination in
:mod:`repro.opt`).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Union

__all__ = ["AffineExpr", "var", "const"]

_Scalar = Union[int, "AffineExpr"]


class AffineExpr:
    """An immutable integer affine expression ``const + sum(coeff*name)``."""

    __slots__ = ("constant", "_terms", "_hash")

    def __init__(self, constant: int = 0, terms: Mapping[str, int] | None = None):
        self.constant = int(constant)
        clean = {}
        if terms:
            for name, coeff in terms.items():
                coeff = int(coeff)
                if coeff != 0:
                    clean[name] = coeff
        self._terms: dict[str, int] = clean
        self._hash: int | None = None

    # -- constructors --------------------------------------------------------

    @staticmethod
    def variable(name: str) -> "AffineExpr":
        return AffineExpr(0, {name: 1})

    @staticmethod
    def of(value: _Scalar) -> "AffineExpr":
        if isinstance(value, AffineExpr):
            return value
        return AffineExpr(int(value))

    # -- queries ---------------------------------------------------------------

    @property
    def terms(self) -> dict[str, int]:
        return dict(self._terms)

    def coeff(self, name: str) -> int:
        return self._terms.get(name, 0)

    def variables(self) -> frozenset[str]:
        return frozenset(self._terms)

    @property
    def is_constant(self) -> bool:
        return not self._terms

    def as_constant(self) -> int:
        if self._terms:
            raise ValueError(f"{self} is not a constant")
        return self.constant

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other: _Scalar) -> "AffineExpr":
        other = AffineExpr.of(other)
        terms = dict(self._terms)
        for name, coeff in other._terms.items():
            terms[name] = terms.get(name, 0) + coeff
        return AffineExpr(self.constant + other.constant, terms)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr(-self.constant, {n: -c for n, c in self._terms.items()})

    def __sub__(self, other: _Scalar) -> "AffineExpr":
        return self + (-AffineExpr.of(other))

    def __rsub__(self, other: _Scalar) -> "AffineExpr":
        return AffineExpr.of(other) - self

    def __mul__(self, factor: int) -> "AffineExpr":
        if isinstance(factor, AffineExpr):
            if factor.is_constant:
                factor = factor.constant
            elif self.is_constant:
                return factor * self.constant
            else:
                raise ValueError("product of two non-constant affine expressions")
        factor = int(factor)
        return AffineExpr(
            self.constant * factor, {n: c * factor for n, c in self._terms.items()}
        )

    __rmul__ = __mul__

    def substitute(self, name: str, replacement: _Scalar) -> "AffineExpr":
        """Replace ``name`` by an affine expression (exact, integer)."""
        coeff = self._terms.get(name, 0)
        if coeff == 0:
            return self
        terms = dict(self._terms)
        del terms[name]
        base = AffineExpr(self.constant, terms)
        return base + AffineExpr.of(replacement) * coeff

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        """Rename variables (e.g. prime the second reference's indices).

        If the mapping sends two variables to the same name their
        coefficients merge.
        """
        terms: dict[str, int] = {}
        for name, coeff in self._terms.items():
            new_name = mapping.get(name, name)
            terms[new_name] = terms.get(new_name, 0) + coeff
        return AffineExpr(self.constant, terms)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.constant + sum(c * env[n] for n, c in self._terms.items())

    def coefficients(self, order: Sequence[str]) -> list[int]:
        """Coefficient vector in the given variable order.

        Raises if the expression mentions a variable outside ``order`` —
        that would silently drop a term.
        """
        known = set(order)
        missing = self.variables() - known
        if missing:
            raise ValueError(f"variables {sorted(missing)} not in order {order}")
        return [self._terms.get(name, 0) for name in order]

    # -- comparisons and formatting ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = AffineExpr(other)
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self.constant == other.constant and self._terms == other._terms

    def __hash__(self) -> int:
        # Hashing sorts the term map; expressions are hashed repeatedly
        # (memo keys, dedup sets), so the result is computed once.
        h = self._hash
        if h is None:
            h = hash((self.constant, tuple(sorted(self._terms.items()))))
            self._hash = h
        return h

    def __repr__(self) -> str:
        return f"AffineExpr({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for name in sorted(self._terms):
            coeff = self._terms[name]
            if coeff == 1:
                text = name
            elif coeff == -1:
                text = f"-{name}"
            else:
                text = f"{coeff}*{name}"
            if parts and not text.startswith("-"):
                parts.append(f"+ {text}")
            elif parts:
                parts.append(f"- {text[1:]}")
            else:
                parts.append(text)
        if self.constant or not parts:
            if parts:
                sign = "+" if self.constant >= 0 else "-"
                parts.append(f"{sign} {abs(self.constant)}")
            else:
                parts.append(str(self.constant))
        return " ".join(parts)


def var(name: str) -> AffineExpr:
    """Shorthand for :meth:`AffineExpr.variable`."""
    return AffineExpr.variable(name)


def const(value: int) -> AffineExpr:
    """Shorthand for a constant expression."""
    return AffineExpr(value)
