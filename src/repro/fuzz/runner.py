"""Implementation of the ``python -m repro fuzz`` subcommand.

Two modes:

* **generate** (default) — run a differential-fuzzing campaign from a
  seed: `repro fuzz --seed 0 --iterations 500`.  Output is
  bit-reproducible for a fixed ``(seed, iterations, tiers)`` triple,
  including across ``--jobs`` values (the printed stats only include
  deterministic per-case counters).
* **replay** — re-check a committed corpus directory:
  `repro fuzz --replay tests/corpus`.  No random generation, fast and
  deterministic; this is what PR CI runs.

Exit status 0 when every check passed, 1 when any discrepancy was
found (the report, and any shrunk counterexamples, are printed either
way).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fuzz.generator import TIERS
from repro.fuzz.harness import FuzzConfig, FuzzReport, replay_cases, run_fuzz
from repro.oracle.enumerate import DEFAULT_RADIUS

__all__ = ["add_fuzz_parser", "cmd_fuzz"]


def add_fuzz_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    """Register the ``fuzz`` subcommand on a subparsers object."""
    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing against the enumeration oracle",
        description=(
            "Generate random dependence problems and cross-check the "
            "exact cascade against brute-force enumeration, the inexact "
            "baselines, and the analyzer's own metamorphic invariants "
            "(memoization, sharding, unused-variable elimination, "
            "reference swapping, source round-trip)."
        ),
    )
    p.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    p.add_argument(
        "-n",
        "--iterations",
        type=int,
        default=1000,
        help="number of generated cases (default 1000)",
    )
    p.add_argument(
        "--tier",
        action="append",
        choices=TIERS + ("all",),
        default=None,
        help="difficulty tier(s) to fuzz; repeatable (default: all)",
    )
    p.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop generating new cases after this many seconds",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for case checking (default 1)",
    )
    p.add_argument(
        "--shrink",
        dest="shrink",
        action="store_true",
        default=True,
        help="minimize failing cases (default)",
    )
    p.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        help="report failures without minimizing them",
    )
    p.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="write shrunk counterexamples to this directory",
    )
    p.add_argument(
        "--replay",
        metavar="DIR",
        default=None,
        help="re-check a committed corpus directory instead of generating",
    )
    p.add_argument(
        "--oracle-radius",
        type=int,
        default=DEFAULT_RADIUS,
        help=(
            "search half-width for unbounded/symbolic variables "
            f"(default {DEFAULT_RADIUS})"
        ),
    )
    p.add_argument(
        "--no-e2e",
        dest="e2e",
        action="store_false",
        default=True,
        help="skip the unparse -> parse -> analyze round-trip check",
    )
    p.add_argument(
        "--no-cross-shard",
        dest="cross_shard",
        action="store_false",
        default=True,
        help="skip the serial-vs-sharded batch-engine comparison",
    )
    p.add_argument(
        "--stats-json",
        metavar="PATH",
        default=None,
        help="also dump the deterministic counter snapshot as JSON",
    )
    p.set_defaults(func=cmd_fuzz)
    return p


def _selected_tiers(args: argparse.Namespace) -> tuple[str, ...]:
    if not args.tier or "all" in args.tier:
        return TIERS
    # Preserve TIERS order and drop duplicates for determinism.
    chosen = set(args.tier)
    return tuple(tier for tier in TIERS if tier in chosen)


def cmd_fuzz(args: argparse.Namespace) -> int:
    tiers = _selected_tiers(args)
    if args.replay is not None:
        from repro.fuzz.corpus import load_corpus

        cases = load_corpus(args.replay)
        if tiers != TIERS:
            cases = [case for case in cases if case.tier in tiers]
        if not cases:
            print(f"no corpus cases under {args.replay}")
            return 0
        config = FuzzConfig(
            seed=args.seed,
            iterations=len(cases),
            tiers=tiers,
            jobs=args.jobs,
            shrink=False,
            oracle_radius=args.oracle_radius,
            e2e=args.e2e,
            cross_shard=args.cross_shard,
        )
        report = replay_cases(cases, config)
        print(f"replayed {len(cases)} corpus case(s) from {args.replay}")
    else:
        config = FuzzConfig(
            seed=args.seed,
            iterations=args.iterations,
            tiers=tiers,
            time_budget=args.time_budget,
            jobs=args.jobs,
            shrink=args.shrink,
            corpus=args.corpus,
            oracle_radius=args.oracle_radius,
            e2e=args.e2e,
            cross_shard=args.cross_shard,
        )
        report = run_fuzz(config)
    return _finish(report, args)


def _finish(report: FuzzReport, args: argparse.Namespace) -> int:
    print(report.render())
    if args.stats_json:
        Path(args.stats_json).write_text(
            json.dumps(report.stats_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote stats to {args.stats_json}", file=sys.stderr)
    if args.corpus and report.shrunk:
        print(
            f"wrote {len(report.shrunk)} shrunk counterexample(s) "
            f"to {args.corpus}",
            file=sys.stderr,
        )
    return 0 if report.ok else 1
