"""Seeded, tiered generation of random-but-valid dependence problems.

Every case is derived from a single integer seed through
:class:`random.Random` only — no global state, no string hashing — so
the same ``(seed, iterations, tiers)`` triple always produces the
identical case list, in the same order, in any process.  Difficulty
tiers (:data:`TIERS`):

``constant``
    Rectangular nests with small constant bounds and simple one- or
    two-variable subscripts — the bread-and-butter SVPC/GCD territory.
``coupled``
    Rank-2/3 references whose dimensions share loop variables
    (``a[i+j][i-j]``), the cases per-dimension tests get wrong.
``triangular``
    Inner bounds affine in outer variables (triangular/trapezoidal
    regions), exercising the Acyclic and Loop Residue tests.
``symbolic``
    Loop-invariant symbolic unknowns in bounds and subscripts
    (paper section 8); the oracle evaluates one concrete environment,
    so differential checks are one-sided for this tier.
``degenerate``
    Edge cases: zero-iteration loops, all-constant subscripts,
    single-iteration loops, unused loop variables, oversized
    coefficients.

Generated nests keep iteration spaces small (≤ :data:`MAX_POINTS` per
nest) so the enumeration oracle stays cheap; a retry loop regenerates
the rare blowups deterministically.

One documented precondition is respected by construction: the
analyzer's array-constant fast path (``a[3]`` vs ``a[3]``) assumes
loops are non-empty (paper section 5), so all-constant subscript pairs
are only emitted under loops that are guaranteed non-empty.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.affine import AffineExpr
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program, Statement
from repro.ir.serde import (
    nest_from_dict as _nest_from_dict,
    nest_to_dict as _nest_to_dict,
    ref_from_dict as _ref_from_dict,
    ref_to_dict as _ref_to_dict,
)
from repro.system.depsystem import DependenceProblem, build_problem

__all__ = [
    "TIERS",
    "MAX_POINTS",
    "FuzzCase",
    "generate_case",
    "generate_cases",
    "case_strategy",
]

TIERS = ("constant", "coupled", "triangular", "symbolic", "degenerate")

# Cap on the iteration-space size of each generated nest; keeps the
# enumeration oracle's full scan per case in the low milliseconds.
MAX_POINTS = 80

_LOOP_VARS = ("i", "j", "k", "l")
_SYMBOLS = ("n", "m")
_ARRAY = "a"

# Mix constants for deriving per-case seeds (splitmix64-style odd
# multipliers); any fixed odd constants work, these just decorrelate
# neighbouring (seed, index) pairs.
_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 0xBF58476D1CE4E5B9
_MASK = (1 << 63) - 1


@dataclass(frozen=True)
class FuzzCase:
    """One generated dependence question plus its oracle environment.

    ``ref1`` always writes; ``ref2`` reads or writes.  ``env`` assigns
    a concrete small value to every symbolic term so the enumeration
    oracle can ground the iteration spaces.
    """

    tier: str
    seed: int
    index: int
    ref1: ArrayRef
    nest1: LoopNest
    ref2: ArrayRef
    nest2: LoopNest
    env: dict[str, int] = field(default_factory=dict)

    @property
    def has_symbols(self) -> bool:
        return bool(self.env)

    def problem(self) -> DependenceProblem:
        return build_problem(self.ref1, self.nest1, self.ref2, self.nest2)

    def program(self) -> Program:
        """The case as a two-statement IR program (for the source path).

        Statement 0 performs the write (``ref1``); statement 1 either
        writes ``ref2`` directly or reads it into a disjoint ``out``
        array, so :func:`repro.ir.program.reference_pairs` recovers
        exactly one testable pair on the fuzzed array.
        """
        prog = Program(f"fuzz_{self.tier}_{self.index}")
        prog.add(Statement(self.nest1, write=self.ref1))
        if self.ref2.is_write:
            prog.add(Statement(self.nest2, write=self.ref2))
        else:
            out_sub = (
                AffineExpr.variable(self.nest2.loops[-1].var)
                if self.nest2.depth
                else AffineExpr(0)
            )
            out = ArrayRef("out", (out_sub,), AccessKind.WRITE)
            prog.add(Statement(self.nest2, write=out, reads=(self.ref2,)))
        return prog

    def to_source(self) -> str:
        """Canonical mini-Fortran text (fuzzes parse → lower → analyze)."""
        from repro.lang.unparse import program_to_source

        return program_to_source(self.program())

    # -- serialization (corpus files) ---------------------------------

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "seed": self.seed,
            "index": self.index,
            "ref1": _ref_to_dict(self.ref1),
            "nest1": _nest_to_dict(self.nest1),
            "ref2": _ref_to_dict(self.ref2),
            "nest2": _nest_to_dict(self.nest2),
            "env": dict(sorted(self.env.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCase":
        return cls(
            tier=payload["tier"],
            seed=payload.get("seed", 0),
            index=payload.get("index", 0),
            ref1=_ref_from_dict(payload["ref1"]),
            nest1=_nest_from_dict(payload["nest1"]),
            ref2=_ref_from_dict(payload["ref2"]),
            nest2=_nest_from_dict(payload["nest2"]),
            env={str(k): int(v) for k, v in payload.get("env", {}).items()},
        )


# -- generation helpers -----------------------------------------------------


def _space_size(nest: LoopNest, env: dict[str, int], cap: int) -> int:
    """Iteration count of the nest under ``env``, stopping at ``cap``."""
    count = 0
    for _ in nest.iteration_space(dict(env)):
        count += 1
        if count > cap:
            return count
    return count


def _always_nonempty(nest: LoopNest, env: dict[str, int]) -> bool:
    """Every loop executes at least once for every enclosing iteration.

    The analyzer's model assumes non-empty loops (section 5): bound
    constraints on unused variables are dropped under exactly that
    assumption.  Tiers checked two-sidedly against the oracle must
    respect it, or the fuzzer would flag out-of-contract inputs —
    triangular nests are the only generated shape that can violate it
    (e.g. ``for j = i+1 to 3`` is empty at ``i = 3``).
    """

    def rec(level: int, point: dict) -> bool:
        if level == nest.depth:
            return True
        loop = nest.loops[level]
        lo = loop.lower.evaluate(point)
        hi = loop.upper.evaluate(point)
        if lo > hi:
            return False
        return all(
            rec(level + 1, {**point, loop.var: value})
            for value in range(lo, hi + 1)
        )

    return rec(0, dict(env))


def _subscript(
    rng: random.Random,
    variables: tuple[str, ...],
    max_vars: int,
    coeff_hi: int,
    const_hi: int,
    symbol: str | None = None,
) -> AffineExpr:
    """A random affine subscript over a subset of ``variables``."""
    n_vars = rng.randint(0 if not variables else 1, min(max_vars, len(variables)))
    chosen = rng.sample(list(variables), n_vars) if n_vars else []
    terms: dict[str, int] = {}
    for name in chosen:
        coeff = rng.choice([c for c in range(-coeff_hi, coeff_hi + 1) if c])
        terms[name] = coeff
    if symbol is not None:
        terms[symbol] = rng.choice((-1, 1))
    return AffineExpr(rng.randint(-const_hi, const_hi), terms)


def _constant_loops(
    rng: random.Random, names: tuple[str, ...], max_trip: int = 4
) -> list[Loop]:
    loops = []
    for name in names:
        lo = rng.randint(-2, 2)
        hi = lo + rng.randint(0, max_trip - 1)
        loops.append(Loop(name, AffineExpr(lo), AffineExpr(hi)))
    return loops


def _split_nests(
    rng: random.Random, shared: list[Loop], extra_pool: tuple[str, ...]
) -> tuple[LoopNest, LoopNest]:
    """Two nests sharing ``shared`` as common prefix, plus 0-1 extras."""
    extras1 = extras2 = []
    if extra_pool and rng.random() < 0.4:
        extras1 = _constant_loops(rng, extra_pool[:1], max_trip=3)
    if extra_pool and rng.random() < 0.4:
        extras2 = _constant_loops(rng, extra_pool[:1], max_trip=3)
    return LoopNest(shared + extras1), LoopNest(shared + extras2)


def _make_refs(
    rng: random.Random,
    nest1: LoopNest,
    nest2: LoopNest,
    rank: int,
    max_vars: int,
    coeff_hi: int,
    const_hi: int,
    symbol: str | None = None,
) -> tuple[ArrayRef, ArrayRef]:
    sub1 = tuple(
        _subscript(
            rng,
            nest1.variables,
            max_vars,
            coeff_hi,
            const_hi,
            symbol if (symbol and d == 0 and rng.random() < 0.5) else None,
        )
        for d in range(rank)
    )
    sub2 = tuple(
        _subscript(
            rng,
            nest2.variables,
            max_vars,
            coeff_hi,
            const_hi,
            symbol if (symbol and d == 0 and rng.random() < 0.5) else None,
        )
        for d in range(rank)
    )
    ref1 = ArrayRef(_ARRAY, sub1, AccessKind.WRITE)
    kind2 = AccessKind.WRITE if rng.random() < 0.3 else AccessKind.READ
    ref2 = ArrayRef(_ARRAY, sub2, kind2)
    return ref1, ref2


# -- per-tier builders ------------------------------------------------------

# What every tier builder returns: the write ref + nest, the second
# ref + nest, and the symbol environment (empty for ground tiers).
_TierCase = tuple[ArrayRef, LoopNest, ArrayRef, LoopNest, dict]


def _gen_constant(rng: random.Random) -> _TierCase:
    depth = rng.randint(1, 3)
    shared = _constant_loops(rng, _LOOP_VARS[:depth])
    nest1, nest2 = _split_nests(rng, shared, _LOOP_VARS[depth : depth + 1])
    ref1, ref2 = _make_refs(
        rng, nest1, nest2, rank=rng.randint(1, 2), max_vars=2, coeff_hi=2, const_hi=4
    )
    return ref1, nest1, ref2, nest2, {}


def _gen_coupled(rng: random.Random) -> _TierCase:
    depth = rng.randint(2, 3)
    shared = _constant_loops(rng, _LOOP_VARS[:depth])
    nest1, nest2 = _split_nests(rng, shared, _LOOP_VARS[depth : depth + 1])
    ref1, ref2 = _make_refs(
        rng,
        nest1,
        nest2,
        rank=rng.randint(2, 3),
        max_vars=3,
        coeff_hi=3,
        const_hi=3,
    )
    return ref1, nest1, ref2, nest2, {}


def _gen_triangular(rng: random.Random) -> _TierCase:
    depth = rng.randint(2, 3)
    loops: list[Loop] = []
    lo0 = rng.randint(0, 2)
    hi0 = lo0 + rng.randint(1, 3)
    loops.append(Loop(_LOOP_VARS[0], AffineExpr(lo0), AffineExpr(hi0)))
    for level in range(1, depth):
        outer = rng.choice([loop.var for loop in loops])
        outer_expr = AffineExpr.variable(outer)
        if rng.random() < 0.5:
            # triangular from below: for v = outer + c to constant
            lower = outer_expr + rng.randint(-1, 1)
            upper = AffineExpr(hi0 + rng.randint(0, 2))
        else:
            # triangular from above: for v = constant to outer + c
            lower = AffineExpr(lo0 + rng.randint(-1, 0))
            upper = outer_expr + rng.randint(0, 2)
        loops.append(Loop(_LOOP_VARS[level], lower, upper))
    nest1, nest2 = _split_nests(rng, loops, _LOOP_VARS[depth : depth + 1])
    ref1, ref2 = _make_refs(
        rng, nest1, nest2, rank=rng.randint(1, 2), max_vars=2, coeff_hi=2, const_hi=3
    )
    return ref1, nest1, ref2, nest2, {}


def _gen_symbolic(rng: random.Random) -> _TierCase:
    depth = rng.randint(1, 2)
    symbol = rng.choice(_SYMBOLS)
    env = {symbol: rng.randint(2, 5)}
    loops: list[Loop] = []
    for level in range(depth):
        lo = rng.randint(0, 2)
        if level == 0 or rng.random() < 0.5:
            upper = AffineExpr.variable(symbol) + rng.randint(-1, 1)
        else:
            upper = AffineExpr(lo + rng.randint(0, 3))
        loops.append(Loop(_LOOP_VARS[level], AffineExpr(lo), upper))
    nest1, nest2 = _split_nests(rng, loops, _LOOP_VARS[depth : depth + 1])
    use_in_subscript = rng.random() < 0.6
    ref1, ref2 = _make_refs(
        rng,
        nest1,
        nest2,
        rank=rng.randint(1, 2),
        max_vars=2,
        coeff_hi=2,
        const_hi=3,
        symbol=symbol if use_in_subscript else None,
    )
    # Keep env entries only for symbols the case actually mentions.
    used = (
        ref1.variables()
        | ref2.variables()
        | nest1.symbols()
        | nest2.symbols()
    )
    env = {name: value for name, value in env.items() if name in used}
    return ref1, nest1, ref2, nest2, env


def _gen_degenerate(rng: random.Random) -> _TierCase:
    flavor = rng.choice(
        ("empty", "equal_const", "unequal_const", "self", "unused", "wide")
    )
    if flavor == "empty":
        # Zero-iteration loop: bounds contradict.  Subscripts must not be
        # all-constant (the constant fast path assumes non-empty loops).
        lo = rng.randint(2, 5)
        loops = [Loop("i", AffineExpr(lo), AffineExpr(lo - rng.randint(1, 3)))]
        nest = LoopNest(loops)
        sub = AffineExpr(rng.randint(-2, 2), {"i": rng.choice((-2, -1, 1, 2))})
        ref1 = ArrayRef(_ARRAY, (sub,), AccessKind.WRITE)
        ref2 = ArrayRef(
            _ARRAY,
            (AffineExpr(rng.randint(-2, 2), {"i": 1}),),
            AccessKind.READ,
        )
        return ref1, nest, ref2, nest, {}
    if flavor in ("equal_const", "unequal_const"):
        # All-constant subscripts under guaranteed non-empty loops.
        nest = LoopNest(_constant_loops(rng, ("i",), max_trip=3))
        c1 = rng.randint(-3, 3)
        c2 = c1 if flavor == "equal_const" else c1 + rng.randint(1, 3)
        rank = rng.randint(1, 2)
        extra = rng.randint(-2, 2)
        sub1 = (AffineExpr(c1),) + ((AffineExpr(extra),) if rank == 2 else ())
        sub2 = (AffineExpr(c2),) + ((AffineExpr(extra),) if rank == 2 else ())
        return (
            ArrayRef(_ARRAY, sub1, AccessKind.WRITE),
            nest,
            ArrayRef(_ARRAY, sub2, AccessKind.READ),
            nest,
            {},
        )
    if flavor == "self":
        depth = rng.randint(1, 2)
        nest = LoopNest(_constant_loops(rng, _LOOP_VARS[:depth]))
        sub = tuple(
            _subscript(rng, nest.variables, 2, 2, 3) for _ in range(rng.randint(1, 2))
        )
        ref1 = ArrayRef(_ARRAY, sub, AccessKind.WRITE)
        ref2 = ArrayRef(_ARRAY, sub, AccessKind.READ)
        return ref1, nest, ref2, nest, {}
    if flavor == "unused":
        # Loops whose variables no subscript mentions (elimination fodder).
        depth = rng.randint(2, 3)
        nest = LoopNest(_constant_loops(rng, _LOOP_VARS[:depth]))
        used = nest.variables[: rng.randint(1, depth - 1)]
        ref1 = ArrayRef(
            _ARRAY, (_subscript(rng, used, 2, 2, 3),), AccessKind.WRITE
        )
        ref2 = ArrayRef(
            _ARRAY, (_subscript(rng, used, 2, 2, 3),), AccessKind.READ
        )
        return ref1, nest, ref2, nest, {}
    # "wide": oversized coefficients against tiny trip counts.
    nest = LoopNest(_constant_loops(rng, ("i", "j")[: rng.randint(1, 2)], max_trip=3))
    ref1, ref2 = _make_refs(
        rng, nest, nest, rank=1, max_vars=2, coeff_hi=9, const_hi=9
    )
    return ref1, nest, ref2, nest, {}


_TIER_BUILDERS = {
    "constant": _gen_constant,
    "coupled": _gen_coupled,
    "triangular": _gen_triangular,
    "symbolic": _gen_symbolic,
    "degenerate": _gen_degenerate,
}


# -- public API -------------------------------------------------------------


def case_seed(seed: int, index: int) -> int:
    """The per-case RNG seed: a pure function of the run seed and index."""
    return ((seed * _MIX1) ^ ((index + 1) * _MIX2)) & _MASK


def generate_case(seed: int, index: int, tier: str) -> FuzzCase:
    """Deterministically build case ``index`` of a run at one tier."""
    if tier not in _TIER_BUILDERS:
        raise ValueError(f"unknown tier {tier!r} (expected one of {TIERS})")
    builder = _TIER_BUILDERS[tier]
    derived = case_seed(seed, index)
    for attempt in range(16):
        rng = random.Random(derived + attempt)
        ref1, nest1, ref2, nest2, env = builder(rng)
        if (
            _space_size(nest1, env, MAX_POINTS) <= MAX_POINTS
            and _space_size(nest2, env, MAX_POINTS) <= MAX_POINTS
            and (
                tier != "triangular"
                or (_always_nonempty(nest1, env) and _always_nonempty(nest2, env))
            )
        ):
            return FuzzCase(
                tier=tier,
                seed=seed,
                index=index,
                ref1=ref1,
                nest1=nest1,
                ref2=ref2,
                nest2=nest2,
                env=env,
            )
    raise RuntimeError(
        f"could not generate a bounded case (tier={tier}, seed={seed}, index={index})"
    )


def generate_cases(
    seed: int, iterations: int, tiers: tuple[str, ...] = TIERS
) -> list[FuzzCase]:
    """The run's case list: ``iterations`` cases, tiers round-robin."""
    if not tiers:
        raise ValueError("no tiers selected")
    return [
        generate_case(seed, index, tiers[index % len(tiers)])
        for index in range(iterations)
    ]


def case_strategy(tier: str | None = None, seed: int = 0):
    """A hypothesis strategy over generated cases (reused by tests).

    Drawing an index (and optionally a tier) funnels hypothesis's
    shrinking through the deterministic generator, so failing examples
    are reportable as ``(seed, index, tier)`` triples.
    """
    from hypothesis import strategies as st

    if tier is not None:
        return st.integers(min_value=0, max_value=2**20).map(
            lambda index: generate_case(seed, index, tier)
        )
    return st.tuples(
        st.integers(min_value=0, max_value=2**20), st.sampled_from(TIERS)
    ).map(lambda pair: generate_case(seed, pair[0], pair[1]))
