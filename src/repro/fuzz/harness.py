"""The differential harness: cascade vs oracle vs baselines, plus
metamorphic invariants.

For every generated case the harness checks:

1. **Oracle verdict** — the cascade's answer must match exhaustive
   enumeration of the iteration spaces.  Cases with symbolic terms are
   checked one-sidedly (the analyzer answers for *all* integer symbol
   values, the oracle grounds one environment): a cascade
   "independent" must have no witness at the oracle's environment, and
   every oracle direction vector must appear in the cascade's set.
2. **Oracle directions/distances** — elementary direction vectors must
   equal (non-symbolic) or contain (symbolic) the enumerated set, and
   any constant distance the Extended GCD solution claims must match
   every enumerated conflict.
3. **Baseline conservativeness** — the inexact tests (simple GCD,
   Banerjee bounds) may only err toward "maybe dependent"; claiming
   independence on a case the oracle (or the exact cascade) proves
   dependent is a bug on either side of the comparison.
4. **Memo ≡ recompute** — analyzing the same pair twice through a
   memoizer must return the first answer from the table, bit-equal;
   the symmetric-key scheme must serve the swapped pair from the same
   slot.
5. **Unused-variable elimination** preserves verdicts and vectors.
6. **Swap symmetry** — reversing the pair preserves the verdict and
   mirrors every direction vector.
7. **Source round-trip** — unparse → parse → optimize → analyze
   (through :class:`repro.api.AnalysisSession`) agrees with the direct
   in-memory analysis, fuzzing the whole frontend.
8. **Sharded ≡ serial** (run level) — the batch engine over the whole
   case list must produce identical verdicts and vectors at
   ``jobs=1`` and ``jobs>1``.

Every check failure becomes a :class:`Discrepancy`; :func:`run_fuzz`
counts them in a :class:`repro.obs.metrics.MetricsRegistry`
(``fuzz.cases``, ``fuzz.discrepancies``, per-tier ``time.fuzz.*``
timers) and optionally shrinks and persists them via
:mod:`repro.fuzz.shrink` / :mod:`repro.fuzz.corpus`.

Fault injection for tests: pass ``make_analyzer`` returning a
deliberately broken :class:`~repro.core.analyzer.DependenceAnalyzer`
and the harness reports exactly where it diverges (``jobs`` must stay
1 — factories do not cross process boundaries).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.baselines import banerjee_independent, simple_gcd_independent
from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.fuzz.generator import TIERS, FuzzCase, generate_case
from repro.obs.metrics import MetricsRegistry
from repro.system.depsystem import Direction

__all__ = [
    "FuzzConfig",
    "Discrepancy",
    "CaseOutcome",
    "FuzzReport",
    "check_case",
    "run_fuzz",
    "replay_cases",
]

AnalyzerFactory = Callable[..., DependenceAnalyzer]


@dataclass(frozen=True)
class FuzzConfig:
    """Everything one fuzzing run is configured with."""

    seed: int = 0
    iterations: int = 1000
    tiers: tuple[str, ...] = TIERS
    time_budget: float | None = None
    jobs: int = 1
    shrink: bool = True
    corpus: str | None = None
    oracle_radius: int = 6
    e2e: bool = True
    cross_shard: bool = True
    cross_shard_jobs: int = 2
    max_shrink_evals: int = 400


@dataclass(frozen=True)
class Discrepancy:
    """One failed check: the case, which invariant broke, and how."""

    case: FuzzCase
    kind: str
    detail: str

    def describe(self) -> str:
        return (
            f"[{self.kind}] tier={self.case.tier} seed={self.case.seed} "
            f"index={self.case.index}: {self.detail}"
        )


@dataclass
class CaseOutcome:
    """Per-case result: the fresh verdict plus any discrepancies."""

    case: FuzzCase
    dependent: bool
    decided_by: str
    exact: bool
    discrepancies: list[Discrepancy] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.discrepancies


def _default_factory(**kwargs) -> DependenceAnalyzer:
    return DependenceAnalyzer(**kwargs)


# -- single-pass oracle scan ------------------------------------------------


def _oracle_scan(
    case: FuzzCase,
) -> tuple[bool, set[tuple[str, ...]], list[tuple[int, ...]]]:
    """One enumeration pass: verdict, direction vectors, distances.

    Equivalent to calling ``oracle_dependent`` +
    ``oracle_direction_vectors`` + ``oracle_distance_set`` but walks
    the iteration-space product once.
    """
    ref1, nest1 = case.ref1, case.nest1
    ref2, nest2 = case.ref2, case.nest2
    env = case.env
    n_common = nest1.common_prefix_depth(nest2)
    common_vars = nest1.variables[:n_common]
    vectors: set[tuple[str, ...]] = set()
    distances: set[tuple[int, ...]] = set()
    dependent = False
    if ref1.array != ref2.array or ref1.rank != ref2.rank:
        return False, vectors, []
    points2 = []
    for iter2 in nest2.iteration_space(dict(env)):
        env2 = {**env, **iter2}
        addr2 = tuple(s.evaluate(env2) for s in ref2.subscripts)
        points2.append((iter2, addr2))
    for iter1 in nest1.iteration_space(dict(env)):
        env1 = {**env, **iter1}
        addr1 = tuple(s.evaluate(env1) for s in ref1.subscripts)
        for iter2, addr2 in points2:
            if addr1 != addr2:
                continue
            dependent = True
            vector = []
            distance = []
            for var in common_vars:
                a, b = iter1[var], iter2[var]
                vector.append(
                    Direction.LT if a < b else Direction.EQ if a == b else Direction.GT
                )
                distance.append(b - a)
            vectors.add(tuple(vector))
            distances.add(tuple(distance))
    return dependent, vectors, sorted(distances)


# Guard rails for the problem-level box scan: skip blowups so one
# deep constant nest cannot stall the whole campaign.
_BOX_MAX_VARS = 6
_BOX_MAX_VOLUME = 20_000


def _box_witness(case: FuzzCase, radius: int) -> tuple[int, ...] | None:
    """An integer solution of the case's full dependence system, if the
    enumeration box is small enough to scan (None otherwise/none found)."""
    from repro.oracle.enumerate import enumeration_box, iterate_box

    problem = case.problem()
    if problem.n_vars > _BOX_MAX_VARS:
        return None
    box = enumeration_box(problem.bounds, radius)
    if box is None:
        return None
    volume = 1
    for lo, hi in box:
        volume *= hi - lo + 1
        if volume > _BOX_MAX_VOLUME:
            return None
    for point in iterate_box(problem.bounds, box):
        if all(
            sum(c * x for c, x in zip(coeffs, point)) == rhs
            for coeffs, rhs in problem.equations
        ):
            return point
    return None


def _flip_vector(vector: tuple[str, ...]) -> tuple[str, ...]:
    flip = {Direction.LT: Direction.GT, Direction.GT: Direction.LT}
    return tuple(flip.get(component, component) for component in vector)


# -- the per-case differential check ----------------------------------------


def check_case(
    case: FuzzCase,
    oracle_radius: int = 6,
    make_analyzer: AnalyzerFactory | None = None,
    e2e: bool = True,
) -> CaseOutcome:
    """Run every per-case check; collect (never raise on) discrepancies."""
    make = make_analyzer if make_analyzer is not None else _default_factory
    bad: list[Discrepancy] = []

    def fail(kind: str, detail: str) -> None:
        bad.append(Discrepancy(case=case, kind=kind, detail=detail))

    # 0. the reference answer: one fresh analyzer, no memo.
    fresh = make(memoizer=None)
    result = fresh.analyze(case.ref1, case.nest1, case.ref2, case.nest2)
    vectors: frozenset[tuple[str, ...]] = frozenset()
    dirs_exact = True
    if result.dependent:
        dirs = fresh.directions(case.ref1, case.nest1, case.ref2, case.nest2)
        vectors = dirs.elementary_vectors()
        dirs_exact = dirs.exact
    outcome = CaseOutcome(
        case=case,
        dependent=result.dependent,
        decided_by=result.decided_by,
        exact=result.exact and dirs_exact,
        discrepancies=bad,
    )

    # 1-2. against the enumeration oracle.
    oracle_dep, oracle_vectors, oracle_distances = _oracle_scan(case)
    if case.has_symbols:
        # One-sided: the analyzer quantifies over every integer symbol
        # value, the oracle grounds one environment.
        if not result.dependent and oracle_dep:
            fail(
                "verdict-vs-oracle",
                f"cascade independent ({result.decided_by}) but oracle finds a "
                f"conflict at env={case.env}",
            )
        if result.dependent and dirs_exact and not oracle_vectors <= vectors:
            fail(
                "directions-vs-oracle",
                f"oracle vectors {sorted(oracle_vectors - vectors)} missing from "
                f"cascade set {sorted(vectors)} at env={case.env}",
            )
    else:
        if result.exact and result.dependent != oracle_dep:
            fail(
                "verdict-vs-oracle",
                f"cascade says dependent={result.dependent} "
                f"({result.decided_by}), oracle says {oracle_dep}",
            )
        if result.dependent and result.exact and dirs_exact:
            if vectors != oracle_vectors:
                fail(
                    "directions-vs-oracle",
                    f"cascade {sorted(vectors)} != oracle {sorted(oracle_vectors)}",
                )
    if result.dependent and result.exact and result.distance and oracle_distances:
        for level, claimed in enumerate(result.distance):
            if claimed is None:
                continue
            observed = {distance[level] for distance in oracle_distances}
            if observed - {claimed}:
                fail(
                    "distance-vs-oracle",
                    f"level {level}: GCD claims constant distance {claimed}, "
                    f"oracle observes {sorted(observed)}",
                )

    # 2b. the constraint-system view, through the oracle's enumeration
    # box: an exact "independent" means the problem's equations+bounds
    # have no integer solution — for symbolic cases this quantifies
    # over every symbol value in the ±radius box, which is strictly
    # stronger than the single-environment nest scan above.
    if result.independent and result.exact:
        witness = _box_witness(case, oracle_radius)
        if witness is not None:
            fail(
                "verdict-vs-box",
                f"cascade independent ({result.decided_by}) but the problem "
                f"has the integer solution {witness} inside the enumeration "
                "box",
            )

    # 3. baselines may be conservative, never *less* conservative.
    exact_dependent = result.dependent and result.exact
    if simple_gcd_independent(case.ref1, case.nest1, case.ref2, case.nest2):
        if oracle_dep:
            fail(
                "baseline-simple-gcd",
                "simple GCD claims independent but the oracle finds a conflict",
            )
        elif exact_dependent and not case.has_symbols:
            fail(
                "baseline-simple-gcd",
                "simple GCD claims independent but the exact cascade proves "
                "dependence",
            )
    if banerjee_independent(case.ref1, case.nest1, case.ref2, case.nest2):
        if oracle_dep:
            fail(
                "baseline-banerjee",
                "Banerjee claims independent but the oracle finds a conflict",
            )
        elif exact_dependent and not case.has_symbols:
            fail(
                "baseline-banerjee",
                "Banerjee claims independent but the exact cascade proves "
                "dependence",
            )

    # 4. memo hit ≡ recompute (plain and symmetric-key schemes).
    memo_analyzer = make(memoizer=Memoizer(improved=True, symmetry=False))
    first = memo_analyzer.analyze(case.ref1, case.nest1, case.ref2, case.nest2)
    second = memo_analyzer.analyze(case.ref1, case.nest1, case.ref2, case.nest2)
    if (first.dependent, first.decided_by, first.distance) != (
        result.dependent,
        result.decided_by,
        result.distance,
    ):
        fail(
            "memo-first",
            f"memoized first answer ({first.dependent}, {first.decided_by}) "
            f"!= fresh ({result.dependent}, {result.decided_by})",
        )
    if second.dependent != first.dependent or second.distance != first.distance:
        fail(
            "memo-replay",
            f"memo replay changed the answer: {first.dependent} -> "
            f"{second.dependent}",
        )
    if first.decided_by != "constant" and not second.from_memo:
        fail(
            "memo-replay",
            f"identical repeat query was recomputed (decided_by="
            f"{second.decided_by}) instead of served from the table",
        )
    if result.dependent:
        mdirs1 = memo_analyzer.directions(
            case.ref1, case.nest1, case.ref2, case.nest2
        )
        mdirs2 = memo_analyzer.directions(
            case.ref1, case.nest1, case.ref2, case.nest2
        )
        if mdirs1.vectors != mdirs2.vectors:
            fail("memo-replay", "direction vectors changed on memo replay")
        if dirs_exact and mdirs1.elementary_vectors() != vectors:
            fail(
                "memo-first",
                "memoized direction vectors differ from the fresh analyzer's",
            )
    sym_analyzer = make(memoizer=Memoizer(improved=True, symmetry=True))
    forward = sym_analyzer.analyze(case.ref1, case.nest1, case.ref2, case.nest2)
    mirrored = sym_analyzer.analyze(case.ref2, case.nest2, case.ref1, case.nest1)
    if forward.dependent != mirrored.dependent:
        fail(
            "memo-symmetry",
            f"swapped twin verdict flipped under the symmetric-key memo: "
            f"{forward.dependent} vs {mirrored.dependent}",
        )
    if forward.decided_by != "constant" and not mirrored.from_memo:
        fail(
            "memo-symmetry",
            "swapped twin was recomputed instead of served from the shared slot",
        )

    # 5. unused-variable elimination preserves the answer.
    plain = make(memoizer=None, eliminate_unused=False)
    unpruned = plain.analyze(case.ref1, case.nest1, case.ref2, case.nest2)
    if unpruned.exact and result.exact and unpruned.dependent != result.dependent:
        fail(
            "unused-elimination",
            f"eliminate_unused changed the verdict: {result.dependent} "
            f"(on) vs {unpruned.dependent} (off)",
        )
    if result.dependent and unpruned.dependent and result.exact and dirs_exact:
        udirs = plain.directions(
            case.ref1, case.nest1, case.ref2, case.nest2, prune_unused=False
        )
        if udirs.exact and udirs.elementary_vectors() != vectors:
            fail(
                "unused-elimination",
                "pruned and unpruned direction sets differ: "
                f"{sorted(vectors)} vs {sorted(udirs.elementary_vectors())}",
            )

    # 6. swapping the references preserves (mirrors) the answer.
    swapper = make(memoizer=None)
    swapped = swapper.analyze(case.ref2, case.nest2, case.ref1, case.nest1)
    if swapped.exact and result.exact and swapped.dependent != result.dependent:
        fail(
            "swap",
            f"swapped pair verdict differs: {result.dependent} vs "
            f"{swapped.dependent}",
        )
    if result.dependent and swapped.dependent and result.exact and dirs_exact:
        sdirs = swapper.directions(case.ref2, case.nest2, case.ref1, case.nest1)
        if sdirs.exact:
            mirrored_vectors = frozenset(
                _flip_vector(vector) for vector in sdirs.elementary_vectors()
            )
            if mirrored_vectors != vectors:
                fail(
                    "swap",
                    "swapped direction vectors are not the mirror image: "
                    f"{sorted(vectors)} vs flipped {sorted(mirrored_vectors)}",
                )

    # 7. the full source path: unparse -> parse -> optimize -> analyze.
    if e2e and make_analyzer is None:
        compiled = _check_source_roundtrip(
            case, result.dependent, vectors, dirs_exact, fail
        )
        # 8. the Python frontend path: emit the compiled program as real
        # Python, re-extract it through repro.frontends, and demand the
        # bit-identical dependence graph.
        if compiled is not None:
            _check_python_roundtrip(compiled, fail)

    return outcome


def _check_source_roundtrip(
    case: FuzzCase,
    dependent: bool,
    vectors: frozenset[tuple[str, ...]],
    dirs_exact: bool,
    fail: Callable[[str, str], None],
):
    """Check the unparse->parse path; returns the compiled Program."""
    from repro.api import AnalysisSession
    from repro.ir.program import reference_pairs
    from repro.lang.errors import LangError
    from repro.opt import compile_source

    source = case.to_source()
    try:
        compiled = compile_source(source, name="<fuzz>", strict=False)
    except LangError as err:
        fail("e2e-source", f"unparsed case does not re-parse: {err}")
        return None
    wanted = {
        (case.ref1.array, case.ref1.subscripts),
        (case.ref2.array, case.ref2.subscripts),
    }
    for site1, site2 in reference_pairs(compiled.program):
        got = {
            (site1.ref.array, site1.ref.subscripts),
            (site2.ref.array, site2.ref.subscripts),
        }
        if got != wanted:
            continue
        session = AnalysisSession()
        report = session.analyze_sites(site1, site2, want_directions=True)
        oriented = (site1.ref.array, site1.ref.subscripts) == (
            case.ref1.array,
            case.ref1.subscripts,
        )
        if report.dependent != dependent:
            fail(
                "e2e-source",
                f"source-path verdict {report.dependent} != in-memory "
                f"{dependent}",
            )
        elif dependent and dirs_exact and report.exact:
            through = {
                vector
                for reported in report.directions or ()
                for vector in _expand(reported)
            }
            if not oriented:
                through = {_flip_vector(vector) for vector in through}
            if through != set(vectors):
                fail(
                    "e2e-source",
                    f"source-path vectors {sorted(through)} != in-memory "
                    f"{sorted(vectors)}",
                )
        return compiled.program
    fail(
        "e2e-source",
        "compiled program lost the fuzzed reference pair "
        f"(source:\n{source})",
    )
    return None


def _check_python_roundtrip(program, fail: Callable[[str, str], None]) -> None:
    """The emitted-Python path must reproduce the native graph exactly.

    ``program_to_python`` renders the compiled fuzz program as an
    ordinary Python function; re-extracting it through the Python
    frontend and rebuilding the dependence graph must give edge dicts
    bit-identical to the native program's — the frontend contract.
    """
    from repro.core.analyzer import DependenceAnalyzer
    from repro.core.graph import build_graph
    from repro.frontends import extract_source, program_to_python

    text = program_to_python(program)
    extraction = extract_source(text, lang="python", name="<fuzz>")
    if extraction.skipped:
        fail(
            "e2e-python",
            f"emitted Python lost statements: {extraction.skipped[0]} "
            f"(source:\n{text})",
        )
        return
    native = build_graph(program, DependenceAnalyzer()).edge_dicts()
    mirrored = build_graph(extraction.program, DependenceAnalyzer()).edge_dicts()
    if mirrored != native:
        fail(
            "e2e-python",
            f"Python round-trip graph differs: {len(mirrored)} vs "
            f"{len(native)} edges (source:\n{text})",
        )


def _expand(vector: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
    if Direction.ANY not in vector:
        yield vector
        return
    idx = vector.index(Direction.ANY)
    for component in Direction.ALL:
        yield from _expand(vector[:idx] + (component,) + vector[idx + 1 :])


# -- the run driver ---------------------------------------------------------


@dataclass
class FuzzReport:
    """Everything one fuzzing run produced.

    ``registry`` carries the obs counters (``fuzz.cases``,
    ``fuzz.discrepancies``, ``fuzz.inexact``, per-tier/per-kind
    families) and the per-tier wall-time histograms
    (``time.fuzz.<tier>``).  ``stats_dict()`` is the deterministic
    subset: identical for identical ``(seed, iterations, tiers)``
    regardless of ``jobs`` or timing.
    """

    config: FuzzConfig
    outcomes: list[CaseOutcome]
    discrepancies: list[Discrepancy]
    shrunk: list[tuple[Discrepancy, FuzzCase]]
    registry: MetricsRegistry
    cross_shard_ok: bool | None
    elapsed_s: float

    @property
    def n_cases(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> bool:
        return not self.discrepancies and self.cross_shard_ok is not False

    def stats_dict(self) -> dict:
        """The run's deterministic statistics (no wall-clock content)."""
        return self.registry.counter_snapshot()

    def render(self) -> str:
        by_tier = self.registry.family("fuzz.cases_by_tier")
        verdicts = self.registry.family("fuzz.verdicts")
        lines = [
            f"fuzz: seed={self.config.seed} cases={self.n_cases} "
            f"tiers={','.join(self.config.tiers)}",
            "  cases by tier: "
            + " ".join(
                f"{tier}={by_tier[tier]}"
                for tier in self.config.tiers
                if by_tier[tier]
            ),
            f"  verdicts: dependent={verdicts['dependent']} "
            f"independent={verdicts['independent']} "
            f"(inexact={self.registry.get('fuzz.inexact')})",
        ]
        if self.cross_shard_ok is not None:
            state = "ok" if self.cross_shard_ok else "FAILED"
            lines.append(
                f"  cross-shard (serial == jobs={self.config.cross_shard_jobs}): "
                f"{state}"
            )
        lines.append(f"  discrepancies: {len(self.discrepancies)}")
        for discrepancy in self.discrepancies:
            lines.append(f"    {discrepancy.describe()}")
        for discrepancy, small in self.shrunk:
            lines.append(
                f"    shrunk [{discrepancy.kind}] to "
                f"{small.nest1.depth}+{small.nest2.depth} loops, "
                f"rank {small.ref1.rank}"
            )
        return "\n".join(lines)


def _check_shard(payload) -> tuple[list, dict]:
    """Worker: run per-case checks over one shard (no e2e factories)."""
    case_dicts, oracle_radius, e2e = payload
    registry = MetricsRegistry()
    rows = []
    for case_dict in case_dicts:
        case = FuzzCase.from_dict(case_dict)
        outcome = _timed_check(case, oracle_radius, None, e2e, registry)
        rows.append(
            (
                case.index,
                outcome.dependent,
                outcome.decided_by,
                outcome.exact,
                [(d.kind, d.detail) for d in outcome.discrepancies],
            )
        )
    return rows, registry.to_dict()


def _timed_check(
    case: FuzzCase,
    oracle_radius: int,
    make_analyzer: AnalyzerFactory | None,
    e2e: bool,
    registry: MetricsRegistry,
) -> CaseOutcome:
    with registry.timer(f"time.fuzz.{case.tier}"):
        outcome = check_case(
            case,
            oracle_radius=oracle_radius,
            make_analyzer=make_analyzer,
            e2e=e2e,
        )
    registry.inc("fuzz.cases")
    registry.family("fuzz.cases_by_tier")[case.tier] += 1
    registry.family("fuzz.verdicts")[
        "dependent" if outcome.dependent else "independent"
    ] += 1
    if not outcome.exact:
        registry.inc("fuzz.inexact")
    if outcome.discrepancies:
        registry.inc("fuzz.discrepancies", len(outcome.discrepancies))
        kinds = registry.family("fuzz.discrepancies_by_kind")
        for discrepancy in outcome.discrepancies:
            kinds[discrepancy.kind] += 1
    return outcome


def _cross_shard_check(
    cases: list[FuzzCase], jobs: int
) -> tuple[bool, list[Discrepancy]]:
    """Sharded engine ≡ serial over the whole case list."""
    from repro.core.engine import PairQuery, analyze_batch

    queries = [
        PairQuery(
            ref1=case.ref1,
            nest1=case.nest1,
            ref2=case.ref2,
            nest2=case.nest2,
            tag=case.index,
        )
        for case in cases
    ]
    serial = analyze_batch(queries, jobs=1, want_directions=True)
    sharded = analyze_batch(queries, jobs=jobs, want_directions=True)
    bad: list[Discrepancy] = []
    for case, left, right in zip(cases, serial.outcomes, sharded.outcomes):
        same = (
            left.result.dependent == right.result.dependent
            and left.result.decided_by == right.result.decided_by
            and (left.directions is None) == (right.directions is None)
            and (
                left.directions is None
                or left.directions.vectors == right.directions.vectors
            )
        )
        if not same:
            bad.append(
                Discrepancy(
                    case=case,
                    kind="cross-shard",
                    detail=(
                        f"serial ({left.result.dependent}, "
                        f"{left.result.decided_by}) != jobs={jobs} "
                        f"({right.result.dependent}, {right.result.decided_by})"
                    ),
                )
            )
    return not bad, bad


def run_fuzz(
    config: FuzzConfig | None = None,
    make_analyzer: AnalyzerFactory | None = None,
    cases: list[FuzzCase] | None = None,
) -> FuzzReport:
    """Run one differential-fuzzing campaign.

    ``cases`` overrides generation (corpus replay).  With ``jobs > 1``
    the per-case checks are sharded round-robin over worker processes;
    counters merge associatively in shard order, so every
    deterministic statistic is identical to the serial run.  The
    cross-shard engine check always runs in the parent (worker
    processes are daemonic and may not fork their own pools).
    """
    config = config if config is not None else FuzzConfig()
    if make_analyzer is not None and config.jobs > 1:
        raise ValueError("make_analyzer requires jobs=1 (not picklable)")
    start = time.perf_counter()
    deadline = (
        start + config.time_budget if config.time_budget is not None else None
    )
    registry = MetricsRegistry()
    outcomes: list[CaseOutcome] = []

    if cases is None:
        cases = []
        round_size = max(len(config.tiers), 50)
        index = 0
        while index < config.iterations:
            if deadline is not None and time.perf_counter() >= deadline:
                break
            for _ in range(min(round_size, config.iterations - index)):
                cases.append(
                    generate_case(
                        config.seed,
                        index,
                        config.tiers[index % len(config.tiers)],
                    )
                )
                index += 1

    if config.jobs > 1 and len(cases) > 1:
        outcomes = _run_sharded(config, cases, registry)
    else:
        for case in cases:
            if deadline is not None and time.perf_counter() >= deadline:
                break
            outcomes.append(
                _timed_check(
                    case, config.oracle_radius, make_analyzer, config.e2e, registry
                )
            )

    discrepancies = [
        discrepancy for outcome in outcomes for discrepancy in outcome.discrepancies
    ]

    cross_shard_ok: bool | None = None
    if config.cross_shard and make_analyzer is None and outcomes:
        checked = [outcome.case for outcome in outcomes]
        cross_shard_ok, shard_bad = _cross_shard_check(
            checked, config.cross_shard_jobs
        )
        if shard_bad:
            discrepancies.extend(shard_bad)
            registry.inc("fuzz.discrepancies", len(shard_bad))
            kinds = registry.family("fuzz.discrepancies_by_kind")
            for discrepancy in shard_bad:
                kinds[discrepancy.kind] += 1

    shrunk: list[tuple[Discrepancy, FuzzCase]] = []
    if config.shrink and discrepancies:
        shrunk = _shrink_discrepancies(config, discrepancies, make_analyzer)

    if config.corpus and shrunk:
        from repro.fuzz.corpus import save_case

        for discrepancy, small in shrunk:
            save_case(
                small,
                config.corpus,
                note=f"{discrepancy.kind}: {discrepancy.detail}",
            )

    return FuzzReport(
        config=config,
        outcomes=outcomes,
        discrepancies=discrepancies,
        shrunk=shrunk,
        registry=registry,
        cross_shard_ok=cross_shard_ok,
        elapsed_s=time.perf_counter() - start,
    )


def _run_sharded(
    config: FuzzConfig, cases: list[FuzzCase], registry: MetricsRegistry
) -> list[CaseOutcome]:
    import multiprocessing

    jobs = min(config.jobs, len(cases))
    shards: list[list[dict]] = [[] for _ in range(jobs)]
    for position, case in enumerate(cases):
        # Key worker rows by list position, not case.index — replayed
        # corpus cases may share index values.
        payload = case.to_dict()
        payload["index"] = position
        shards[position % jobs].append(payload)
    payloads = [
        (shard, config.oracle_radius, config.e2e) for shard in shards if shard
    ]
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:
        context = multiprocessing.get_context()
    with context.Pool(processes=len(payloads)) as pool:
        shard_outputs = pool.map(_check_shard, payloads)
    row_by_position: dict[int, tuple] = {}
    for rows, registry_dict in shard_outputs:
        registry.merge(MetricsRegistry.from_dict(registry_dict))
        for row in rows:
            row_by_position[row[0]] = row
    outcomes = []
    for position, case in enumerate(cases):
        _, dependent, decided_by, exact, raw = row_by_position[position]
        outcomes.append(
            CaseOutcome(
                case=case,
                dependent=dependent,
                decided_by=decided_by,
                exact=exact,
                discrepancies=[
                    Discrepancy(case=case, kind=kind, detail=detail)
                    for kind, detail in raw
                ],
            )
        )
    return outcomes


def _shrink_discrepancies(
    config: FuzzConfig,
    discrepancies: list[Discrepancy],
    make_analyzer: AnalyzerFactory | None,
) -> list[tuple[Discrepancy, FuzzCase]]:
    from repro.fuzz.shrink import shrink_case

    shrunk: list[tuple[Discrepancy, FuzzCase]] = []
    seen: set[int] = set()
    for discrepancy in discrepancies:
        if discrepancy.kind == "cross-shard":
            continue  # run-level property, not a per-case predicate
        if id(discrepancy.case) in seen:
            continue
        seen.add(id(discrepancy.case))
        kind = discrepancy.kind

        def still_fails(candidate: FuzzCase) -> bool:
            outcome = check_case(
                candidate,
                oracle_radius=config.oracle_radius,
                make_analyzer=make_analyzer,
                e2e=config.e2e,
            )
            return any(d.kind == kind for d in outcome.discrepancies)

        small = shrink_case(
            discrepancy.case, still_fails, max_evals=config.max_shrink_evals
        )
        shrunk.append((discrepancy, small))
    return shrunk


def replay_cases(
    cases: list[FuzzCase], config: FuzzConfig | None = None
) -> FuzzReport:
    """Re-check a fixed case list (the corpus replay entry point)."""
    base = config if config is not None else FuzzConfig()
    return run_fuzz(config=base, cases=cases)
