"""Regression-corpus I/O for shrunk fuzz counterexamples.

Every interesting case (shrunk counterexamples, curated seeds) is
committed under ``tests/corpus/`` as one JSON file whose name is
``{tier}-{fingerprint}.json``.  The fingerprint is a content hash of
the case *structure* (references, nests, env — not the originating
seed/index), so re-discovering the same minimal counterexample from a
different seed maps to the same file instead of piling up duplicates.

PR CI replays the whole corpus deterministically (fast — no random
generation), while the nightly fuzz job appends newly shrunk failures
here for triage.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.fuzz.generator import FuzzCase

__all__ = ["SCHEMA_VERSION", "fingerprint", "save_case", "load_case", "load_corpus"]

SCHEMA_VERSION = 1


def fingerprint(case: FuzzCase) -> str:
    """Stable 12-hex-digit content hash of the case structure."""
    payload = case.to_dict()
    payload.pop("seed", None)
    payload.pop("index", None)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


def save_case(case: FuzzCase, directory: str | Path, note: str = "") -> Path:
    """Write the case to ``directory`` under its fingerprint filename."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digest = fingerprint(case)
    path = directory / f"{case.tier}-{digest}.json"
    payload = {
        "schema": SCHEMA_VERSION,
        "tier": case.tier,
        "fingerprint": digest,
        "note": note,
        "origin": {"seed": case.seed, "index": case.index},
        "case": case.to_dict(),
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_case(path: str | Path) -> FuzzCase:
    """Read one corpus file back into a :class:`FuzzCase`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = payload.get("schema", 0)
    if schema > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: corpus schema {schema} is newer than supported "
            f"({SCHEMA_VERSION})"
        )
    return FuzzCase.from_dict(payload["case"])


def load_corpus(directory: str | Path) -> list[FuzzCase]:
    """All corpus cases in a directory, ordered by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_case(path) for path in sorted(directory.glob("*.json"))]
