"""Seeded whole-program edit storms for the incremental engine.

The differential fuzzer (:mod:`repro.fuzz.generator`) makes single
*queries*; this module makes whole *programs* and then edits them the
way a user in an editor would — tweak a loop bound, nudge a subscript,
insert a statement, delete one — so the incremental re-analysis path
(:mod:`repro.core.incremental`) can be hammered against cold full
re-analysis after every keystroke-sized change.

Everything is driven by a caller-supplied :class:`random.Random`, so a
storm is reproducible from its seed: the 500-edit property suite in
``tests/test_incremental.py``, the ``BENCH_incremental`` benchmark and
the CI ``incremental-smoke`` job all replay byte-identical programs.

Generated programs stay inside the mini-Fortran surface language:
constant step-1 bounds and affine subscripts with small coefficients,
so :func:`repro.lang.unparse.program_to_source` round-trips them and
the serve/watch layers can be exercised with real source text.
"""

from __future__ import annotations

import random

from repro.ir.affine import AffineExpr, const, var
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program, Statement

__all__ = ["storm_program", "mutate", "EDIT_KINDS"]

EDIT_KINDS = ("bound", "subscript", "insert", "delete")

_VARS = ("i", "j", "k")


def _random_nest(rng: random.Random, max_depth: int = 2) -> LoopNest:
    depth = rng.randint(1, max_depth)
    loops = []
    for level in range(depth):
        lower = rng.randint(0, 3)
        upper = lower + rng.randint(4, 12)
        loops.append(Loop(_VARS[level], const(lower), const(upper)))
    return LoopNest(loops)


def _random_subscript(rng: random.Random, nest: LoopNest) -> AffineExpr:
    choice = rng.random()
    if choice < 0.15:
        return const(rng.randint(0, 6))  # constant subscript
    expr = var(rng.choice(nest.variables)) * rng.choice((1, 1, 1, 2, -1))
    expr = expr + rng.randint(-2, 3)
    if choice > 0.85 and nest.depth > 1:
        expr = expr + var(rng.choice(nest.variables))
    return expr


def _random_ref(
    rng: random.Random, arrays: int, nest: LoopNest, kind: str
) -> ArrayRef:
    index = rng.randrange(arrays)
    # Rank is a fixed function of the array name: every reference to
    # ``aN`` anywhere in any storm agrees, so pairs never rank-mismatch.
    rank = 2 if index % 3 == 0 else 1
    return ArrayRef(
        f"a{index}",
        tuple(_random_subscript(rng, nest) for _ in range(rank)),
        kind,
    )


def _random_statement(rng: random.Random, arrays: int) -> Statement:
    nest = _random_nest(rng)
    write = _random_ref(rng, arrays, nest, AccessKind.WRITE)
    reads = tuple(
        _random_ref(rng, arrays, nest, AccessKind.READ)
        for _ in range(rng.randint(1, 2))
    )
    return Statement(nest=nest, write=write, reads=reads)


def storm_program(
    seed: int, statements: int = 12, arrays: int = 6, name: str = "storm"
) -> Program:
    """A reproducible random program for edit-storm campaigns.

    ``arrays`` controls pair density: fewer arrays means more sites
    collide on the same name and more testable pairs per statement.
    """
    rng = random.Random(seed)
    program = Program(name=name)
    for _ in range(statements):
        program.add(_random_statement(rng, arrays))
    return program


# -- mutations ----------------------------------------------------------------


def _mutate_bound(rng: random.Random, stmt: Statement) -> Statement:
    level = rng.randrange(stmt.nest.depth)
    loops = list(stmt.nest.loops)
    loop = loops[level]
    lower = loop.lower.as_constant()
    upper = loop.upper.as_constant()
    if rng.random() < 0.5:
        upper = max(lower + 1, upper + rng.choice((-3, -2, -1, 1, 2, 3)))
    else:
        lower = max(0, min(upper - 1, lower + rng.choice((-1, 1))))
    loops[level] = Loop(loop.var, const(lower), const(upper))
    return Statement(
        nest=LoopNest(loops),
        write=stmt.write,
        reads=stmt.reads,
        label=stmt.label,
    )


def _tweak_expr(rng: random.Random, expr: AffineExpr) -> AffineExpr:
    if rng.random() < 0.7 or not expr.variables():
        return expr + rng.choice((-2, -1, 1, 2))
    name = rng.choice(sorted(expr.variables()))
    return expr + var(name) * rng.choice((-1, 1))


def _mutate_subscript(rng: random.Random, stmt: Statement) -> Statement:
    refs = list(stmt.refs())
    target = rng.randrange(len(refs))
    ref = refs[target]
    dim = rng.randrange(ref.rank)
    subscripts = list(ref.subscripts)
    subscripts[dim] = _tweak_expr(rng, subscripts[dim])
    new_ref = ArrayRef(ref.array, tuple(subscripts), ref.kind)
    if stmt.write is not None and target == 0:
        return Statement(stmt.nest, new_ref, stmt.reads, stmt.label)
    reads = list(stmt.reads)
    reads[target - (1 if stmt.write is not None else 0)] = new_ref
    return Statement(stmt.nest, stmt.write, tuple(reads), stmt.label)


def mutate(
    program: Program, rng: random.Random, arrays: int = 6
) -> tuple[Program, str]:
    """One editor-sized change; returns the new program + a description.

    The input program is never modified (statements are immutable and
    the statement list is copied), so callers can keep every version of
    a storm alive for replay.
    """
    statements = list(program.statements)
    kind = rng.choice(EDIT_KINDS)
    if kind == "delete" and len(statements) <= 2:
        kind = "insert"
    if kind == "insert":
        index = rng.randint(0, len(statements))
        statements.insert(index, _random_statement(rng, arrays))
        description = f"insert statement at {index}"
    elif kind == "delete":
        index = rng.randrange(len(statements))
        del statements[index]
        description = f"delete statement {index}"
    elif kind == "bound":
        index = rng.randrange(len(statements))
        statements[index] = _mutate_bound(rng, statements[index])
        description = f"mutate bounds of statement {index}"
    else:
        index = rng.randrange(len(statements))
        statements[index] = _mutate_subscript(rng, statements[index])
        description = f"mutate subscript of statement {index}"
    return Program(program.name, statements, program.source_lines), description
