"""Greedy minimization of failing fuzz cases.

Given a case and a predicate ("does this still exhibit the bug?"),
:func:`shrink_case` repeatedly tries structure-reducing edits and keeps
any strictly-cheaper variant the predicate accepts.  Edits, roughly in
order of how much they remove:

* drop the innermost loop of a nest, substituting its variable with
  the loop's lower bound (stays affine, so the case remains valid);
* drop a subscript dimension from both references;
* eliminate a symbolic unknown by substituting its oracle value;
* pin a loop to a single iteration (``upper := lower``) or halve a
  constant iteration range;
* zero a subscript coefficient;
* shrink subscript and bound constants toward zero.

The loop is greedy with restarts: after any accepted edit the full edit
list is retried on the smaller case, until a fixpoint or ``max_evals``
predicate evaluations.  Cost is a deterministic structural measure
(:func:`case_cost`), so shrinking the same case with the same predicate
always yields the same minimum.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import replace

from repro.fuzz.generator import FuzzCase
from repro.ir.affine import AffineExpr
from repro.ir.arrays import ArrayRef
from repro.ir.loops import Loop, LoopNest

__all__ = ["case_cost", "shrink_case"]


def case_cost(case: FuzzCase) -> int:
    """Structural size of a case (lower is simpler).

    Loops dominate (each costs 4), then subscript dimensions (2 each),
    then the magnitudes of every coefficient and constant in subscripts
    and bounds, then symbolic unknowns (2 each).
    """
    cost = 4 * (case.nest1.depth + case.nest2.depth)
    cost += 2 * (case.ref1.rank + case.ref2.rank)
    for ref in (case.ref1, case.ref2):
        for sub in ref.subscripts:
            cost += abs(sub.constant) + sum(abs(c) for c in sub.terms.values())
    for nest in (case.nest1, case.nest2):
        for loop in nest:
            for bound in (loop.lower, loop.upper):
                cost += abs(bound.constant)
                cost += sum(abs(c) for c in bound.terms.values())
    cost += 2 * len(case.env)
    return cost


def shrink_case(
    case: FuzzCase,
    predicate: Callable[[FuzzCase], bool],
    max_evals: int = 400,
) -> FuzzCase:
    """The smallest variant of ``case`` still accepted by ``predicate``.

    Greedy descent: try candidates in decreasing-aggressiveness order,
    keep the first strictly-cheaper one that still fails, restart.  The
    predicate is never called on the original case (assumed failing)
    and at most ``max_evals`` times in total; a predicate that raises
    counts as "no longer fails" so shrinking can't crash the harness.
    """
    best = case
    best_cost = case_cost(case)
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _candidates(best):
            if evals >= max_evals:
                break
            candidate_cost = case_cost(candidate)
            if candidate_cost >= best_cost:
                continue
            evals += 1
            try:
                still_fails = predicate(candidate)
            except Exception:
                still_fails = False
            if still_fails:
                best, best_cost = candidate, candidate_cost
                improved = True
                break
    return best


# -- edit enumeration -------------------------------------------------------


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """All single-edit variants, most aggressive reductions first."""
    yield from _drop_innermost_loops(case)
    yield from _drop_dimensions(case)
    yield from _drop_symbols(case)
    yield from _pin_loops(case)
    yield from _zero_coefficients(case)
    yield from _shrink_constants(case)


def _subst_ref(ref: ArrayRef, name: str, value: AffineExpr) -> ArrayRef:
    return ArrayRef(
        ref.array,
        tuple(sub.substitute(name, value) for sub in ref.subscripts),
        ref.kind,
    )


def _subst_nest(nest: LoopNest, name: str, value: AffineExpr) -> LoopNest:
    return LoopNest(
        [
            Loop(
                loop.var,
                loop.lower.substitute(name, value),
                loop.upper.substitute(name, value),
            )
            for loop in nest
        ]
    )


def _prune_env(case: FuzzCase) -> FuzzCase:
    """Drop env entries for symbols the case no longer mentions."""
    used = (
        case.ref1.variables()
        | case.ref2.variables()
        | case.nest1.symbols()
        | case.nest2.symbols()
    )
    env = {name: value for name, value in case.env.items() if name in used}
    if env != case.env:
        return replace(case, env=env)
    return case


def _drop_innermost_loops(case: FuzzCase) -> Iterator[FuzzCase]:
    """Remove a nest's innermost loop, pinning its variable to the
    lower bound.  When both nests end in the identical loop, dropping
    it from both sides at once preserves the shared-prefix structure.
    """
    both_droppable = (
        case.nest1.depth
        and case.nest2.depth
        and case.nest1.loops[-1] == case.nest2.loops[-1]
    )
    if both_droppable:
        loop = case.nest1.loops[-1]
        yield _prune_env(
            replace(
                case,
                ref1=_subst_ref(case.ref1, loop.var, loop.lower),
                nest1=LoopNest(case.nest1.loops[:-1]),
                ref2=_subst_ref(case.ref2, loop.var, loop.lower),
                nest2=LoopNest(case.nest2.loops[:-1]),
            )
        )
    if case.nest1.depth:
        loop = case.nest1.loops[-1]
        yield _prune_env(
            replace(
                case,
                ref1=_subst_ref(case.ref1, loop.var, loop.lower),
                nest1=LoopNest(case.nest1.loops[:-1]),
            )
        )
    if case.nest2.depth:
        loop = case.nest2.loops[-1]
        yield _prune_env(
            replace(
                case,
                ref2=_subst_ref(case.ref2, loop.var, loop.lower),
                nest2=LoopNest(case.nest2.loops[:-1]),
            )
        )


def _drop_dimensions(case: FuzzCase) -> Iterator[FuzzCase]:
    if case.ref1.rank != case.ref2.rank or case.ref1.rank <= 1:
        return
    for dim in range(case.ref1.rank):
        sub1 = case.ref1.subscripts[:dim] + case.ref1.subscripts[dim + 1 :]
        sub2 = case.ref2.subscripts[:dim] + case.ref2.subscripts[dim + 1 :]
        yield _prune_env(
            replace(
                case,
                ref1=ArrayRef(case.ref1.array, sub1, case.ref1.kind),
                ref2=ArrayRef(case.ref2.array, sub2, case.ref2.kind),
            )
        )


def _drop_symbols(case: FuzzCase) -> Iterator[FuzzCase]:
    """Ground a symbolic unknown at its oracle value everywhere."""
    for name in sorted(case.env):
        value = AffineExpr(case.env[name])
        env = {k: v for k, v in case.env.items() if k != name}
        yield replace(
            case,
            ref1=_subst_ref(case.ref1, name, value),
            nest1=_subst_nest(case.nest1, name, value),
            ref2=_subst_ref(case.ref2, name, value),
            nest2=_subst_nest(case.nest2, name, value),
            env=env,
        )


def _nests_with_loop(
    case: FuzzCase, which: int, position: int, new_loop: Loop
) -> tuple[LoopNest, LoopNest]:
    """Replace one loop; mirror the edit when the other nest shares it."""
    nests = [list(case.nest1.loops), list(case.nest2.loops)]
    old = nests[which][position]
    nests[which][position] = new_loop
    other = 1 - which
    if position < len(nests[other]) and nests[other][position] == old:
        nests[other][position] = new_loop
    return LoopNest(nests[0]), LoopNest(nests[1])


def _pin_loops(case: FuzzCase) -> Iterator[FuzzCase]:
    for which, nest in enumerate((case.nest1, case.nest2)):
        for position, loop in enumerate(nest):
            if loop.upper == loop.lower:
                continue
            # Pin to a single iteration.
            nest1, nest2 = _nests_with_loop(
                case, which, position, Loop(loop.var, loop.lower, loop.lower)
            )
            yield replace(case, nest1=nest1, nest2=nest2)
            # Halve a constant iteration range.
            if loop.lower.is_constant and loop.upper.is_constant:
                gap = loop.upper.constant - loop.lower.constant
                if gap > 1:
                    new_upper = AffineExpr(loop.lower.constant + gap // 2)
                    nest1, nest2 = _nests_with_loop(
                        case, which, position, Loop(loop.var, loop.lower, new_upper)
                    )
                    yield replace(case, nest1=nest1, nest2=nest2)


def _zero_coefficients(case: FuzzCase) -> Iterator[FuzzCase]:
    for which, ref in enumerate((case.ref1, case.ref2)):
        for dim, sub in enumerate(ref.subscripts):
            for name in sorted(sub.terms):
                terms = {k: v for k, v in sub.terms.items() if k != name}
                new_sub = AffineExpr(sub.constant, terms)
                subscripts = (
                    ref.subscripts[:dim] + (new_sub,) + ref.subscripts[dim + 1 :]
                )
                new_ref = ArrayRef(ref.array, subscripts, ref.kind)
                field = "ref1" if which == 0 else "ref2"
                yield _prune_env(replace(case, **{field: new_ref}))


def _toward_zero(value: int) -> int:
    return value // 2 if value > 0 else -((-value) // 2)


def _shrink_constants(case: FuzzCase) -> Iterator[FuzzCase]:
    # Subscript constants.
    for which, ref in enumerate((case.ref1, case.ref2)):
        for dim, sub in enumerate(ref.subscripts):
            if sub.constant == 0:
                continue
            new_sub = AffineExpr(_toward_zero(sub.constant), dict(sub.terms))
            subscripts = (
                ref.subscripts[:dim] + (new_sub,) + ref.subscripts[dim + 1 :]
            )
            new_ref = ArrayRef(ref.array, subscripts, ref.kind)
            field = "ref1" if which == 0 else "ref2"
            yield replace(case, **{field: new_ref})
    # Loop-bound constants (shift both ends toward zero together so the
    # trip count — and often the failure — is preserved).
    for which, nest in enumerate((case.nest1, case.nest2)):
        for position, loop in enumerate(nest):
            for lower_c, upper_c in _bound_shifts(loop):
                new_loop = Loop(
                    loop.var,
                    AffineExpr(lower_c, dict(loop.lower.terms)),
                    AffineExpr(upper_c, dict(loop.upper.terms)),
                )
                nest1, nest2 = _nests_with_loop(case, which, position, new_loop)
                yield replace(case, nest1=nest1, nest2=nest2)


def _bound_shifts(loop: Loop) -> Iterator[tuple[int, int]]:
    lo, hi = loop.lower.constant, loop.upper.constant
    if lo != 0 and _toward_zero(lo) != lo:
        shift = _toward_zero(lo) - lo
        yield lo + shift, hi + shift
    if hi != 0 and _toward_zero(hi) != hi:
        yield lo, _toward_zero(hi)
    if lo != 0:
        yield 0, hi - lo
