"""Differential fuzzing for the exact dependence analyzer.

The paper's central claim is *exactness*: every test in the cascade is
exact on the inputs it accepts.  This package stress-tests that claim
systematically instead of relying on hand-picked unit cases:

* :mod:`repro.fuzz.generator` — a seeded, reproducible generator of
  random-but-valid dependence problems at several difficulty tiers
  (constant bounds, coupled subscripts, triangular nests, symbolic
  unknowns, degenerate/empty systems);
* :mod:`repro.fuzz.harness` — the differential harness that
  cross-checks the cascade against the enumeration oracle and the
  inexact baselines, plus metamorphic invariants (memo hit must equal
  recompute, sharded engine must equal serial, unused-variable
  elimination and reference swapping must preserve verdicts);
* :mod:`repro.fuzz.shrink` — greedy minimization of any failing case
  (drop loops/dimensions, shrink coefficients and bounds);
* :mod:`repro.fuzz.corpus` — committed regression corpus I/O with
  stable fingerprint filenames (``tests/corpus/``);
* :mod:`repro.fuzz.runner` — the ``repro fuzz`` CLI entry point.
"""

from repro.fuzz.corpus import fingerprint, load_corpus, save_case
from repro.fuzz.generator import TIERS, FuzzCase, generate_case, generate_cases
from repro.fuzz.harness import (
    CaseOutcome,
    Discrepancy,
    FuzzConfig,
    FuzzReport,
    check_case,
    run_fuzz,
)
from repro.fuzz.shrink import case_cost, shrink_case

__all__ = [
    "TIERS",
    "FuzzCase",
    "generate_case",
    "generate_cases",
    "CaseOutcome",
    "Discrepancy",
    "FuzzConfig",
    "FuzzReport",
    "check_case",
    "run_fuzz",
    "case_cost",
    "shrink_case",
    "fingerprint",
    "load_corpus",
    "save_case",
]
