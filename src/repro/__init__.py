"""repro — Efficient and Exact Data Dependence Analysis.

A faithful, from-scratch reproduction of Maydan, Hennessy & Lam,
"Efficient and Exact Data Dependence Analysis" (PLDI 1991): the
cascaded exact dependence tests (Extended GCD, SVPC, Acyclic, Loop
Residue, Fourier-Motzkin), memoization, exact direction/distance
vectors with pruning, and symbolic-term support — plus the substrates
needed to run it end to end (a loop-nest IR, a mini-Fortran frontend,
prepass optimizations, inexact baselines, and a synthetic
PERFECT-Club-shaped workload with the experiment harness that
regenerates every table in the paper).

Quickstart::

    from repro import DependenceAnalyzer, builder as B

    nest = B.nest(("i", 1, 10))
    analyzer = DependenceAnalyzer()
    write = B.ref("a", [B.v("i") + 1], write=True)
    read = B.ref("a", [B.v("i")])
    result = analyzer.analyze(write, nest, read, nest)
    assert result.dependent
    dirs = analyzer.directions(write, nest, read, nest)
    assert ("<",) in dirs.vectors
"""

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer, MemoTable
from repro.core.result import DependenceResult, DirectionResult
from repro.core.stats import AnalyzerStats
from repro.ir import builder
from repro.ir.affine import AffineExpr, const, var
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program, Statement, reference_pairs
from repro.system.depsystem import Direction, build_problem

__version__ = "1.0.0"

__all__ = [
    "DependenceAnalyzer",
    "DependenceResult",
    "DirectionResult",
    "AnalyzerStats",
    "Memoizer",
    "MemoTable",
    "AffineExpr",
    "var",
    "const",
    "ArrayRef",
    "AccessKind",
    "Loop",
    "LoopNest",
    "Program",
    "Statement",
    "reference_pairs",
    "Direction",
    "build_problem",
    "builder",
    "__version__",
]
