"""repro — Efficient and Exact Data Dependence Analysis.

A faithful, from-scratch reproduction of Maydan, Hennessy & Lam,
"Efficient and Exact Data Dependence Analysis" (PLDI 1991): the
cascaded exact dependence tests (Extended GCD, SVPC, Acyclic, Loop
Residue, Fourier-Motzkin), memoization, exact direction/distance
vectors with pruning, and symbolic-term support — plus the substrates
needed to run it end to end (a loop-nest IR, a mini-Fortran frontend,
prepass optimizations, inexact baselines, and a synthetic
PERFECT-Club-shaped workload with the experiment harness that
regenerates every table in the paper).

Quickstart (the stable facade)::

    from repro import AnalysisConfig, AnalysisSession, builder as B

    nest = B.nest(("i", 1, 10))
    session = AnalysisSession(AnalysisConfig())
    write = B.ref("a", [B.v("i") + 1], write=True)
    read = B.ref("a", [B.v("i")])
    report = session.analyze(write, nest, read, nest, want_directions=True)
    assert report.dependent
    assert ("<",) in report.directions
"""

from repro.api import (
    AnalysisConfig,
    AnalysisSession,
    DependenceReport,
    ExplainResult,
    ProgramReport,
)
from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer, MemoTable
from repro.core.result import DependenceResult, DirectionResult
from repro.core.stats import AnalyzerStats
from repro.ir import builder
from repro.ir.affine import AffineExpr, const, var
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program, Statement, reference_pairs
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import CollectingSink, NullSink, StreamingSink, TraceSink
from repro.system.depsystem import Direction, build_problem

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "AnalysisSession",
    "DependenceReport",
    "ProgramReport",
    "ExplainResult",
    "MetricsRegistry",
    "TraceSink",
    "NullSink",
    "CollectingSink",
    "StreamingSink",
    "DependenceAnalyzer",
    "DependenceResult",
    "DirectionResult",
    "AnalyzerStats",
    "Memoizer",
    "MemoTable",
    "AffineExpr",
    "var",
    "const",
    "ArrayRef",
    "AccessKind",
    "Loop",
    "LoopNest",
    "Program",
    "Statement",
    "reference_pairs",
    "Direction",
    "build_problem",
    "builder",
    "__version__",
]
