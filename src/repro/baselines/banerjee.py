"""Banerjee's bounds (extreme-value) test — alg. 4.3.1 flavor.

The classic inexact test: for each array dimension, bound the range of
``h = f(i) - f'(i')`` over the loop region; if ``0`` falls outside
``[min h, max h]`` the dimension — and hence the pair — is independent.
Like all traditional tests it is one-sided: a passing dimension only
means "maybe dependent".

Dimensions are handled independently (no coupling), bounds are relaxed
to constant ranges by interval arithmetic when trapezoidal, and
anything symbolic widens to an unbounded range — all standard sources
of imprecision the paper's exact cascade removes.

Wolfe's direction-vector extension (his alg. 2.5.2) restricts the pair
``(i_k, i'_k)`` of a common loop by the direction ``psi_k``; we compute
the constrained extreme values exactly by enumerating the vertices of
the (at most pentagonal) 2-D region — equivalent to Wolfe's closed-form
positive/negative-part formulas but harder to get wrong.
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest
from repro.system.depsystem import Direction

__all__ = ["banerjee_independent", "constant_ranges", "affine_extremes"]

_UNBOUNDED = (float("-inf"), float("inf"))


def affine_extremes(
    expr: AffineExpr, loops: list
) -> tuple[float, float]:
    """Exact real extremes of an affine expression over a trapezoid.

    Banerjee's alg. 4.3.1 propagation: walk the loops innermost first;
    substituting the maximizing (resp. minimizing) bound of each
    variable — itself affine in outer variables — keeps the expression
    affine, so the extreme over the whole trapezoidal region falls out
    after the outermost substitution.  Symbols left at the end make the
    range unbounded unless their coefficients cancelled.
    """
    lo_expr = expr
    hi_expr = expr
    for loop in reversed(loops):
        a_lo = lo_expr.coeff(loop.var)
        if a_lo:
            lo_expr = lo_expr.substitute(
                loop.var, loop.lower if a_lo > 0 else loop.upper
            )
        a_hi = hi_expr.coeff(loop.var)
        if a_hi:
            hi_expr = hi_expr.substitute(
                loop.var, loop.upper if a_hi > 0 else loop.lower
            )
    lo: float = float("-inf") if lo_expr.variables() else lo_expr.constant
    hi: float = float("inf") if hi_expr.variables() else hi_expr.constant
    return lo, hi


def constant_ranges(nest: LoopNest) -> dict[str, tuple[float, float]]:
    """Constant range of each loop variable via interval arithmetic.

    Trapezoidal bounds are widened: a bound referencing an outer loop
    variable takes that variable's extreme values; anything symbolic
    widens to infinity.
    """
    ranges: dict[str, tuple[float, float]] = {}
    for loop in nest:
        lo = _eval_min(loop.lower, ranges)
        hi = _eval_max(loop.upper, ranges)
        ranges[loop.var] = (lo, hi)
    return ranges


def _eval_min(expr: AffineExpr, ranges: dict[str, tuple[float, float]]) -> float:
    total: float = expr.constant
    for name, coeff in expr.terms.items():
        lo, hi = ranges.get(name, _UNBOUNDED)
        total += coeff * (lo if coeff > 0 else hi)
    return total


def _eval_max(expr: AffineExpr, ranges: dict[str, tuple[float, float]]) -> float:
    total: float = expr.constant
    for name, coeff in expr.terms.items():
        lo, hi = ranges.get(name, _UNBOUNDED)
        total += coeff * (hi if coeff > 0 else lo)
    return total


def _pair_extremes(
    a: int,
    b: int,
    lo: float,
    hi: float,
    lo2: float,
    hi2: float,
    psi: str,
) -> tuple[float, float]:
    """Extreme values of ``a*i - b*i'`` with ``i in [lo,hi]``,
    ``i' in [lo2,hi2]`` and ``i psi i'`` for a *common* loop level.

    Evaluated at the vertices of the constraint polygon; infinite box
    sides fall back to sign reasoning.
    """
    if any(v in (float("inf"), float("-inf")) for v in (lo, hi, lo2, hi2)):
        # Unbounded loop (symbolic bound): the term range is unbounded
        # unless the coefficients cancel along the constrained diagonal.
        if a == 0 and b == 0:
            return (0.0, 0.0)
        if a == b:
            # a*(i - i') with the difference constrained by psi.
            if psi == Direction.EQ:
                return (0.0, 0.0)
            if psi == Direction.LT:  # i - i' <= -1
                return (float("-inf"), -a) if a > 0 else (-a, float("inf"))
            if psi == Direction.GT:  # i - i' >= 1
                return (a, float("inf")) if a > 0 else (float("-inf"), a)
        return _UNBOUNDED

    if psi == Direction.ANY:
        candidates = [(i, j) for i in (lo, hi) for j in (lo2, hi2)]
    elif psi == Direction.EQ:
        left = max(lo, lo2)
        right = min(hi, hi2)
        if left > right:
            return (float("inf"), float("-inf"))  # empty region
        candidates = [(left, left), (right, right)]
    elif psi == Direction.LT:
        # i <= i' - 1 within the box.
        if lo > hi2 - 1:
            return (float("inf"), float("-inf"))
        candidates = []
        for i in (lo, min(hi, hi2 - 1)):
            for j in (max(lo2, i + 1), hi2):
                if lo <= i <= hi and lo2 <= j <= hi2 and i <= j - 1:
                    candidates.append((i, j))
    elif psi == Direction.GT:
        mn, mx = _pair_extremes(b, a, lo2, hi2, lo, hi, Direction.LT)
        # a*i - b*i' with i > i'  ==  -(b*i' - a*i) with i' < i.
        return (-mx, -mn)
    else:
        raise ValueError(f"bad direction {psi!r}")

    values = [a * i - b * j for i, j in candidates]
    if not values:
        return (float("inf"), float("-inf"))
    return (min(values), max(values))


def _trapezoidal_independent(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
) -> bool:
    """Per-dimension trapezoidal bounds test (no direction constraints).

    Tests ``h = f(i) - f'(i')`` over the joint region; the two
    iteration vectors use disjoint variables (nest2's are renamed), so
    one propagation over both loop lists is exact over the reals.
    Shared loop-invariant symbols cancel where their coefficients
    match; surviving symbols widen the range to infinity.
    """
    prime = {name: name + "'" for name in nest2.variables}
    loops = list(nest1) + [loop.rename(prime) for loop in nest2]
    for sub1, sub2 in zip(ref1.subscripts, ref2.subscripts):
        h = sub1 - sub2.rename(prime)
        lo, hi = affine_extremes(h, loops)
        if not (lo <= 0 <= hi):
            return True
    return False


def banerjee_independent(
    ref1: ArrayRef,
    nest1: LoopNest,
    ref2: ArrayRef,
    nest2: LoopNest,
    direction: tuple[str, ...] | None = None,
) -> bool:
    """True iff the bounds test *proves* independence (maybe-dependent
    otherwise).  ``direction`` optionally constrains the common loops
    per Wolfe's extension; None means all-``*``.
    """
    if ref1.array != ref2.array or ref1.rank != ref2.rank:
        return True
    n_common = nest1.common_prefix_depth(nest2)
    if direction is None:
        direction = (Direction.ANY,) * n_common
    if len(direction) != n_common:
        raise ValueError("direction arity != common loop depth")

    if all(psi == Direction.ANY for psi in direction):
        # Unconstrained directions: the two iteration vectors are
        # independent unknowns, so the exact trapezoidal propagation
        # (alg. 4.3.1) applies dimension by dimension.
        return _trapezoidal_independent(ref1, nest1, ref2, nest2)

    ranges1 = constant_ranges(nest1)
    ranges2 = constant_ranges(nest2)
    common_vars = nest1.variables[:n_common]

    for sub1, sub2 in zip(ref1.subscripts, ref2.subscripts):
        lo_total: float = sub1.constant - sub2.constant
        hi_total: float = lo_total
        names = set(sub1.variables() | sub2.variables())
        empty_region = False
        for level, var in enumerate(common_vars):
            a = sub1.coeff(var)
            b = sub2.coeff(var)
            names.discard(var)
            lo, hi = ranges1[var]
            lo2, hi2 = ranges2[var]
            mn, mx = _pair_extremes(a, b, lo, hi, lo2, hi2, direction[level])
            if mn > mx:
                empty_region = True
                break
            lo_total += mn
            hi_total += mx
        if empty_region:
            return True
        for name in names:
            in1 = name in ranges1 and name not in common_vars
            in2 = name in ranges2 and name not in common_vars
            if in1:
                a = sub1.coeff(name)
                if a:
                    lo, hi = ranges1[name]
                    lo_total += min(a * lo, a * hi)
                    hi_total += max(a * lo, a * hi)
            if in2:
                b = sub2.coeff(name)
                if b:
                    lo, hi = ranges2[name]
                    lo_total += min(-b * lo, -b * hi)
                    hi_total += max(-b * lo, -b * hi)
            if not in1 and not in2:
                delta = sub1.coeff(name) - sub2.coeff(name)
                if delta:
                    return False  # unbounded symbol: cannot disprove
        if not (lo_total <= 0 <= hi_total):
            return True
    return False
