"""The simple (single-equation) GCD test — Banerjee alg. 5.4.1.

The traditional inexact scheme tests each array dimension separately:
``a1*i1 + ... - a1'*i1' - ... = c' - c`` has an integer solution iff
the gcd of the coefficients divides the right-hand side.  Bounds are
ignored entirely and dimensions are never combined, so coupled
subscripts (``a[i][j]`` vs ``a[j][i]``) and bounds-limited shifts are
missed: the test can only ever prove independence, never dependence.

Used by the paper's section 7 comparison.
"""

from __future__ import annotations

from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest
from repro.linalg.gcdext import divides, gcd_all

__all__ = ["simple_gcd_independent"]


def simple_gcd_independent(
    ref1: ArrayRef, nest1: LoopNest, ref2: ArrayRef, nest2: LoopNest
) -> bool:
    """True iff the per-dimension GCD test *proves* independence."""
    if ref1.array != ref2.array or ref1.rank != ref2.rank:
        return True
    vars1 = set(nest1.variables)
    vars2 = set(nest2.variables)
    for sub1, sub2 in zip(ref1.subscripts, ref2.subscripts):
        coeffs: list[int] = []
        # Loop variables of each nest are independent unknowns; shared
        # symbols contribute their coefficient *difference*.
        names = sub1.variables() | sub2.variables()
        for name in names:
            in1 = name in vars1
            in2 = name in vars2
            if in1:
                coeffs.append(sub1.coeff(name))
            if in2:
                coeffs.append(-sub2.coeff(name))
            if not in1 and not in2:
                delta = sub1.coeff(name) - sub2.coeff(name)
                if delta:
                    coeffs.append(delta)
        rhs = sub2.constant - sub1.constant
        g = gcd_all(coeffs)
        if not divides(g, rhs):
            return True
    return False
