"""The traditional inexact pipeline used in the paper's section 7.

Plain queries run the simple GCD test, then Banerjee's bounds test;
direction vectors use hierarchical refinement where each node is tested
with the simple GCD test followed by Wolfe's direction-constrained
bounds test (his alg. 2.5.2).  Unused loop indices are eliminated ahead
of refinement, exactly as the paper did for its comparison, so e.g.
``a[i]`` vs ``a[i-1]`` under an unused outer loop reports ``(* <)``
rather than three vectors.

Both tests only ever *prove* independence; any surviving vector is
reported dependent, which is where the inexact pipeline over-reports
(the paper measured 22% extra direction vectors and 16% missed
independent pairs on the PERFECT Club).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.banerjee import banerjee_independent
from repro.baselines.simple_gcd import simple_gcd_independent
from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest
from repro.system.depsystem import Direction, build_problem

__all__ = ["BaselineAnalyzer", "BaselineDirectionResult"]


@dataclass
class BaselineDirectionResult:
    """Direction vectors the inexact pipeline could not refute."""

    vectors: frozenset[tuple[str, ...]]
    tests_performed: int

    @property
    def dependent(self) -> bool:
        return bool(self.vectors)

    def count_elementary(self) -> int:
        total = 0
        for vector in self.vectors:
            stars = sum(1 for c in vector if c == Direction.ANY)
            total += 3**stars
        return total


class BaselineAnalyzer:
    """Simple GCD + Banerjee bounds, with Wolfe direction vectors."""

    def __init__(self, eliminate_unused: bool = True):
        self.eliminate_unused = eliminate_unused
        self.queries = 0
        self.independent_found = 0

    def analyze(
        self,
        ref1: ArrayRef,
        nest1: LoopNest,
        ref2: ArrayRef,
        nest2: LoopNest,
    ) -> bool:
        """True = (assumed) dependent, False = proven independent."""
        self.queries += 1
        if simple_gcd_independent(ref1, nest1, ref2, nest2):
            self.independent_found += 1
            return False
        if banerjee_independent(ref1, nest1, ref2, nest2):
            self.independent_found += 1
            return False
        return True

    def directions(
        self,
        ref1: ArrayRef,
        nest1: LoopNest,
        ref2: ArrayRef,
        nest2: LoopNest,
    ) -> BaselineDirectionResult:
        """Hierarchically refined direction vectors (Wolfe 2.5.2)."""
        n_common = nest1.common_prefix_depth(nest2)
        refinable = list(range(n_common))
        if self.eliminate_unused:
            used = self._used_common_levels(ref1, nest1, ref2, nest2)
            refinable = [lvl for lvl in refinable if lvl in used]

        tests = 0
        leaves: set[tuple[str, ...]] = set()

        if simple_gcd_independent(ref1, nest1, ref2, nest2):
            return BaselineDirectionResult(frozenset(), 1)

        def recurse(vector: list[str], next_index: int) -> None:
            nonlocal tests
            tests += 1
            if banerjee_independent(
                ref1, nest1, ref2, nest2, tuple(vector)
            ):
                return
            if next_index >= len(refinable):
                leaves.add(tuple(vector))
                return
            level = refinable[next_index]
            for direction in Direction.ALL:
                vector[level] = direction
                recurse(vector, next_index + 1)
            vector[level] = Direction.ANY

        recurse([Direction.ANY] * n_common, 0)
        return BaselineDirectionResult(frozenset(leaves), tests)

    @staticmethod
    def _used_common_levels(
        ref1: ArrayRef,
        nest1: LoopNest,
        ref2: ArrayRef,
        nest2: LoopNest,
    ) -> set[int]:
        """Common levels whose variables matter to the dependence."""
        problem = build_problem(ref1, nest1, ref2, nest2)
        used = problem.used_variable_closure()
        return {
            level
            for level in range(problem.n_common)
            if problem.var1(level) in used or problem.var2(level) in used
        }
