"""Traditional inexact dependence tests (the paper's section 7 comparison)."""

from repro.baselines.banerjee import (
    affine_extremes,
    banerjee_independent,
    constant_ranges,
)
from repro.baselines.simple_gcd import simple_gcd_independent
from repro.baselines.wolfe_directions import (
    BaselineAnalyzer,
    BaselineDirectionResult,
)

__all__ = [
    "simple_gcd_independent",
    "banerjee_independent",
    "constant_ranges",
    "affine_extremes",
    "BaselineAnalyzer",
    "BaselineDirectionResult",
]
