"""Exact integer arithmetic helpers.

Everything in the dependence analyzer runs on exact integer (or, inside
Fourier-Motzkin, exact rational) arithmetic.  This module collects the
number-theoretic primitives shared by the tests: gcds, extended gcds,
and exact ceiling/floor division.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = [
    "gcd",
    "gcd_all",
    "extended_gcd",
    "floor_div",
    "ceil_div",
    "divides",
    "lcm",
]


def gcd(a: int, b: int) -> int:
    """Greatest common divisor; ``gcd(0, 0) == 0`` by convention."""
    return math.gcd(a, b)


def gcd_all(values: Iterable[int]) -> int:
    """Gcd of an arbitrary collection of integers (0 for an empty one)."""
    result = 0
    for value in values:
        result = math.gcd(result, value)
        if result == 1:
            break
    return result


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.

    ``g`` is always non-negative, matching :func:`math.gcd`.
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def floor_div(a: int, b: int) -> int:
    """Floor of ``a / b`` for any non-zero ``b`` (sign-correct)."""
    if b == 0:
        raise ZeroDivisionError("floor_div by zero")
    if b < 0:
        a, b = -a, -b
    return a // b


def ceil_div(a: int, b: int) -> int:
    """Ceiling of ``a / b`` for any non-zero ``b`` (sign-correct)."""
    if b == 0:
        raise ZeroDivisionError("ceil_div by zero")
    if b < 0:
        a, b = -a, -b
    return -((-a) // b)


def divides(d: int, n: int) -> bool:
    """True iff ``d`` divides ``n``; ``0`` divides only ``0``."""
    if d == 0:
        return n == 0
    return n % d == 0


def lcm(a: int, b: int) -> int:
    """Least common multiple; ``lcm(0, x) == 0``."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // math.gcd(a, b)
