"""A small exact integer matrix.

Dependence systems are tiny (a handful of loop variables and array
dimensions), so a dense list-of-lists representation with arbitrary
precision Python ints is both simple and fast enough.  We deliberately
do not use numpy here: the echelon factorization needs exact integer
row operations, and silent overflow or float coercion would be a
correctness bug.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["IntMatrix"]


class IntMatrix:
    """A dense matrix of Python ints supporting exact row operations."""

    __slots__ = ("rows", "n_rows", "n_cols")

    def __init__(self, rows: Iterable[Sequence[int]]):
        self.rows: list[list[int]] = [list(map(int, row)) for row in rows]
        self.n_rows = len(self.rows)
        self.n_cols = len(self.rows[0]) if self.rows else 0
        for row in self.rows:
            if len(row) != self.n_cols:
                raise ValueError("ragged rows in IntMatrix")

    # -- constructors -------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "IntMatrix":
        return cls([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @classmethod
    def zeros(cls, n_rows: int, n_cols: int) -> "IntMatrix":
        return cls([[0] * n_cols for _ in range(n_rows)])

    def copy(self) -> "IntMatrix":
        return IntMatrix(self.rows)

    # -- element access ------------------------------------------------

    def __getitem__(self, index: tuple[int, int]) -> int:
        i, j = index
        return self.rows[i][j]

    def __setitem__(self, index: tuple[int, int], value: int) -> None:
        i, j = index
        self.rows[i][j] = int(value)

    def row(self, i: int) -> list[int]:
        return list(self.rows[i])

    def col(self, j: int) -> list[int]:
        return [row[j] for row in self.rows]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    # -- row operations (exact, in place) -------------------------------

    def swap_rows(self, i: int, j: int) -> None:
        self.rows[i], self.rows[j] = self.rows[j], self.rows[i]

    def negate_row(self, i: int) -> None:
        self.rows[i] = [-x for x in self.rows[i]]

    def add_multiple_of_row(self, dst: int, src: int, factor: int) -> None:
        """``row[dst] += factor * row[src]`` — a unimodular operation."""
        if factor == 0:
            return
        src_row = self.rows[src]
        dst_row = self.rows[dst]
        self.rows[dst] = [d + factor * s for d, s in zip(dst_row, src_row)]

    # -- arithmetic ------------------------------------------------------

    def matmul(self, other: "IntMatrix") -> "IntMatrix":
        if self.n_cols != other.n_rows:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}"
            )
        other_cols = [other.col(j) for j in range(other.n_cols)]
        return IntMatrix(
            [
                [sum(a * b for a, b in zip(row, col)) for col in other_cols]
                for row in self.rows
            ]
        )

    def __matmul__(self, other: "IntMatrix") -> "IntMatrix":
        return self.matmul(other)

    def vecmul(self, vec: Sequence[int]) -> list[int]:
        """Row-vector times matrix: ``vec @ self`` (vec has n_rows entries)."""
        if len(vec) != self.n_rows:
            raise ValueError("vector length mismatch")
        return [
            sum(v * row[j] for v, row in zip(vec, self.rows))
            for j in range(self.n_cols)
        ]

    def transpose(self) -> "IntMatrix":
        return IntMatrix(
            [[self.rows[i][j] for i in range(self.n_rows)] for j in range(self.n_cols)]
        )

    # -- predicates -------------------------------------------------------

    def determinant(self) -> int:
        """Exact determinant via fraction-free (Bareiss) elimination."""
        if self.n_rows != self.n_cols:
            raise ValueError("determinant of a non-square matrix")
        n = self.n_rows
        if n == 0:
            return 1
        a = [row[:] for row in self.rows]
        sign = 1
        prev = 1
        for k in range(n - 1):
            if a[k][k] == 0:
                for i in range(k + 1, n):
                    if a[i][k] != 0:
                        a[k], a[i] = a[i], a[k]
                        sign = -sign
                        break
                else:
                    return 0
            for i in range(k + 1, n):
                for j in range(k + 1, n):
                    a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) // prev
                a[i][k] = 0
            prev = a[k][k]
        return sign * a[n - 1][n - 1]

    def is_unimodular(self) -> bool:
        """True iff square with determinant +1 or -1."""
        return self.n_rows == self.n_cols and abs(self.determinant()) == 1

    def is_echelon(self) -> bool:
        """True iff in row echelon form (leading columns strictly increase,
        zero rows at the bottom)."""
        last_lead = -1
        seen_zero_row = False
        for row in self.rows:
            lead = next((j for j, x in enumerate(row) if x != 0), None)
            if lead is None:
                seen_zero_row = True
                continue
            if seen_zero_row or lead <= last_lead:
                return False
            last_lead = lead
        return True

    # -- misc ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntMatrix):
            return NotImplemented
        return self.rows == other.rows

    def __hash__(self) -> int:
        return hash(tuple(tuple(row) for row in self.rows))

    def __repr__(self) -> str:
        body = ", ".join(repr(row) for row in self.rows)
        return f"IntMatrix([{body}])"
