"""Unimodular/echelon factorization — the heart of the Extended GCD test.

Banerjee's Extended GCD test (paper section 3.1) factors the subscript
equation matrix ``A`` (one row per variable, one column per equation) as

    U @ A == D

where ``U`` is a square *unimodular* integer matrix (determinant +/-1,
so its inverse is also integral) and ``D`` is an *echelon* matrix.  The
factorization is computed by integer Gaussian elimination: the only row
operations used (swap, negate, add an integer multiple of another row)
are unimodular, and applying the same operations to an identity matrix
accumulates ``U``.

Given the factorization, the linear Diophantine system ``x @ A == c``
has an integer solution iff ``t @ D == c`` does for integral ``t``
(with ``x = t @ U``), and the echelon shape of ``D`` makes the latter
solvable by simple forward substitution (see
:mod:`repro.system.transform`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linalg.matrix import IntMatrix

__all__ = ["EchelonFactorization", "echelon_factor"]


@dataclass(frozen=True)
class EchelonFactorization:
    """Result of ``echelon_factor``: ``u @ a == d`` with ``u`` unimodular.

    Attributes:
        u: the accumulated unimodular transform (n x n).
        d: the echelon form of ``a`` (n x m).
        rank: number of non-zero rows of ``d``.
        pivot_cols: for each non-zero row ``r`` of ``d``, the column of
            its leading entry; ``len(pivot_cols) == rank``.
    """

    u: IntMatrix
    d: IntMatrix
    rank: int
    pivot_cols: tuple[int, ...]


def echelon_factor(a: IntMatrix) -> EchelonFactorization:
    """Factor ``a`` as ``u @ a == d`` with ``u`` unimodular, ``d`` echelon.

    Leading entries of ``d`` are made positive (the paper requires
    ``d11 > 0``; we normalize every pivot).
    """
    d = a.copy()
    u = IntMatrix.identity(a.n_rows)
    n, m = d.shape

    pivot_row = 0
    pivot_cols: list[int] = []
    for col in range(m):
        if pivot_row >= n:
            break
        # Reduce all entries below pivot_row in this column to zero using
        # gcd-style remainder steps: repeatedly subtract multiples of the
        # row with the smaller non-zero entry from the others.
        while True:
            nonzero = [
                i for i in range(pivot_row, n) if d[i, col] != 0
            ]
            if not nonzero:
                break
            # Bring the row whose entry has the smallest magnitude to the top.
            best = min(nonzero, key=lambda i: abs(d[i, col]))
            if best != pivot_row:
                d.swap_rows(pivot_row, best)
                u.swap_rows(pivot_row, best)
            if len(nonzero) == 1:
                break
            head = d[pivot_row, col]
            for i in range(pivot_row + 1, n):
                entry = d[i, col]
                if entry != 0:
                    q = entry // head  # floor division keeps remainders small
                    d.add_multiple_of_row(i, pivot_row, -q)
                    u.add_multiple_of_row(i, pivot_row, -q)
        if d[pivot_row, col] != 0:
            if d[pivot_row, col] < 0:
                d.negate_row(pivot_row)
                u.negate_row(pivot_row)
            pivot_cols.append(col)
            pivot_row += 1

    return EchelonFactorization(
        u=u, d=d, rank=pivot_row, pivot_cols=tuple(pivot_cols)
    )
