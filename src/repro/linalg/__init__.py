"""Exact integer linear algebra used by the dependence tests."""

from repro.linalg.echelon import EchelonFactorization, echelon_factor
from repro.linalg.gcdext import (
    ceil_div,
    divides,
    extended_gcd,
    floor_div,
    gcd,
    gcd_all,
    lcm,
)
from repro.linalg.matrix import IntMatrix

__all__ = [
    "IntMatrix",
    "EchelonFactorization",
    "echelon_factor",
    "gcd",
    "gcd_all",
    "extended_gcd",
    "floor_div",
    "ceil_div",
    "divides",
    "lcm",
]
