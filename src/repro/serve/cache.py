"""The serving cache: thread-safe memo tier + persistent disk tier.

Tier 1 is the paper's in-process :class:`~repro.core.memo.Memoizer`,
upgraded for concurrent serving: every table is a
:class:`RecencyMemoTable`, which (a) guards probes/inserts/resizes with
one lock so executor threads can share it, and (b) stamps each key
with a logical clock tick on every touch, giving the disk tier an
exact least-recently-used order.

Tier 2 is an on-disk JSON store built on :mod:`repro.core.persist`'s
entry encoding.  Writes are **atomic** (temp file in the same
directory, then ``os.replace``), so a crash mid-save can never leave a
truncated store — and if one appears anyway (external truncation,
version skew), loading skips it with a warning and the server starts
cold; corruption costs warmth, never availability.  The store is
**versioned**: a ``cache_version``/``protocol_version`` stamp guards
against reading entries written under an incompatible schema, and the
memo keying flags (``improved``/``symmetry``) must match.  It is
**bounded**: before writing, entries are LRU-evicted until the encoded
payload fits ``max_bytes``.

:class:`SingleFlight` is the third caching layer, for work that hasn't
finished yet: identical queries that arrive while the first one is
still computing coalesce onto the same asyncio future and all receive
the one result.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import threading
import warnings
from pathlib import Path
from typing import Any, Awaitable, Callable

from repro.core.memo import Memoizer, MemoTable, paper_hash
from repro.core.persist import (
    atomic_write_text,
    decode_memo_key,
    decode_memo_value,
    dumps as _memo_dumps,
    encode_memo_key,
    encode_memo_value,
    load_memoizer_safe,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import PROTOCOL_VERSION

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "RecencyMemoTable",
    "ServeCache",
    "SingleFlight",
]

CACHE_SCHEMA_VERSION = 1

DEFAULT_MAX_BYTES = 64 * 1024 * 1024

# Fixed per-entry bookkeeping allowance when budgeting ``max_bytes``
# (JSON punctuation, the "used" stamp, list separators).
_ENTRY_OVERHEAD = 16


class RecencyMemoTable(MemoTable):
    """A memo table that is thread-safe and remembers per-key recency.

    All mutating paths (and ``lookup``, which both reads and counts)
    take the shared lock; ``used`` maps each present key to the logical
    clock tick of its last touch.  The clock is shared across the
    memoizer's tables so "least recently used" is global, not
    per-table.
    """

    def __init__(
        self,
        size: int = 4096,
        lock: threading.RLock | None = None,
        clock: list[int] | None = None,
    ):
        super().__init__(size=size)
        self._lock = lock if lock is not None else threading.RLock()
        # Single-cell mutable clock, shared between the two tables.
        self._clock = clock if clock is not None else [0]
        self.used: dict[tuple[int, ...], int] = {}

    def _tick(self) -> int:
        self._clock[0] += 1
        return self._clock[0]

    def lookup(self, key: tuple[int, ...]) -> tuple[bool, Any]:
        with self._lock:
            hit, value = super().lookup(key)
            if hit:
                self.used[key] = self._tick()
            return hit, value

    def insert(self, key: tuple[int, ...], value: Any) -> None:
        with self._lock:
            super().insert(key, value)
            self.used[key] = self._tick()

    def update(self, key: tuple[int, ...], value: Any) -> None:
        with self._lock:
            super().update(key, value)
            self.used.setdefault(key, self._tick())

    def restore(self, key: tuple[int, ...], value: Any, used: int) -> None:
        """Adopt a persisted entry, keeping its saved recency stamp."""
        with self._lock:
            super().update(key, value)
            self.used[key] = used
            if used > self._clock[0]:
                self._clock[0] = used

    def resize(self, new_size: int) -> None:
        with self._lock:
            super().resize(new_size)

    def drop(self, key: tuple[int, ...]) -> None:
        """Remove one entry (LRU eviction path)."""
        with self._lock:
            bucket = self._buckets[paper_hash(key, self.size)]
            for i, (stored_key, _) in enumerate(bucket):
                if stored_key == key:
                    del bucket[i]
                    self._count -= 1
                    self._exact.pop(key, None)
                    break
            self.used.pop(key, None)


class ServeCache:
    """Two-tier cache: shared thread-safe memoizer + bounded disk store.

    The memoizer is handed to every per-connection analysis session, so
    all connections share one warmth pool.  ``save()`` persists it
    atomically under the byte budget; construction loads any compatible
    existing store (skipping corrupt or version-mismatched files with a
    warning).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        improved: bool = True,
        symmetry: bool = False,
        registry: MetricsRegistry | None = None,
    ):
        self.path = Path(path) if path is not None else None
        self.max_bytes = max_bytes
        self.registry = registry if registry is not None else MetricsRegistry()
        lock = threading.RLock()
        clock: list[int] = [0]
        self.memoizer = Memoizer(
            no_bounds=RecencyMemoTable(lock=lock, clock=clock),
            with_bounds=RecencyMemoTable(lock=lock, clock=clock),
            improved=improved,
            symmetry=symmetry,
        )
        self._lock = lock
        self.loaded_entries = 0
        self.last_save_bytes = 0
        if self.path is not None:
            self._load()

    # -- disk tier ---------------------------------------------------------

    def _header(self) -> dict:
        return {
            "cache_version": CACHE_SCHEMA_VERSION,
            "protocol_version": PROTOCOL_VERSION,
            "improved": self.memoizer.improved,
            "symmetry": self.memoizer.symmetry,
        }

    def _load(self) -> None:
        assert self.path is not None
        if not self.path.exists():
            return
        try:
            blob = json.loads(self.path.read_text())
            if not isinstance(blob, dict):
                raise ValueError("store root must be an object")
            header = {
                key: blob.get(key) for key in self._header()
            }
            if header != self._header():
                warnings.warn(
                    f"ignoring serve cache {self.path}: schema/keying "
                    f"mismatch ({header} != {self._header()})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.registry.inc("serve.cache.version_skips")
                return
            count = 0
            for table_name in ("no_bounds", "with_bounds"):
                table: RecencyMemoTable = getattr(self.memoizer, table_name)
                for entry in blob["tables"][table_name]:
                    table.restore(
                        decode_memo_key(entry),
                        decode_memo_value(entry["value"]),
                        int(entry["used"]),
                    )
                    count += 1
            self.loaded_entries = count
        except (OSError, ValueError, KeyError, TypeError) as err:
            warnings.warn(
                f"skipping corrupt serve cache {self.path}: {err!r} "
                "(serving starts cold)",
                RuntimeWarning,
                stacklevel=2,
            )
            self.registry.inc("serve.cache.load_failures")

    def save(self) -> int:
        """Atomically persist the memo tables; returns bytes written.

        Entries are encoded individually, sorted by recency, and the
        least-recently-used are evicted (from the persisted image *and*
        the in-process tables) until the payload fits ``max_bytes``.
        No-op (returns 0) when the cache has no backing path.
        """
        if self.path is None:
            return 0
        with self._lock:
            encoded: list[tuple[int, str, dict, int]] = []
            for table_name in ("no_bounds", "with_bounds"):
                table: RecencyMemoTable = getattr(self.memoizer, table_name)
                for key, value in table.items():
                    entry = encode_memo_key(key)
                    entry["value"] = encode_memo_value(value)
                    entry["used"] = table.used.get(key, 0)
                    size = len(json.dumps(entry, separators=(",", ":")))
                    encoded.append((entry["used"], table_name, entry, size))
            encoded.sort(key=lambda item: item[0])

            budget = self.max_bytes - len(
                json.dumps(self._header(), separators=(",", ":"))
            )
            total = sum(size + _ENTRY_OVERHEAD for _, _, _, size in encoded)
            evicted = 0
            while encoded and total > budget:
                _, table_name, entry, size = encoded.pop(0)
                table = getattr(self.memoizer, table_name)
                table.drop(decode_memo_key(entry))
                total -= size + _ENTRY_OVERHEAD
                evicted += 1
            if evicted:
                self.registry.inc("serve.cache.evicted", evicted)

            payload = self._header()
            payload["tables"] = {
                "no_bounds": [
                    entry
                    for _, table_name, entry, _ in encoded
                    if table_name == "no_bounds"
                ],
                "with_bounds": [
                    entry
                    for _, table_name, entry, _ in encoded
                    if table_name == "with_bounds"
                ],
            }
            text = json.dumps(payload, separators=(",", ":"))

        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.last_save_bytes = len(text)
        self.registry.inc("serve.cache.saves")
        return len(text)

    # -- warmth sharing (cluster spill) ------------------------------------

    def spill(self, path: str | Path) -> int:
        """Atomically write the memo tables as a warm-start image.

        The cluster's warmth-sharing channel: each worker periodically
        spills its tables to a shared directory and absorbs its peers'
        images, so a hit on any node warms the fleet.  The image is the
        standard :mod:`repro.core.persist` format — which structurally
        cannot represent a degraded verdict (degraded answers are never
        memoized), so no degraded frame is ever gossiped.  Returns the
        number of entries written.
        """
        with self._lock:
            text = _memo_dumps(self.memoizer)
            count = self.entry_count()
        atomic_write_text(path, text, chaos_site="serve.spill")
        self.registry.inc("serve.spill.saves")
        return count

    def absorb(self, path: str | Path) -> int:
        """Merge a peer worker's spilled image into the live tables.

        Corrupt, truncated or keying-incompatible images are skipped
        with a warning (peer warmth is a bonus, never a dependency).
        Returns the number of entries gained.
        """
        memo = load_memoizer_safe(path)
        if memo is None:
            self.registry.inc("serve.spill.load_failures")
            return 0
        if not self.memoizer.compatible_with(memo):
            warnings.warn(
                f"ignoring peer spill {path}: incompatible memo keying",
                RuntimeWarning,
                stacklevel=2,
            )
            self.registry.inc("serve.spill.load_failures")
            return 0
        before = self.entry_count()
        self.memoizer.merge_from(memo)
        gained = self.entry_count() - before
        if gained:
            self.registry.inc("serve.spill.absorbed", gained)
        return gained

    # -- introspection -----------------------------------------------------

    def entry_count(self) -> int:
        return len(self.memoizer.no_bounds) + len(self.memoizer.with_bounds)

    def stats(self) -> dict:
        def table_stats(table: MemoTable) -> dict:
            return {
                "entries": len(table),
                "queries": table.stats.queries,
                "hits": table.stats.hits,
            }

        return {
            "entries": self.entry_count(),
            "no_bounds": table_stats(self.memoizer.no_bounds),
            "with_bounds": table_stats(self.memoizer.with_bounds),
            "disk": {
                "path": str(self.path) if self.path else None,
                "max_bytes": self.max_bytes,
                "loaded_entries": self.loaded_entries,
                "last_save_bytes": self.last_save_bytes,
            },
        }


class SingleFlight:
    """Coalesce identical in-flight computations onto one future.

    ``run(key, thunk)`` executes ``thunk`` for the first caller of a
    key; callers arriving while that computation is still in flight
    await the same future and share its outcome (result *or*
    exception).  Keys leave the table the moment their computation
    settles, so this is purely about concurrency, not result caching —
    the memo tables own remembering.

    asyncio-native: must be used from a single event loop.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self._inflight: dict[Any, asyncio.Future] = {}
        self.registry = registry if registry is not None else MetricsRegistry()

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: Any, thunk: Callable[[], Awaitable[Any]]
    ) -> Any:
        existing = self._inflight.get(key)
        if existing is not None:
            self.registry.inc("serve.coalesced")
            return await asyncio.shield(existing)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await thunk()
        except BaseException as err:
            if not future.cancelled():
                future.set_exception(err)
                # Mark retrieved so lonely leaders don't trip asyncio's
                # "exception was never retrieved" warning.
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)
