"""A small synchronous client for the dependence daemon.

Speaks the JSON-lines protocol over TCP.  Supports one-shot calls and
**pipelining**: :meth:`ServeClient.call_many` writes a whole batch of
request lines before reading any response, then matches responses back
to requests by id (the server may answer out of order).

Typed server errors surface as :class:`ServeError` carrying the wire
error code, so callers can distinguish ``overloaded`` (retry later)
from ``bad_request`` (don't).
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.serve import protocol
from repro.serve.protocol import ProtocolError

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """An error response from the server, with its typed code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One connection to a running :class:`DependenceServer`."""

    def __init__(self, host: str, port: int, timeout: float | None = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        retry_for: float = 0.0,
    ) -> "ServeClient":
        """Connect, optionally retrying while the server comes up."""
        deadline = time.monotonic() + retry_for
        while True:
            try:
                return cls(host, port, timeout=timeout)
            except (ConnectionRefusedError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _read_response(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_response(line)

    @staticmethod
    def _unwrap(response: dict) -> Any:
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServeError(
            error.get("code", "internal_error"),
            error.get("message", "malformed error response"),
        )

    # -- calls -------------------------------------------------------------

    def call(self, op: str, params: dict | None = None) -> Any:
        """One request, one response; raises :class:`ServeError` on errors."""
        request_id = self._fresh_id()
        self._file.write(protocol.encode_request(op, params, request_id))
        self._file.flush()
        response = self._read_response()
        if response.get("id") != request_id:
            raise ProtocolError(
                protocol.ErrorCode.PARSE,
                f"response id {response.get('id')!r} != {request_id}",
            )
        return self._unwrap(response)

    def call_many(
        self, calls: list[tuple[str, dict | None]]
    ) -> list[Any]:
        """Pipeline a batch of calls; results come back in input order.

        All request lines are written before any response is read, and
        responses are matched by id, so server-side reordering (e.g. a
        cached answer overtaking a slow one) is invisible to callers.
        Error responses become :class:`ServeError` *instances* in the
        result list rather than raising, so one bad call cannot mask
        the other results.
        """
        ids: list[int] = []
        for op, params in calls:
            request_id = self._fresh_id()
            ids.append(request_id)
            self._file.write(protocol.encode_request(op, params, request_id))
        self._file.flush()
        by_id: dict[int, Any] = {}
        for _ in calls:
            response = self._read_response()
            by_id[response.get("id")] = response
        out: list[Any] = []
        for request_id in ids:
            if request_id not in by_id:
                raise ProtocolError(
                    protocol.ErrorCode.PARSE,
                    f"no response for request id {request_id}",
                )
            response = by_id[request_id]
            try:
                out.append(self._unwrap(response))
            except ServeError as err:
                out.append(err)
        return out

    # -- convenience wrappers ----------------------------------------------

    def analyze(
        self, query: dict | None = None, source: str | None = None, **params: Any
    ) -> dict:
        merged = dict(params)
        if query is not None:
            merged["query"] = query
        if source is not None:
            merged["source"] = source
        return self.call("analyze", merged)

    def analyze_program(self, source: str, **params: Any) -> dict:
        return self.call("analyze_program", {"source": source, **params})

    def explain(
        self, query: dict | None = None, source: str | None = None, **params: Any
    ) -> dict:
        merged = dict(params)
        if query is not None:
            merged["query"] = query
        if source is not None:
            merged["source"] = source
        return self.call("explain", merged)

    def stats(self) -> dict:
        return self.call("stats")

    def health(self) -> dict:
        return self.call("health")

    def shutdown(self) -> dict:
        return self.call("shutdown")
