"""The unified, fault-tolerant client for the dependence-analysis service.

One class, :class:`Client`, speaks the JSON-lines protocol to every
kind of serving endpoint, selected by URL scheme::

    Client("tcp://127.0.0.1:4733")      # one bare worker daemon
    Client("cluster://127.0.0.1:4700")  # a consistent-hash router
    Client("stdio:")                    # a private child daemon

``tcp://`` connects to a running :class:`~repro.serve.server
.DependenceServer`; ``cluster://`` connects to a
:class:`~repro.serve.router.ClusterRouter` and verifies the endpoint
really is one (the health frame must advertise ``cluster: true``);
``stdio:`` spawns a private ``repro serve --stdio`` child process and
talks over its pipes.  The call surface — :meth:`Client.call`,
:meth:`Client.call_many`, :meth:`Client.analyze` and friends — is
identical across all three: the wire protocol is the same protocol,
only the transport differs.

Pipelining: :meth:`Client.call_many` writes a whole batch of request
lines before reading any response, then matches responses back to
requests by id (the server may answer out of order).

Typed server errors surface as :class:`ServeError` carrying the wire
error code, so callers can distinguish ``overloaded`` (retry later)
from ``bad_request`` (don't).

Resilience (all opt-in, zero-cost when off):

* every transport failure — refused connect, mid-stream reset, EOF,
  and the torn-frame case where a partial JSON line arrives without
  its newline — surfaces as a typed :class:`TransportError` carrying
  the op it orphaned and any partial frame, never a raw socket error
  or ``json.JSONDecodeError``;
* a :class:`RetryPolicy` retries *pure* ops (``analyze``,
  ``analyze_program``, ``explain``, ``graph``, ``stats``, ``health``)
  across automatic reconnects with exponential backoff and
  deterministic seeded jitter, capped by a wall-clock deadline —
  dependence queries are pure functions of their payload (the PLDI'91
  cascade is deterministic), so a replayed query returns the identical
  bytes and retrying is safe by construction.  ``shutdown`` is never
  retried;
* a per-endpoint :class:`CircuitBreaker` (closed → open → half-open)
  fails fast with :class:`CircuitOpenError` while the endpoint is
  known-dead instead of burning the backoff schedule on every call;
* incremental sessions are durable: :meth:`Client.open_session` mints
  a client-side ``session_id`` plus a monotonic epoch and journals
  every ``open_session``/``update_source`` frame, and on a transport
  failure or an ``unknown_session`` answer (a worker died and the ring
  re-homed the session) the journal replays to rebuild the session —
  bit-identical to an uninterrupted one, because the incremental
  engine guarantees delta ≡ full re-analysis of the final source;
* everything observable lands in the client's
  :class:`~repro.obs.metrics.MetricsRegistry` under ``client.*``.

:class:`ServeClient` remains as the (host, port) constructor spelling
of a ``tcp://`` client; ``repro.api.connect()`` is a deprecated alias.
"""

from __future__ import annotations

import hashlib
import json
import socket
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.protocol import ProtocolError

__all__ = [
    "Client",
    "ServeClient",
    "ServeError",
    "TransportError",
    "CircuitOpenError",
    "CircuitBreaker",
    "RetryPolicy",
    "PURE_OPS",
    "parse_endpoint",
]

#: Ops that are safe to silently re-send after a reconnect: pure
#: functions of their payload (or read-only probes).  ``shutdown`` has
#: a side effect and ``open_session``/``update_source`` mutate session
#: state — those recover through the session journal instead.
PURE_OPS = frozenset(
    {"analyze", "analyze_program", "explain", "graph", "stats", "health"}
)

#: Server error codes that mean "try again later", not "you are wrong".
_RETRIABLE_SERVER_CODES = frozenset(
    {protocol.ErrorCode.OVERLOADED, protocol.ErrorCode.SHUTTING_DOWN}
)

#: Replay restarts allowed when the ring re-homes a session mid-replay
#: and no RetryPolicy supplies its own attempt budget.
_REPLAY_ATTEMPTS = 4


class ServeError(Exception):
    """An error response from the server, with its typed code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class TransportError(ConnectionError):
    """The connection failed mid-call: reset, EOF, or a torn frame.

    ``op`` names the request left unanswered (``None`` when the
    failure preceded any request); ``partial`` carries the bytes of a
    torn frame — a JSON line that arrived without its terminating
    newline or failed to parse — so debugging tools can inspect what
    made it through.  Subclasses :class:`ConnectionError` so callers
    that caught raw socket errors keep working.
    """

    def __init__(self, detail: str, op: str | None = None, partial: bytes | None = None):
        suffix = f" (op {op!r})" if op else ""
        super().__init__(f"{detail}{suffix}")
        self.detail = detail
        self.op = op
        self.partial = partial


class CircuitOpenError(ConnectionError):
    """The circuit breaker is open: the endpoint is known-dead.

    Raised *without* touching the network, so a fleet of callers
    sharing one dead endpoint fails fast instead of stacking timeouts.
    ``retry_after_s`` is how long until the breaker half-opens.
    """

    def __init__(self, endpoint: str, retry_after_s: float):
        super().__init__(
            f"circuit open for {endpoint!r}: retry in {retry_after_s:.2f}s"
        )
        self.endpoint = endpoint
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-capped exponential backoff with deterministic jitter.

    ``attempts`` bounds the *total* number of tries (1 = no retry).
    The delay before retry ``k`` (0-based) is ``base_delay_s *
    multiplier**k`` capped at ``max_delay_s``, scaled by a jitter
    factor in ``[0.5, 1.0)`` that is a pure SHA-256 function of
    ``(seed, k)`` — the same policy replays the same schedule in every
    run, so chaos tests can precompute exactly how long recovery
    takes.  ``deadline_s`` caps the whole retry loop in wall-clock
    time regardless of how many attempts remain.
    """

    attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    deadline_s: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )

    def jitter(self, attempt: int) -> float:
        """The deterministic jitter factor for retry ``attempt``."""
        payload = f"{self.seed}\x00retry\x00{attempt}".encode()
        digest = hashlib.sha256(payload).digest()
        return 0.5 + (int.from_bytes(digest[:8], "big") / 2**64) / 2.0

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based)."""
        raw = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        return raw * self.jitter(attempt)


class CircuitBreaker:
    """A per-endpoint closed → open → half-open circuit breaker.

    ``failure_threshold`` consecutive transport failures open the
    circuit; while open, :meth:`allow` raises :class:`CircuitOpenError`
    without touching the network.  After ``cooldown_s`` the breaker
    half-opens: exactly one probe call is let through, and its outcome
    re-closes or re-opens the circuit.  Success anywhere resets the
    failure count.  Not thread-safe by design — a :class:`Client` is a
    single-connection object.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 1.0):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.failures = 0
        self.opened = 0  # times the circuit tripped (for counters/tests)
        self._state = self.CLOSED
        self._open_until = 0.0

    @property
    def state(self) -> str:
        if self._state == self.OPEN and time.monotonic() >= self._open_until:
            return self.HALF_OPEN
        return self._state

    def allow(self, endpoint: str) -> None:
        """Admit one call, or raise :class:`CircuitOpenError`."""
        if self._state != self.OPEN:
            return
        now = time.monotonic()
        if now < self._open_until:
            raise CircuitOpenError(endpoint, self._open_until - now)
        self._state = self.HALF_OPEN  # one probe rides through

    def record_success(self) -> None:
        if self.failures or self._state != self.CLOSED:
            self.failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        self.failures += 1
        if self._state == self.HALF_OPEN or self.failures >= self.failure_threshold:
            self._state = self.OPEN
            self._open_until = time.monotonic() + self.cooldown_s
            self.opened += 1
            self.failures = 0


def parse_endpoint(endpoint: str) -> tuple[str, str | None, int | None]:
    """Split an endpoint URL into ``(scheme, host, port)``.

    Accepted forms: ``tcp://HOST:PORT``, ``cluster://HOST:PORT``,
    ``stdio:`` (also spelled ``stdio://``).  Anything else raises
    :class:`ValueError` naming the supported schemes.
    """
    if endpoint in ("stdio:", "stdio://"):
        return "stdio", None, None
    for scheme in ("tcp", "cluster"):
        prefix = f"{scheme}://"
        if endpoint.startswith(prefix):
            rest = endpoint[len(prefix) :]
            host, sep, port_text = rest.rpartition(":")
            if not sep or not host or not port_text.isdigit():
                raise ValueError(
                    f"endpoint {endpoint!r} needs the form "
                    f"{scheme}://HOST:PORT"
                )
            return scheme, host, int(port_text)
    raise ValueError(
        f"unsupported endpoint {endpoint!r} "
        "(use tcp://HOST:PORT, cluster://HOST:PORT, or stdio:)"
    )


class _SocketTransport:
    """A TCP connection's buffered line-oriented file pair."""

    def __init__(self, host: str, port: int, timeout: float | None):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def write(self, data: bytes) -> None:
        self._file.write(data)

    def flush(self) -> None:
        self._file.flush()

    def readline(self) -> bytes:
        return self._file.readline()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


class _StdioTransport:
    """A private ``repro serve --stdio`` child and its pipes."""

    def __init__(self, args: tuple[str, ...]):
        import os
        from pathlib import Path

        import repro

        # The child must import the same repro this process runs,
        # installed or straight from a source tree.
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--stdio", *args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
        )

    def write(self, data: bytes) -> None:
        assert self._proc.stdin is not None
        self._proc.stdin.write(data)

    def flush(self) -> None:
        assert self._proc.stdin is not None
        self._proc.stdin.flush()

    def readline(self) -> bytes:
        assert self._proc.stdout is not None
        return self._proc.stdout.readline()

    def close(self) -> None:
        # Closing stdin is the stdio daemon's EOF: it drains and exits.
        try:
            if self._proc.stdin is not None:
                self._proc.stdin.close()
            self._proc.wait(timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            self._proc.kill()
            self._proc.wait(timeout=5)


class Client:
    """One connection to a dependence-analysis endpoint.

    ``endpoint`` selects the transport by scheme (see module
    docstring); ``retry_for`` keeps retrying a refused TCP connection
    for that many seconds (a server that is still coming up);
    ``stdio_args`` appends extra ``repro serve`` flags when spawning a
    ``stdio:`` child.

    ``retry`` is the optional :class:`RetryPolicy` for mid-stream
    failures — without one the client behaves like a plain socket
    (one transport failure, one typed :class:`TransportError`).
    ``breaker`` is the per-endpoint :class:`CircuitBreaker` (pass a
    shared instance to coordinate several clients on one endpoint);
    ``registry`` receives ``client.*`` counters.
    """

    def __init__(
        self,
        endpoint: str,
        timeout: float | None = 30.0,
        retry_for: float = 0.0,
        stdio_args: tuple[str, ...] = (),
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.endpoint = endpoint
        self.scheme, self.host, self.port = parse_endpoint(endpoint)
        self.retry = retry
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._next_id = 0
        self._timeout = timeout
        self._stdio_args = stdio_args
        self._journal: dict[str, dict] = {}  # session_id -> journal entry
        self._transport: Any = self._make_transport(retry_for)
        if self.scheme == "cluster":
            # cluster:// promises a router; fail loudly when pointed at
            # a bare worker instead of silently losing the fleet.
            info = self.health()
            if not info.get("cluster"):
                self.close()
                raise ValueError(
                    f"endpoint {endpoint!r} is not a cluster router "
                    "(health did not advertise cluster: true); "
                    "use tcp:// for a bare worker"
                )

    def _make_transport(self, retry_for: float = 0.0) -> Any:
        if self.scheme == "stdio":
            return _StdioTransport(self._stdio_args)
        return self._connect_tcp(self._timeout, retry_for)

    def _connect_tcp(
        self, timeout: float | None, retry_for: float
    ) -> _SocketTransport:
        assert self.host is not None and self.port is not None
        deadline = time.monotonic() + retry_for
        while True:
            try:
                return _SocketTransport(self.host, self.port, timeout)
            except (ConnectionRefusedError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def _reconnect(self, retry_for: float = 0.0) -> None:
        """Tear down the broken transport and dial a fresh one."""
        try:
            self._transport.close()
        except (OSError, ValueError):
            pass
        self._transport = self._make_transport(retry_for)
        self.registry.inc("client.reconnects")

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _read_response(self, op: str | None = None) -> dict:
        try:
            line = self._transport.readline()
        except (OSError, ValueError) as err:
            raise TransportError(f"read failed: {err}", op=op) from err
        if not line:
            raise TransportError("server closed the connection", op=op)
        if not line.endswith(b"\n"):
            # A torn frame: the connection died mid-line.  The partial
            # bytes ride along so the caller can see what arrived.
            raise TransportError(
                f"torn frame ({len(line)} bytes, no newline)",
                op=op,
                partial=line,
            )
        try:
            return protocol.decode_response(line)
        except json.JSONDecodeError as err:
            # A complete line that is not JSON: the stream is corrupt
            # (a proxy bug, a torn write upstream) — typed, with the
            # evidence attached, never a raw JSONDecodeError.
            raise TransportError(
                f"undecodable frame: {err}", op=op, partial=line
            ) from err

    def _write_request(self, op: str, params: dict | None, request_id: int) -> None:
        try:
            self._transport.write(protocol.encode_request(op, params, request_id))
        except (OSError, ValueError) as err:
            raise TransportError(f"write failed: {err}", op=op) from err

    def _flush(self, op: str | None = None) -> None:
        try:
            self._transport.flush()
        except (OSError, ValueError) as err:
            raise TransportError(f"flush failed: {err}", op=op) from err

    @staticmethod
    def _unwrap(response: dict) -> Any:
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServeError(
            error.get("code", "internal_error"),
            error.get("message", "malformed error response"),
        )

    # -- the retry loop ----------------------------------------------------

    def _retriable(self, op: str, attempt: int, deadline: float | None) -> bool:
        if self.retry is None or op not in PURE_OPS:
            return False
        if attempt + 1 >= self.retry.attempts:
            return False
        return deadline is None or time.monotonic() < deadline

    def _backoff(self, attempt: int, deadline: float | None) -> None:
        assert self.retry is not None
        pause = self.retry.delay(attempt)
        if deadline is not None:
            pause = min(pause, max(0.0, deadline - time.monotonic()))
        if pause > 0:
            time.sleep(pause)

    def _call_once(self, op: str, params: dict | None) -> Any:
        request_id = self._fresh_id()
        self._write_request(op, params, request_id)
        self._flush(op)
        response = self._read_response(op)
        if response.get("id") != request_id:
            raise ProtocolError(
                protocol.ErrorCode.PARSE,
                f"response id {response.get('id')!r} != {request_id}",
            )
        return self._unwrap(response)

    # -- calls -------------------------------------------------------------

    def call(self, op: str, params: dict | None = None) -> Any:
        """One request, one response; raises :class:`ServeError` on errors.

        With a :class:`RetryPolicy`, transport failures and retriable
        server verdicts (``overloaded``, ``shutting_down``) on *pure*
        ops are retried across automatic reconnects; everything else
        propagates after the first failure.
        """
        deadline = (
            time.monotonic() + self.retry.deadline_s if self.retry else None
        )
        attempt = 0
        while True:
            self._allow(op)
            try:
                result = self._call_once(op, params)
            except TransportError:
                self.breaker.record_failure()
                self.registry.inc("client.transport_errors")
                self.registry.inc_family("client.transport_errors_by_op", op)
                if not self._retriable(op, attempt, deadline):
                    raise
                self._retry_pause_and_reconnect(op, attempt, deadline)
                attempt += 1
                continue
            except ServeError as err:
                # An answer *is* a live endpoint: the breaker stays happy.
                self.breaker.record_success()
                if err.code in _RETRIABLE_SERVER_CODES and self._retriable(
                    op, attempt, deadline
                ):
                    self.registry.inc("client.retries")
                    self.registry.inc_family("client.retries_by_op", op)
                    self._backoff(attempt, deadline)
                    attempt += 1
                    continue
                raise
            self.breaker.record_success()
            return result

    def _allow(self, op: str | None) -> None:
        try:
            self.breaker.allow(self.endpoint)
        except CircuitOpenError:
            self.registry.inc("client.breaker_rejections")
            raise

    def _retry_pause_and_reconnect(
        self, op: str, attempt: int, deadline: float | None
    ) -> None:
        self.registry.inc("client.retries")
        self.registry.inc_family("client.retries_by_op", op)
        self._backoff(attempt, deadline)
        # Keep redialing through transient refusals (a server coming
        # back up, a partition window on the path) for a bounded slice
        # of the remaining deadline.
        remaining = (
            max(0.0, deadline - time.monotonic()) if deadline is not None else 5.0
        )
        try:
            self._reconnect(retry_for=min(5.0, remaining))
        except (OSError, ValueError) as err:
            raise TransportError(f"reconnect failed: {err}", op=op) from err

    def call_many(self, calls: list[tuple[str, dict | None]]) -> list[Any]:
        """Pipeline a batch of calls; results come back in input order.

        All request lines are written before any response is read, and
        responses are matched by id, so server-side reordering (e.g. a
        cached answer overtaking a slow one) is invisible to callers.
        Error responses become :class:`ServeError` *instances* in the
        result list rather than raising, so one bad call cannot mask
        the other results.

        With a :class:`RetryPolicy` and an all-pure batch, a transport
        failure mid-pipeline re-sends only the still-unanswered calls
        after reconnecting, and retriable server verdicts are re-asked
        — the batch completes with zero lost queries or raises.
        """
        results: list[Any] = [None] * len(calls)
        remaining: dict[int, tuple[str, dict | None]] = dict(enumerate(calls))
        all_pure = all(op in PURE_OPS for op, _params in calls)
        deadline = (
            time.monotonic() + self.retry.deadline_s if self.retry else None
        )
        attempt = 0
        while remaining:
            self._allow(None)
            indices = sorted(remaining)
            id_to_index: dict[Any, int] = {}
            answered: dict[int, dict] = {}
            more_rounds = (
                self.retry is not None
                and attempt + 1 < self.retry.attempts
                and (deadline is None or time.monotonic() < deadline)
            )
            try:
                for index in indices:
                    op, params = remaining[index]
                    request_id = self._fresh_id()
                    id_to_index[request_id] = index
                    self._write_request(op, params, request_id)
                self._flush()
                for _ in indices:
                    response = self._read_response()
                    request_id = response.get("id")
                    index = id_to_index.get(request_id)
                    if index is None or index not in remaining:
                        raise ProtocolError(
                            protocol.ErrorCode.PARSE,
                            f"unexpected response id {request_id!r}",
                        )
                    answered[index] = response
            except TransportError as err:
                self.breaker.record_failure()
                self.registry.inc("client.transport_errors")
                # Any answers that did arrive before the cut still count.
                for index, response in answered.items():
                    if index in remaining:
                        self._settle(results, remaining, index, response, more_rounds)
                if not (more_rounds and all_pure):
                    raise
                failed_op = err.op or next(
                    (remaining[i][0] for i in sorted(remaining)), "batch"
                )
                self._retry_pause_and_reconnect(failed_op, attempt, deadline)
                attempt += 1
                continue
            self.breaker.record_success()
            for index in indices:
                if index not in answered:
                    # We read a response per request, yet this id never
                    # showed: a duplicated id, i.e. a protocol violation.
                    raise ProtocolError(
                        protocol.ErrorCode.PARSE,
                        f"no response for request id of call {index}",
                    )
                self._settle(results, remaining, index, answered[index], more_rounds)
            if remaining:
                # Only retriable server verdicts stay pending; back off
                # (no reconnect: the connection answered) and re-ask.
                self._backoff(attempt, deadline)
                attempt += 1
        return results

    def _settle(
        self,
        results: list[Any],
        remaining: dict[int, tuple[str, dict | None]],
        index: int,
        response: dict,
        more_rounds: bool,
    ) -> None:
        """Record one response; retriable server errors stay pending.

        A pending call keeps its :class:`ServeError` as the provisional
        result, so when the retry budget runs out the caller still sees
        the typed error instead of a hole.
        """
        try:
            results[index] = self._unwrap(response)
        except ServeError as err:
            results[index] = err
            op = remaining[index][0]
            if (
                more_rounds
                and op in PURE_OPS
                and err.code in _RETRIABLE_SERVER_CODES
            ):
                self.registry.inc("client.retries")
                self.registry.inc_family("client.retries_by_op", op)
                return  # stays in `remaining`: re-asked next round
        del remaining[index]

    # -- convenience wrappers ----------------------------------------------

    def analyze(
        self, query: dict | None = None, source: str | None = None, **params: Any
    ) -> dict:
        merged = dict(params)
        if query is not None:
            merged["query"] = query
        if source is not None:
            merged["source"] = source
        return self.call("analyze", merged)

    def analyze_program(self, source: str, **params: Any) -> dict:
        return self.call("analyze_program", {"source": source, **params})

    def explain(
        self, query: dict | None = None, source: str | None = None, **params: Any
    ) -> dict:
        merged = dict(params)
        if query is not None:
            merged["query"] = query
        if source is not None:
            merged["source"] = source
        return self.call("explain", merged)

    # -- durable incremental sessions --------------------------------------

    def open_session(
        self,
        source: str | None = None,
        session_id: str | None = None,
        **params: Any,
    ) -> dict:
        """Open an incremental session; returns ``{"session": id, ...}``.

        With ``source`` the first full analysis runs immediately and
        the result carries its ``update`` summary.  Requires an
        endpoint whose ``health`` advertises ``sessions: true``
        (protocol v3 workers, or a cluster router that pins sessions
        to ring homes).

        The session is durable: the client mints ``session_id`` (or
        takes yours), stamps a monotonic epoch, and journals this
        frame plus every later :meth:`update_source`, replaying the
        journal to rebuild the session after a reconnect or a
        router-side worker failover.
        """
        sid = session_id if session_id is not None else f"c{uuid.uuid4().hex[:12]}"
        merged = dict(params)
        if source is not None:
            merged["source"] = source
        merged["session_id"] = sid
        entry = {"epoch": 0, "open": dict(merged), "updates": []}
        merged["epoch"] = 0
        try:
            result = self.call("open_session", merged)
        except TransportError:
            # Journal first, then recover: the replay re-sends the open
            # (with a bumped epoch) on a fresh connection.
            self._journal[sid] = entry
            return self._replay_session(sid)
        self._journal[sid] = entry
        return result

    def update_source(self, session: str, source: str, **params: Any) -> dict:
        """Re-analyze an edited program; only dirty pairs are re-queried."""
        merged = {"session": session, "source": source, **params}
        entry = self._journal.get(session)
        if entry is not None:
            # Journal before sending: if the send dies we replay the
            # journal, whose last frame is exactly this update — so
            # the replay's return value is this call's response.
            entry["updates"].append(dict(merged))
        try:
            return self.call("update_source", merged)
        except TransportError:
            if entry is None:
                raise
            return self._replay_session(session)
        except ServeError as err:
            if entry is not None:
                if err.code == protocol.ErrorCode.UNKNOWN_SESSION:
                    # The worker holding this session died (or the ring
                    # re-homed it): rebuild everything from the journal.
                    return self._replay_session(session)
                # The server rejected this very update (bad source,
                # blown limit): scrub it from the journal so a later
                # replay does not re-court the same rejection.
                entry["updates"].pop()
            raise

    def graph(self, session: str, **params: Any) -> dict:
        """The session's retained graph: canonical edges + DOT text."""
        merged = {"session": session, **params}
        entry = self._journal.get(session)
        try:
            return self.call("graph", merged)
        except TransportError:
            if entry is None:
                raise
            self._replay_session(session)
            return self.call("graph", merged)
        except ServeError as err:
            if entry is None or err.code != protocol.ErrorCode.UNKNOWN_SESSION:
                raise
            self._replay_session(session)
            return self.call("graph", merged)

    def _replay_session(self, sid: str) -> dict:
        """Rebuild a journaled session on the live endpoint.

        Bumps the epoch (so a zombie worker holding the old
        incarnation can never accept stale frames), re-opens with the
        original open params, and re-applies every journaled update in
        order.  Returns the response of the final journal frame.
        Bit-identity with the uninterrupted session is guaranteed by
        the incremental engine's delta ≡ full invariant: the rebuilt
        graph is a pure function of the final source.
        """
        entry = self._journal[sid]
        entry["epoch"] += 1
        self.registry.inc("client.session_replays")
        open_params = dict(entry["open"])
        open_params["epoch"] = entry["epoch"]
        deadline = (
            time.monotonic() + self.retry.deadline_s if self.retry else None
        )
        attempt = 0
        while True:
            self._allow("open_session")
            try:
                result = self.call("open_session", open_params)
                for update in entry["updates"]:
                    result = self.call("update_source", update)
                self.registry.inc(
                    "client.replayed_frames", 1 + len(entry["updates"])
                )
                return result
            except TransportError:
                if self.retry is None or attempt + 1 >= self.retry.attempts or (
                    deadline is not None and time.monotonic() >= deadline
                ):
                    raise
                self._retry_pause_and_reconnect("open_session", attempt, deadline)
                attempt += 1
            except ServeError as err:
                if err.code != protocol.ErrorCode.UNKNOWN_SESSION:
                    raise
                # The ring re-homed the session *mid-replay* (e.g. the
                # dead worker's replacement rejoined and took the pin
                # back): restart the whole replay on the new home.  The
                # re-open is idempotent — equal epochs replace — so a
                # restarted replay converges to the same final state.
                if attempt + 1 >= (
                    self.retry.attempts if self.retry else _REPLAY_ATTEMPTS
                ) or (deadline is not None and time.monotonic() >= deadline):
                    raise
                self.registry.inc("client.session_replays")
                attempt += 1

    # -- probes ------------------------------------------------------------

    def stats(self) -> dict:
        return self.call("stats")

    def health(self) -> dict:
        return self.call("health")

    def ping(self) -> float:
        """One health round-trip; returns the latency in seconds."""
        start = time.perf_counter()
        self.health()
        return time.perf_counter() - start

    def shutdown(self) -> dict:
        return self.call("shutdown")


class ServeClient(Client):
    """The ``(host, port)`` spelling of a ``tcp://`` :class:`Client`."""

    def __init__(self, host: str, port: int, timeout: float | None = 30.0):
        super().__init__(f"tcp://{host}:{port}", timeout=timeout)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        retry_for: float = 0.0,
        retry: RetryPolicy | None = None,
    ) -> "ServeClient":
        """Connect, optionally retrying while the server comes up."""
        client = cls.__new__(cls)
        Client.__init__(
            client,
            f"tcp://{host}:{port}",
            timeout=timeout,
            retry_for=retry_for,
            retry=retry,
        )
        return client
