"""The unified client for the dependence-analysis service.

One class, :class:`Client`, speaks the JSON-lines protocol to every
kind of serving endpoint, selected by URL scheme::

    Client("tcp://127.0.0.1:4733")      # one bare worker daemon
    Client("cluster://127.0.0.1:4700")  # a consistent-hash router
    Client("stdio:")                    # a private child daemon

``tcp://`` connects to a running :class:`~repro.serve.server
.DependenceServer`; ``cluster://`` connects to a
:class:`~repro.serve.router.ClusterRouter` and verifies the endpoint
really is one (the health frame must advertise ``cluster: true``);
``stdio:`` spawns a private ``repro serve --stdio`` child process and
talks over its pipes.  The call surface — :meth:`Client.call`,
:meth:`Client.call_many`, :meth:`Client.analyze` and friends — is
identical across all three: the wire protocol is the same protocol,
only the transport differs.

Pipelining: :meth:`Client.call_many` writes a whole batch of request
lines before reading any response, then matches responses back to
requests by id (the server may answer out of order).

Typed server errors surface as :class:`ServeError` carrying the wire
error code, so callers can distinguish ``overloaded`` (retry later)
from ``bad_request`` (don't).

:class:`ServeClient` remains as the (host, port) constructor spelling
of a ``tcp://`` client; ``repro.api.connect()`` is a deprecated alias.
"""

from __future__ import annotations

import socket
import subprocess
import sys
import time
from typing import Any

from repro.serve import protocol
from repro.serve.protocol import ProtocolError

__all__ = ["Client", "ServeClient", "ServeError", "parse_endpoint"]


class ServeError(Exception):
    """An error response from the server, with its typed code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


def parse_endpoint(endpoint: str) -> tuple[str, str | None, int | None]:
    """Split an endpoint URL into ``(scheme, host, port)``.

    Accepted forms: ``tcp://HOST:PORT``, ``cluster://HOST:PORT``,
    ``stdio:`` (also spelled ``stdio://``).  Anything else raises
    :class:`ValueError` naming the supported schemes.
    """
    if endpoint in ("stdio:", "stdio://"):
        return "stdio", None, None
    for scheme in ("tcp", "cluster"):
        prefix = f"{scheme}://"
        if endpoint.startswith(prefix):
            rest = endpoint[len(prefix) :]
            host, sep, port_text = rest.rpartition(":")
            if not sep or not host or not port_text.isdigit():
                raise ValueError(
                    f"endpoint {endpoint!r} needs the form "
                    f"{scheme}://HOST:PORT"
                )
            return scheme, host, int(port_text)
    raise ValueError(
        f"unsupported endpoint {endpoint!r} "
        "(use tcp://HOST:PORT, cluster://HOST:PORT, or stdio:)"
    )


class _SocketTransport:
    """A TCP connection's buffered line-oriented file pair."""

    def __init__(self, host: str, port: int, timeout: float | None):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def write(self, data: bytes) -> None:
        self._file.write(data)

    def flush(self) -> None:
        self._file.flush()

    def readline(self) -> bytes:
        return self._file.readline()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


class _StdioTransport:
    """A private ``repro serve --stdio`` child and its pipes."""

    def __init__(self, args: tuple[str, ...]):
        import os
        from pathlib import Path

        import repro

        # The child must import the same repro this process runs,
        # installed or straight from a source tree.
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--stdio", *args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
        )

    def write(self, data: bytes) -> None:
        assert self._proc.stdin is not None
        self._proc.stdin.write(data)

    def flush(self) -> None:
        assert self._proc.stdin is not None
        self._proc.stdin.flush()

    def readline(self) -> bytes:
        assert self._proc.stdout is not None
        return self._proc.stdout.readline()

    def close(self) -> None:
        # Closing stdin is the stdio daemon's EOF: it drains and exits.
        try:
            if self._proc.stdin is not None:
                self._proc.stdin.close()
            self._proc.wait(timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            self._proc.kill()
            self._proc.wait(timeout=5)


class Client:
    """One connection to a dependence-analysis endpoint.

    ``endpoint`` selects the transport by scheme (see module
    docstring); ``retry_for`` keeps retrying a refused TCP connection
    for that many seconds (a server that is still coming up);
    ``stdio_args`` appends extra ``repro serve`` flags when spawning a
    ``stdio:`` child.
    """

    def __init__(
        self,
        endpoint: str,
        timeout: float | None = 30.0,
        retry_for: float = 0.0,
        stdio_args: tuple[str, ...] = (),
    ):
        self.endpoint = endpoint
        self.scheme, self.host, self.port = parse_endpoint(endpoint)
        self._next_id = 0
        if self.scheme == "stdio":
            self._transport: Any = _StdioTransport(stdio_args)
        else:
            self._transport = self._connect_tcp(timeout, retry_for)
        if self.scheme == "cluster":
            # cluster:// promises a router; fail loudly when pointed at
            # a bare worker instead of silently losing the fleet.
            info = self.health()
            if not info.get("cluster"):
                self.close()
                raise ValueError(
                    f"endpoint {endpoint!r} is not a cluster router "
                    "(health did not advertise cluster: true); "
                    "use tcp:// for a bare worker"
                )

    def _connect_tcp(
        self, timeout: float | None, retry_for: float
    ) -> _SocketTransport:
        assert self.host is not None and self.port is not None
        deadline = time.monotonic() + retry_for
        while True:
            try:
                return _SocketTransport(self.host, self.port, timeout)
            except (ConnectionRefusedError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _read_response(self) -> dict:
        line = self._transport.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_response(line)

    @staticmethod
    def _unwrap(response: dict) -> Any:
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServeError(
            error.get("code", "internal_error"),
            error.get("message", "malformed error response"),
        )

    # -- calls -------------------------------------------------------------

    def call(self, op: str, params: dict | None = None) -> Any:
        """One request, one response; raises :class:`ServeError` on errors."""
        request_id = self._fresh_id()
        self._transport.write(protocol.encode_request(op, params, request_id))
        self._transport.flush()
        response = self._read_response()
        if response.get("id") != request_id:
            raise ProtocolError(
                protocol.ErrorCode.PARSE,
                f"response id {response.get('id')!r} != {request_id}",
            )
        return self._unwrap(response)

    def call_many(
        self, calls: list[tuple[str, dict | None]]
    ) -> list[Any]:
        """Pipeline a batch of calls; results come back in input order.

        All request lines are written before any response is read, and
        responses are matched by id, so server-side reordering (e.g. a
        cached answer overtaking a slow one) is invisible to callers.
        Error responses become :class:`ServeError` *instances* in the
        result list rather than raising, so one bad call cannot mask
        the other results.
        """
        ids: list[int] = []
        for op, params in calls:
            request_id = self._fresh_id()
            ids.append(request_id)
            self._transport.write(
                protocol.encode_request(op, params, request_id)
            )
        self._transport.flush()
        by_id: dict[int, Any] = {}
        for _ in calls:
            response = self._read_response()
            by_id[response.get("id")] = response
        out: list[Any] = []
        for request_id in ids:
            if request_id not in by_id:
                raise ProtocolError(
                    protocol.ErrorCode.PARSE,
                    f"no response for request id {request_id}",
                )
            response = by_id[request_id]
            try:
                out.append(self._unwrap(response))
            except ServeError as err:
                out.append(err)
        return out

    # -- convenience wrappers ----------------------------------------------

    def analyze(
        self, query: dict | None = None, source: str | None = None, **params: Any
    ) -> dict:
        merged = dict(params)
        if query is not None:
            merged["query"] = query
        if source is not None:
            merged["source"] = source
        return self.call("analyze", merged)

    def analyze_program(self, source: str, **params: Any) -> dict:
        return self.call("analyze_program", {"source": source, **params})

    def explain(
        self, query: dict | None = None, source: str | None = None, **params: Any
    ) -> dict:
        merged = dict(params)
        if query is not None:
            merged["query"] = query
        if source is not None:
            merged["source"] = source
        return self.call("explain", merged)

    def open_session(self, source: str | None = None, **params: Any) -> dict:
        """Open an incremental session; returns ``{"session": id, ...}``.

        With ``source`` the first full analysis runs immediately and
        the result carries its ``update`` summary.  Requires a server
        whose ``health`` advertises ``sessions: true`` (protocol v3
        workers; cluster routers decline).
        """
        merged = dict(params)
        if source is not None:
            merged["source"] = source
        return self.call("open_session", merged)

    def update_source(self, session: str, source: str, **params: Any) -> dict:
        """Re-analyze an edited program; only dirty pairs are re-queried."""
        return self.call(
            "update_source", {"session": session, "source": source, **params}
        )

    def graph(self, session: str, **params: Any) -> dict:
        """The session's retained graph: canonical edges + DOT text."""
        return self.call("graph", {"session": session, **params})

    def stats(self) -> dict:
        return self.call("stats")

    def health(self) -> dict:
        return self.call("health")

    def shutdown(self) -> dict:
        return self.call("shutdown")


class ServeClient(Client):
    """The ``(host, port)`` spelling of a ``tcp://`` :class:`Client`."""

    def __init__(self, host: str, port: int, timeout: float | None = 30.0):
        super().__init__(f"tcp://{host}:{port}", timeout=timeout)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        retry_for: float = 0.0,
    ) -> "ServeClient":
        """Connect, optionally retrying while the server comes up."""
        client = cls.__new__(cls)
        Client.__init__(
            client, f"tcp://{host}:{port}", timeout=timeout, retry_for=retry_for
        )
        return client
