"""repro.serve — the long-running dependence-query service.

The paper's systems result is that memoization makes exact dependence
testing cheap *because real workloads repeat a tiny number of unique
query patterns* (5,679 queries collapse to 332 tests on the PERFECT
Club).  That access profile rewards a long-lived **service** far more
than batch re-runs: a daemon keeps the memo tables warm across every
caller, forever.  This package is that daemon plus its client:

* :mod:`repro.serve.protocol` — the versioned JSON-lines request /
  response schema (TCP and stdio) with typed error codes;
* :mod:`repro.serve.cache` — the two-tier cache: the in-process
  :class:`~repro.core.memo.Memoizer` (made thread-safe and
  recency-tracked) backed by a persistent on-disk store with atomic
  writes, versioned invalidation and an LRU byte bound — plus
  single-flight coalescing of identical in-flight queries;
* :mod:`repro.serve.pool` — a persistent process pool (crashed-worker
  recycling) reusing the batch engine's sharding for heavy uncached
  program analyses;
* :mod:`repro.serve.server` — the asyncio daemon: per-connection
  sessions, request pipelining, bounded concurrency with explicit
  backpressure, per-query deadlines that degrade to a conservative
  flagged verdict, and SIGTERM-triggered graceful drain;
* :mod:`repro.serve.client` — the unified pipelining synchronous
  client (``tcp://``, ``cluster://`` and ``stdio:`` endpoints behind
  one :class:`~repro.serve.client.Client`);
* :mod:`repro.serve.router` — the consistent-hash cluster router:
  shards the canonical query-key space over a worker fleet and replays
  in-flight queries across worker loss;
* :mod:`repro.serve.cluster` — the fleet supervisor behind
  ``repro serve --cluster N``: N worker daemons, memo-warmth gossip,
  crash restarts and rolling restarts.

CLI entry points: ``repro serve`` and ``repro query``.
"""

from repro.serve.cache import ServeCache, SingleFlight
from repro.serve.client import Client, ServeClient, ServeError
from repro.serve.cluster import ClusterConfig, ClusterSupervisor
from repro.serve.pool import WorkerPool
from repro.serve.protocol import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ErrorCode,
)
from repro.serve.router import ClusterRouter, HashRing, RouterConfig
from repro.serve.server import DependenceServer, ServeConfig

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "ErrorCode",
    "ServeCache",
    "SingleFlight",
    "Client",
    "ServeClient",
    "ServeError",
    "WorkerPool",
    "DependenceServer",
    "ServeConfig",
    "HashRing",
    "ClusterRouter",
    "RouterConfig",
    "ClusterConfig",
    "ClusterSupervisor",
]
