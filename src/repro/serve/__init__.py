"""repro.serve — the long-running dependence-query service.

The paper's systems result is that memoization makes exact dependence
testing cheap *because real workloads repeat a tiny number of unique
query patterns* (5,679 queries collapse to 332 tests on the PERFECT
Club).  That access profile rewards a long-lived **service** far more
than batch re-runs: a daemon keeps the memo tables warm across every
caller, forever.  This package is that daemon plus its client:

* :mod:`repro.serve.protocol` — the versioned JSON-lines request /
  response schema (TCP and stdio) with typed error codes;
* :mod:`repro.serve.cache` — the two-tier cache: the in-process
  :class:`~repro.core.memo.Memoizer` (made thread-safe and
  recency-tracked) backed by a persistent on-disk store with atomic
  writes, versioned invalidation and an LRU byte bound — plus
  single-flight coalescing of identical in-flight queries;
* :mod:`repro.serve.pool` — a persistent process pool (crashed-worker
  recycling) reusing the batch engine's sharding for heavy uncached
  program analyses;
* :mod:`repro.serve.server` — the asyncio daemon: per-connection
  sessions, request pipelining, bounded concurrency with explicit
  backpressure, per-query deadlines that degrade to a conservative
  flagged verdict, and SIGTERM-triggered graceful drain;
* :mod:`repro.serve.client` — a pipelining synchronous client.

CLI entry points: ``repro serve`` and ``repro query``.
"""

from repro.serve.cache import ServeCache, SingleFlight
from repro.serve.client import ServeClient, ServeError
from repro.serve.pool import WorkerPool
from repro.serve.protocol import PROTOCOL_VERSION, ErrorCode
from repro.serve.server import DependenceServer, ServeConfig

__all__ = [
    "PROTOCOL_VERSION",
    "ErrorCode",
    "ServeCache",
    "SingleFlight",
    "ServeClient",
    "ServeError",
    "WorkerPool",
    "DependenceServer",
    "ServeConfig",
]
