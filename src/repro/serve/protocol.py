"""The serving wire protocol: versioned JSON lines with typed errors.

Every message is one JSON object on one ``\\n``-terminated line (UTF-8),
over TCP or stdio.  Requests carry a protocol version, a caller-chosen
id (echoed back verbatim, so pipelined responses can be matched out of
order), an operation name and an operation-specific ``params`` object::

    {"v": 1, "id": 7, "op": "analyze", "params": {"query": {...}}}

Responses are either a result or a typed error::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "overloaded", "message": "..."}}

Operations
==========

===================  =======================================================
op                   params → result
===================  =======================================================
``analyze``          ``query`` (IR serde) *or* ``source`` + ``pair``;
                     optional ``directions`` (default true) →
                     one canonical dependence report
``analyze_program``  ``source`` (source text); optional
                     ``directions`` → per-pair reports + batch summary
``explain``          same params as ``analyze`` → report + rendered
                     decision trace
``stats``            ``{}`` → merged metrics registry + cache statistics
``health``           ``{}`` → status / protocol / inflight snapshot
``shutdown``         ``{}`` → ``{"draining": true}``; server drains
                     in-flight work and exits 0
``open_session``     optional ``source`` → ``{"session": id, ...}``; opens
                     an incremental re-analysis session on this connection
                     (analyzing ``source`` when given).  Optional
                     ``session_id`` (client-minted durable id, also the
                     router's ring-pinning key) + ``epoch`` (monotonic
                     incarnation counter: re-opening with a lower epoch
                     than the live session is rejected, equal-or-higher
                     replaces it — journal-replay recovery).  Both are
                     additive, so the protocol version is unchanged
``update_source``    ``session`` + ``source`` → delta statistics
                     (kept/dirty/requeried pairs, edge count); re-analyzes
                     only what the edit dirtied.  An id the server does
                     not hold answers ``unknown_session`` — the typed
                     signal for a client to replay its session journal
                     (e.g. after worker failover behind a router)
``graph``            ``session`` → retained dependence graph as canonical
                     ``edges`` serde + ``dot`` text + last-update summary
===================  =======================================================

Every op that takes ``source`` also accepts an optional ``lang``
(``"loop"`` / ``"python"`` / ``"c"``, default ``"loop"``): non-loop
text goes through the matching :mod:`repro.frontends` extractor before
analysis.  Workers advertise the accepted list under ``frontends`` in
their ``health`` response; this is additive, so the protocol version
is unchanged.

The **canonical report** encoding (:func:`report_to_wire`) contains
only the semantic answer — verdict, deciding test, exactness,
distances, sorted direction vectors — never serving-state flags like
``from_memo``: a warm cache must answer bit-identically to a cold one.
``degraded`` is the one serving-layer field: ``True`` marks a verdict
that a deadline (or any other blown resource budget — see
:mod:`repro.robust.budget`) forced to the conservative "dependent, all
directions" answer, with ``degraded_reason`` naming the machine-readable
reason code (see :func:`degraded_report`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.api import DependenceReport
from repro.robust.budget import REASON_DEADLINE
from repro.system.depsystem import Direction

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "OPS",
    "ErrorCode",
    "ProtocolError",
    "Request",
    "encode_request",
    "decode_request",
    "ok_response",
    "error_response",
    "encode_response",
    "decode_response",
    "report_to_wire",
    "degraded_report",
    "canonical_json",
]

#: Version 2 (the cluster release) added capability advertisement:
#: ``health`` results carry ``cluster`` (is this endpoint a
#: consistent-hash router fronting a worker fleet?) plus ``worker_id``
#: on bare workers.  Version 3 (the incremental release) added the
#: stateful session ops — ``open_session`` / ``update_source`` /
#: ``graph`` — and the ``sessions`` capability flag in ``health``.
#: The request/response framing and every pre-existing op are unchanged
#: in both revisions, so version 1 and 2 requests are still accepted —
#: negotiation is one-sided and backward: an old client may talk to a
#: new server, and a new client probes ``health`` for capabilities
#: before relying on them.
PROTOCOL_VERSION = 3
MIN_PROTOCOL_VERSION = 1
SUPPORTED_VERSIONS = frozenset(
    range(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION + 1)
)

OPS = frozenset(
    {
        "analyze",
        "analyze_program",
        "explain",
        "stats",
        "health",
        "shutdown",
        "open_session",
        "update_source",
        "graph",
    }
)

# One line must always fit in a bounded buffer: requests beyond this
# are rejected with a parse error instead of ballooning server memory.
MAX_LINE_BYTES = 4 * 1024 * 1024


class ErrorCode:
    """Typed error codes a response can carry."""

    PARSE = "parse_error"  # line was not a valid JSON object
    BAD_REQUEST = "bad_request"  # missing/invalid fields or params
    UNSUPPORTED = "unsupported_op"  # unknown operation name
    VERSION = "version_mismatch"  # client protocol version != server's
    SOURCE = "source_error"  # source text failed to compile/extract
    OVERLOADED = "overloaded"  # backpressure: try again later
    SHUTTING_DOWN = "shutting_down"  # server is draining
    UNKNOWN_SESSION = "unknown_session"  # session id absent: replay your journal
    INTERNAL = "internal_error"  # unexpected server-side failure

    ALL = frozenset(
        {
            PARSE,
            BAD_REQUEST,
            UNSUPPORTED,
            VERSION,
            SOURCE,
            OVERLOADED,
            SHUTTING_DOWN,
            UNKNOWN_SESSION,
            INTERNAL,
        }
    )


class ProtocolError(Exception):
    """A request that cannot be served, with its wire error code."""

    def __init__(self, code: str, message: str, request_id: Any = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id


@dataclass(frozen=True)
class Request:
    """One decoded request line."""

    id: Any
    op: str
    params: dict = field(default_factory=dict)
    version: int = PROTOCOL_VERSION


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_request(
    op: str,
    params: dict | None = None,
    request_id: Any = None,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    line = canonical_json(
        {"v": version, "id": request_id, "op": op, "params": params or {}}
    )
    return line.encode("utf-8") + b"\n"


def decode_request(line: str | bytes) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on defects.

    The error carries whatever request id could be salvaged, so the
    server can still address its error response.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        blob = json.loads(line)
    except ValueError as err:
        raise ProtocolError(ErrorCode.PARSE, f"invalid JSON: {err}") from err
    if not isinstance(blob, dict):
        raise ProtocolError(
            ErrorCode.PARSE, "request must be a JSON object"
        )
    request_id = blob.get("id")
    version = blob.get("v", PROTOCOL_VERSION)
    if not isinstance(version, int) or version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            ErrorCode.VERSION,
            f"protocol version {version!r} not supported "
            f"(server speaks {MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION})",
            request_id,
        )
    op = blob.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "missing 'op' field", request_id
        )
    if op not in OPS:
        raise ProtocolError(
            ErrorCode.UNSUPPORTED,
            f"unknown op {op!r} (supported: {', '.join(sorted(OPS))})",
            request_id,
        )
    params = blob.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "'params' must be an object", request_id
        )
    return Request(id=request_id, op=op, params=params, version=version)


def ok_response(request_id: Any, result: Any) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: str, message: str) -> dict:
    assert code in ErrorCode.ALL, code
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def encode_response(response: dict) -> bytes:
    return canonical_json(response).encode("utf-8") + b"\n"


def decode_response(line: str | bytes) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    blob = json.loads(line)
    if not isinstance(blob, dict) or "ok" not in blob:
        raise ProtocolError(ErrorCode.PARSE, "malformed response line")
    return blob


# -- canonical report encoding ----------------------------------------------


def report_to_wire(report: DependenceReport) -> dict:
    """The canonical wire form of one dependence answer.

    Deliberately excludes serving-state fields (``from_memo``,
    ``deduped``) and the witness point (an arbitrary representative):
    the encoding is a pure function of the *answer*, so a warm second
    run is bit-identical to a cold first one and to the serial batch
    engine's output for the same query.
    """
    return {
        "ref1": report.ref1,
        "ref2": report.ref2,
        "dependent": report.dependent,
        "decided_by": report.decided_by,
        "exact": report.exact,
        "distance": list(report.distance)
        if report.distance is not None
        else None,
        "directions": sorted(list(v) for v in report.directions)
        if report.directions is not None
        else None,
        "n_common": report.n_common,
        "degraded": report.degraded_reason is not None,
        "degraded_reason": report.degraded_reason,
    }


def degraded_report(
    ref1: str,
    ref2: str,
    n_common: int,
    want_directions: bool = True,
    reason: str = REASON_DEADLINE,
) -> dict:
    """The conservative verdict a blown deadline degrades to.

    "Dependent, under every direction" is the analysis lattice's top:
    it is correct for *any* query (a dependence tester may always
    over-approximate), merely imprecise, so a deadline can never make
    the server lie — only hedge, and say so via ``degraded: true``
    (with ``degraded_reason`` naming the blown limit; see
    :data:`repro.robust.budget.ALL_REASONS`).
    """
    vectors = [[Direction.ANY] * n_common] if n_common else [[]]
    return {
        "ref1": ref1,
        "ref2": ref2,
        "dependent": True,
        "decided_by": "deadline",
        "exact": False,
        "distance": None,
        "directions": vectors if want_directions else None,
        "n_common": n_common,
        "degraded": True,
        "degraded_reason": reason,
    }
