"""The cluster supervisor: a worker fleet behind one router process.

``repro serve --cluster N`` runs this supervisor: it launches N
:class:`~repro.serve.server.DependenceServer` worker daemons as child
processes (each on its own OS process — N processes beat one GIL-bound
process on a multi-core host), embeds a
:class:`~repro.serve.router.ClusterRouter` in its own event loop, and
keeps the fleet healthy:

* **announce** — one ``{"serving": ...}`` line on stdout describing the
  router endpoint and every worker (id, port, pid — the pids are what
  the chaos harness kills);
* **warmth sharing** — every worker gets the same ``--spill-dir``, so
  their memo tables gossip through periodic spill images and a hit on
  any node warms the fleet;
* **crash supervision** — a worker that dies unexpectedly (kill -9) is
  ejected from the ring (its in-flight queries replay onto the
  re-sharded ring; see :mod:`repro.serve.router`) and restarted with
  the same ring id, moving its segment back once it announces;
* **rolling restart** — :meth:`ClusterSupervisor.rolling_restart`
  drains one worker at a time through the SIGTERM drain path while the
  router re-shards around it, so the fleet upgrades with zero lost
  queries;
* **graceful drain** — SIGTERM (or the ``shutdown`` op at the router)
  first drains the router (new analysis ops get ``shutting_down``,
  pending forwarded work completes), then SIGTERMs every worker and
  exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import tempfile
import threading
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.serve import protocol
from repro.serve.router import ClusterRouter, RouterConfig

__all__ = ["ClusterConfig", "ClusterSupervisor"]


@dataclass
class ClusterConfig:
    """Everything the supervisor can be configured with."""

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0  # router port; 0 picks a free one (announced)
    announce: bool = True
    replicas: int = 64  # ring positions per worker
    spill_dir: str | None = None  # None: a private tempdir per cluster
    spill_interval_s: float = 2.0
    worker_start_timeout_s: float = 60.0
    restart_backoff_s: float = 0.1
    # Extra CLI flags appended to every worker's ``repro serve`` argv
    # (budgets, queue limits, deadlines, ... — whatever the operator
    # passed to ``repro serve --cluster N`` rides through verbatim).
    worker_args: tuple[str, ...] = field(default_factory=tuple)


class ClusterSupervisor:
    """Runs the router plus N supervised worker daemons until drained."""

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config if config is not None else ClusterConfig()
        if self.config.workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.router = ClusterRouter(
            RouterConfig(
                host=self.config.host,
                port=self.config.port,
                announce=False,
                replicas=self.config.replicas,
                install_signal_handlers=False,
            ),
            on_shutdown=None,  # router drain is awaited inline below
        )
        self.started = threading.Event()
        self.procs: dict[str, asyncio.subprocess.Process] = {}
        self.restarts = 0
        self.spill_dir: Path | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._expected_exits: set[str] = set()
        self._tasks: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Supervise until drained; returns the process exit code (0)."""
        asyncio.run(self._main())
        return 0

    def request_shutdown(self) -> None:
        """Begin a graceful cluster drain; safe from any thread."""
        self.router.request_shutdown()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (RuntimeError, NotImplementedError, ValueError):
                break
        self.spill_dir = Path(
            self.config.spill_dir
            if self.config.spill_dir is not None
            else tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self.spill_dir.mkdir(parents=True, exist_ok=True)

        router_done = self._spawn(self.router._main())
        while not self.router.started.is_set():
            await asyncio.sleep(0.01)
        try:
            for index in range(self.config.workers):
                await self._start_worker(f"w{index}")
            if self.config.announce:
                print(
                    protocol.canonical_json({"serving": self.router.describe()}),
                    flush=True,
                )
            self.started.set()
            # The router's _main returns once a drain was requested (via
            # signal or the shutdown op) and its pending work finished.
            await router_done
        finally:
            await self._stop_workers()

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def _stop_workers(self) -> None:
        self._draining = True
        for worker_id, proc in tuple(self.procs.items()):
            if proc.returncode is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except ProcessLookupError:
                    pass
        for worker_id, proc in tuple(self.procs.items()):
            try:
                await asyncio.wait_for(proc.wait(), timeout=30.0)
            except asyncio.TimeoutError:
                proc.kill()
                await proc.wait()
        for task in tuple(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)

    # -- workers -----------------------------------------------------------

    def _worker_argv(self, worker_id: str) -> list[str]:
        assert self.spill_dir is not None
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.config.host,
            "--port",
            "0",
            "--worker-id",
            worker_id,
            "--spill-dir",
            str(self.spill_dir),
            "--spill-interval",
            str(self.config.spill_interval_s),
            *self.config.worker_args,
        ]

    async def _start_worker(self, worker_id: str) -> None:
        env = dict(os.environ)
        # The children must import the same repro the supervisor runs,
        # installed or straight from a source tree.
        import repro

        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = await asyncio.create_subprocess_exec(
            *self._worker_argv(worker_id),
            stdout=asyncio.subprocess.PIPE,
            stderr=None,
            env=env,
        )
        try:
            line = await asyncio.wait_for(
                proc.stdout.readline(),
                timeout=self.config.worker_start_timeout_s,
            )
            announce = json.loads(line)["serving"]
        except Exception:
            proc.kill()
            await proc.wait()
            raise RuntimeError(
                f"worker {worker_id} failed to announce its port"
            ) from None
        self.procs[worker_id] = proc
        self._spawn(self._drain_stdout(proc))
        self._spawn(self._watch(worker_id, proc))
        self.router.add_worker(
            worker_id, announce["host"], announce["port"], pid=proc.pid
        )

    async def _drain_stdout(self, proc: asyncio.subprocess.Process) -> None:
        """Keep the child's stdout pipe from ever filling up."""
        assert proc.stdout is not None
        while await proc.stdout.readline():
            pass

    async def _watch(
        self, worker_id: str, proc: asyncio.subprocess.Process
    ) -> None:
        """Supervise one worker: restart it when it dies unexpectedly."""
        code = await proc.wait()
        if self._draining or worker_id in self._expected_exits:
            return
        if self.procs.get(worker_id) is not proc:
            return  # already superseded by a restart
        # Unexpected death (kill -9, crash): take it off the ring now —
        # in-flight queries replay onto the re-sharded ring — and bring
        # a replacement up under the same ring id.
        self.router.registry.inc("cluster.worker_restarts")
        self.router._on_loop(self.router._eject_worker, worker_id, "lost")
        self.restarts += 1
        backoff = min(
            2.0, self.config.restart_backoff_s * (1 + self.restarts // 5)
        )
        await asyncio.sleep(backoff)
        if self._draining:
            return
        try:
            await self._start_worker(worker_id)
        except (RuntimeError, OSError):
            traceback.print_exc(file=sys.stderr)

    async def rolling_restart(self) -> None:
        """Replace every worker, one at a time, losing zero queries.

        Each worker is drained through its SIGTERM path while the
        router re-shards its ring segment; once it has exited, a fresh
        worker rejoins under the same ring id before the next one
        drains.  The replacement starts warm: it absorbs the drained
        worker's final spill image on its first gossip round.
        """
        for worker_id in sorted(self.procs):
            proc = self.procs[worker_id]
            if proc.returncode is not None:
                continue
            self._expected_exits.add(worker_id)
            self.router.begin_drain(worker_id)
            try:
                proc.send_signal(signal.SIGTERM)
            except ProcessLookupError:
                pass
            await asyncio.wait_for(proc.wait(), timeout=60.0)
            self._expected_exits.discard(worker_id)
            await self._start_worker(worker_id)
