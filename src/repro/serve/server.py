"""The dependence-analysis daemon: asyncio, pipelined, degradable.

One process keeps the analyzer warm for every caller:

* **per-connection sessions** — each TCP (or stdio) connection gets its
  own :class:`~repro.api.AnalysisSession`, but all sessions share the
  server's :class:`~repro.serve.cache.ServeCache` memoizer, so any
  caller's work warms every later caller;
* **request pipelining** — a client may send many request lines without
  waiting; responses carry the request id and may return out of order;
* **bounded concurrency with explicit backpressure** — analysis work
  runs on a thread pool of ``max_inflight`` workers with at most
  ``queue_limit`` requests queued behind it; beyond that the server
  answers immediately with an ``overloaded`` error instead of building
  an unbounded backlog (control-plane ops — ``health``, ``stats``,
  ``shutdown`` — always bypass the queue);
* **deadlines degrade, never hang** — a query exceeding
  ``deadline_ms`` is answered at once with the conservative
  "dependent, all ``*`` directions" verdict flagged ``degraded: true``
  (the lattice top — an over-approximation is always sound); the
  computation keeps running in its worker thread and its eventual
  result still warms the shared memo tables;
* **single-flight coalescing** — identical queries in flight at the
  same moment share one computation;
* **graceful drain** — SIGTERM (or the ``shutdown`` op) stops
  accepting work, answers everything already in flight, persists the
  cache, and exits 0;
* **incremental sessions** (protocol v3) — ``open_session`` /
  ``update_source`` / ``graph`` keep a per-connection
  :class:`~repro.core.incremental.IncrementalSession`, so an editor
  can stream successive versions of a program and pay only for the
  pairs each edit dirtied.  Session ops bypass the fast lane and
  single-flight (they are stateful) but share the admission limit,
  the deadline and the in-analyzer budget; a deadline-degraded
  response never contaminates the retained graph — the shielded
  computation finishes in its worker thread and the session keeps
  only the exact result.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import traceback
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.api import AnalysisConfig, AnalysisSession, DependenceReport
from repro.core.engine import analyze_batch, queries_from_program
from repro.core.incremental import IncrementalSession
from repro.core.persist import dumps as _memo_dumps, loads as _memo_loads
from repro.ir.program import Program, reference_pairs
from repro.ir.serde import query_from_dict
from repro.lang.errors import LangError
from repro.obs.metrics import MetricsRegistry
from repro.robust.budget import REASON_DEADLINE
from repro.serve import protocol
from repro.serve.cache import DEFAULT_MAX_BYTES, ServeCache, SingleFlight
from repro.serve.pool import WorkerPool
from repro.serve.protocol import ErrorCode, ProtocolError, Request

__all__ = ["ServeConfig", "DependenceServer"]


class _WireFastLane:
    """Pre-serialized answers for repeated ``analyze`` requests.

    Maps the request's canonical params text to the ``canonical_json``
    bytes of a prior non-degraded result.  A hit is answered by splicing
    the cached bytes straight into a response frame — no report object,
    no session, no executor hop, no admission bookkeeping.  The splice
    is bit-identical to the slow path because the response encoding
    sorts its top-level keys (``"id" < "ok" < "result"``) and the cached
    segment *is* the slow path's own serialization of the result.

    Bounded LRU: insertion order doubles as recency (hits re-insert).
    Only ever touched from the event loop, so no lock is needed.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: dict[str, bytes] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> bytes | None:
        entries = self._entries
        data = entries.get(key)
        if data is not None:
            del entries[key]  # re-insert: dict order is recency order
            entries[key] = data
        return data

    def put(self, key: str, data: bytes) -> None:
        entries = self._entries
        if key in entries:
            del entries[key]
        elif len(entries) >= self.capacity:
            del entries[next(iter(entries))]
        entries[key] = data


class _IncrementalSessions:
    """One connection's incremental re-analysis sessions.

    The lock serializes every stateful op on the connection: a
    pipelined ``update_source`` racing a still-running ``open_session``
    simply waits for it, so ops apply in the order they were sent even
    though each runs on its own worker thread.
    """

    __slots__ = ("lock", "sessions", "last", "epochs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.sessions: dict[str, IncrementalSession] = {}
        self.last: dict[str, dict] = {}  # session id → last update summary
        # Session id → incarnation epoch (durable-session recovery): a
        # re-open with a *lower* epoch than the live session is a stale
        # replay from before a failover and is rejected; equal or
        # higher replaces the session wholesale.
        self.epochs: dict[str, int] = {}


def _ok_frame(request_id: Any, result_bytes: bytes) -> bytes:
    """Splice a cached result into a complete ``ok`` response line.

    Bit-identical to ``encode_response(ok_response(id, result))``:
    ``canonical_json`` sorts the top-level keys, which already appear
    here in sorted order, and ``result_bytes`` is itself canonical.
    """
    head = json.dumps(request_id, sort_keys=True, separators=(",", ":"))
    return (
        b'{"id":'
        + head.encode("utf-8")
        + b',"ok":true,"result":'
        + result_bytes
        + b"}\n"
    )


@dataclass
class ServeConfig:
    """Everything the daemon can be configured with."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port (announced on stdout)
    stdio: bool = False  # serve one session over stdin/stdout instead
    cache_path: str | None = None  # tier-2 store (None: in-memory only)
    cache_max_bytes: int = DEFAULT_MAX_BYTES
    max_inflight: int = 8  # analysis worker threads
    queue_limit: int = 32  # admitted-but-waiting requests beyond that
    deadline_ms: float | None = None  # per-query budget (None: unbounded)
    batch_threshold: int = 16  # program pairs at which the pool kicks in
    pool_jobs: int | None = None  # worker processes (None: CPU count)
    improved: bool = True
    symmetry: bool = False
    fm_budget: int = 256
    announce: bool = True  # print the {"serving": ...} line on stdout
    # Cluster membership (set by the repro.serve.cluster supervisor):
    # the worker's stable ring id, plus the shared warmth-spill
    # directory the fleet gossips memo images through.  A worker with a
    # spill_dir periodically writes its memo tables to
    # ``<spill_dir>/<worker_id>.memo.json`` and absorbs every peer
    # image that changed since its last scan, so a hit on any node
    # warms the whole fleet.
    worker_id: str | None = None
    spill_dir: str | None = None
    spill_interval_s: float = 2.0
    # In-analyzer resource governor (repro.robust.budget): bounds each
    # query *inside* the worker, complementing deadline_ms, which only
    # bounds how long the caller waits.  A blown budget degrades the
    # answer conservatively, flagged with its reason code.
    budget: Any = None


class DependenceServer:
    """The long-running dependence-query service."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config if config is not None else ServeConfig()
        self.registry = MetricsRegistry()
        self.cache = ServeCache(
            path=self.config.cache_path,
            max_bytes=self.config.cache_max_bytes,
            improved=self.config.improved,
            symmetry=self.config.symmetry,
            registry=self.registry,
        )
        self.pool = WorkerPool(jobs=self.config.pool_jobs)
        self.flight = SingleFlight(registry=self.registry)
        self.fastlane = _WireFastLane()
        self.started = threading.Event()
        self.bound_host: str | None = None
        self.bound_port: int | None = None
        self.draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested = threading.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="repro-serve",
        )
        self._admitted = 0  # analysis requests admitted, not yet answered
        self._running = 0  # analysis requests holding a worker thread
        self._semaphore: asyncio.Semaphore | None = None
        self._pending: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._session_registries: list[MetricsRegistry] = []
        self._sessions_open = 0
        self._session_counter = 0  # incremental session ids (event loop only)
        self._spill_task: asyncio.Task | None = None
        self._peer_mtimes: dict[str, int] = {}
        self._last_spilled_entries = -1

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Serve until drained; returns the process exit code (0)."""
        asyncio.run(self._main())
        return 0

    def request_shutdown(self) -> None:
        """Begin a graceful drain; safe to call from any thread."""
        self._shutdown_requested.set()
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(lambda: None)  # wake the waiter
            except RuntimeError:
                pass  # loop already closed

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._semaphore = asyncio.Semaphore(self.config.max_inflight)
        self._install_signal_handlers()
        if self.config.spill_dir is not None:
            self._spill_task = asyncio.get_running_loop().create_task(
                self._spill_loop()
            )
        if self.config.stdio:
            await self._serve_stdio()
        else:
            await self._serve_tcp()

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (RuntimeError, NotImplementedError, ValueError):
                # Not on the main thread (tests) or unsupported platform;
                # request_shutdown() remains available programmatically.
                break

    async def _serve_tcp(self) -> None:
        server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        sockname = server.sockets[0].getsockname()
        self.bound_host, self.bound_port = sockname[0], sockname[1]
        if self.config.announce:
            print(
                protocol.canonical_json(
                    {
                        "serving": {
                            "host": self.bound_host,
                            "port": self.bound_port,
                            "protocol": protocol.PROTOCOL_VERSION,
                        }
                    }
                ),
                flush=True,
            )
        self.started.set()
        try:
            await self._wait_for_shutdown()
            self.draining = True
            server.close()
            await server.wait_closed()
            await self._drain()
        finally:
            await self._teardown()

    async def _serve_stdio(self) -> None:
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=protocol.MAX_LINE_BYTES)
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        transport, proto = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, proto, reader, loop)
        self.started.set()
        try:
            await self._connection_loop(reader, writer)
            self.draining = True
            await self._drain()
        finally:
            await self._teardown()

    async def _wait_for_shutdown(self) -> None:
        while not self._shutdown_requested.is_set():
            await asyncio.sleep(0.05)

    async def _drain(self) -> None:
        """Answer everything already admitted, then let connections go."""
        while self._pending:
            await asyncio.gather(*tuple(self._pending), return_exceptions=True)
        for writer in tuple(self._writers):
            try:
                writer.close()
            except Exception:
                pass

    async def _teardown(self) -> None:
        if self._spill_task is not None:
            self._spill_task.cancel()
            await asyncio.gather(self._spill_task, return_exceptions=True)
        self._executor.shutdown(wait=True)
        self.pool.close()
        if self.cache.path is not None:
            self.cache.save()
        if self.config.spill_dir is not None:
            # Final spill so a drained worker's warmth outlives it (the
            # supervisor's replacement absorbs it on its first scan).
            self._spill_once()

    # -- memo-warmth sharing -----------------------------------------------

    async def _spill_loop(self) -> None:
        """Periodically gossip memo warmth through the spill directory."""
        interval = max(0.05, self.config.spill_interval_s)
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            await loop.run_in_executor(None, self._spill_once)

    def _spill_once(self) -> None:
        """One gossip round: absorb changed peer images, write our own.

        Any failure is contained — spill warmth is a bonus, never a
        dependency — and the next round retries.
        """
        assert self.config.spill_dir is not None
        try:
            directory = Path(self.config.spill_dir)
            directory.mkdir(parents=True, exist_ok=True)
            own_name = f"{self.config.worker_id or 'worker'}.memo.json"
            for path in sorted(directory.glob("*.memo.json")):
                if path.name == own_name:
                    continue
                try:
                    mtime = path.stat().st_mtime_ns
                except OSError:
                    continue
                if self._peer_mtimes.get(path.name) == mtime:
                    continue  # unchanged since our last absorb
                self._peer_mtimes[path.name] = mtime
                self.cache.absorb(path)
            count = self.cache.entry_count()
            if count != self._last_spilled_entries:
                self.cache.spill(directory / own_name)
                self._last_spilled_entries = self.cache.entry_count()
        except Exception as err:  # noqa: BLE001 — gossip must not kill serve
            self.registry.inc("serve.spill.errors")
            warnings.warn(
                f"memo spill round failed: {err!r}", RuntimeWarning,
                stacklevel=2,
            )

    # -- connections -------------------------------------------------------

    def _make_session(self) -> AnalysisSession:
        return AnalysisSession(
            AnalysisConfig(
                memo=True,
                improved=self.config.improved,
                symmetry=self.config.symmetry,
                fm_budget=self.config.fm_budget,
                want_witness=False,
                jobs=1,
                budget=self.config.budget,
            ),
            memoizer=self.cache.memoizer,
        )

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await self._connection_loop(reader, writer)

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = self._make_session()
        self._session_registries.append(session.registry)
        self._sessions_open += 1
        self.registry.inc("serve.connections")
        write_lock = asyncio.Lock()
        explain_lock = threading.Lock()
        inc_sessions = _IncrementalSessions()
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Oversized line or torn connection: nothing sane to
                    # answer on this stream anymore.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._handle_line(
                        line,
                        writer,
                        write_lock,
                        session,
                        explain_lock,
                        inc_sessions,
                    )
                )
                self._pending.add(task)
                task.add_done_callback(self._pending.discard)
        finally:
            self._sessions_open -= 1
            if self.draining:
                # _drain() owns closing writers after in-flight work.
                return
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    # -- request handling --------------------------------------------------

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        session: AnalysisSession,
        explain_lock: threading.Lock,
        inc_sessions: _IncrementalSessions,
    ) -> None:
        try:
            request = protocol.decode_request(line)
        except ProtocolError as err:
            await self._write(
                writer,
                write_lock,
                protocol.error_response(err.request_id, err.code, err.message),
            )
            self.registry.inc_family("serve.errors", err.code)
            return
        response = await self._dispatch(
            request, session, explain_lock, inc_sessions
        )
        await self._write(writer, write_lock, response)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: dict | bytes,
    ) -> None:
        # Fast-lane hits arrive pre-framed as bytes; everything else is
        # a response dict that encodes canonically here.
        payload = (
            response
            if isinstance(response, bytes)
            else protocol.encode_response(response)
        )
        try:
            async with write_lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; the work still warmed the cache

    #: Ops that mutate per-connection session state.  They bypass the
    #: fast lane and single-flight — replaying a cached answer or
    #: coalescing two updates would skip a state transition — but share
    #: the draining check, admission limit, worker pool and deadline
    #: with every other analysis op.
    _STATEFUL_OPS = frozenset({"open_session", "update_source", "graph"})

    async def _dispatch(
        self,
        request: Request,
        session: AnalysisSession,
        explain_lock: threading.Lock,
        inc_sessions: _IncrementalSessions,
    ) -> dict | bytes:
        op = request.op
        self.registry.inc_family("serve.requests", op)
        if op == "health":
            return protocol.ok_response(request.id, self._health())
        if op == "stats":
            return protocol.ok_response(request.id, self._stats())
        if op == "shutdown":
            self.request_shutdown()
            return protocol.ok_response(request.id, {"draining": True})

        # Analysis ops from here on: refuse while draining, push back
        # when saturated, otherwise admit under the semaphore.
        if self.draining or self._shutdown_requested.is_set():
            self.registry.inc_family("serve.errors", ErrorCode.SHUTTING_DOWN)
            return protocol.error_response(
                request.id, ErrorCode.SHUTTING_DOWN, "server is draining"
            )
        params_text = protocol.canonical_json(request.params)
        lane_key: str | None = None
        if op == "analyze":
            # Zero-copy fast lane: a repeated query is answered from the
            # pre-serialized wire bytes of its previous answer, before
            # admission — it costs no worker thread and no queue slot.
            lane_key = params_text
            cached = self.fastlane.get(lane_key)
            if cached is not None:
                self.registry.inc("serve.fastlane.hits")
                return _ok_frame(request.id, cached)
        limit = self.config.max_inflight + self.config.queue_limit
        if self._admitted >= limit:
            self.registry.inc("serve.backpressure")
            self.registry.inc_family("serve.errors", ErrorCode.OVERLOADED)
            return protocol.error_response(
                request.id,
                ErrorCode.OVERLOADED,
                f"{self._admitted} requests in flight (limit {limit}); "
                "retry later",
            )
        self._admitted += 1
        self.registry.put("serve.inflight", self._admitted)
        start = _now_ns()
        try:
            if op in self._STATEFUL_OPS:
                result = await self._run_analysis_op(
                    request, session, explain_lock, inc_sessions
                )
            else:
                flight_key = (op, params_text)
                result = await self.flight.run(
                    flight_key,
                    lambda: self._run_analysis_op(
                        request, session, explain_lock, inc_sessions
                    ),
                )
            if (
                lane_key is not None
                and isinstance(result, dict)
                and not result.get("degraded", True)
            ):
                # Serialize the result once: it becomes both this
                # response's payload and the fast-lane entry.
                data = protocol.canonical_json(result).encode("utf-8")
                self.fastlane.put(lane_key, data)
                return _ok_frame(request.id, data)
            return protocol.ok_response(request.id, result)
        except ProtocolError as err:
            self.registry.inc_family("serve.errors", err.code)
            return protocol.error_response(request.id, err.code, err.message)
        except Exception as err:  # noqa: BLE001 — the daemon must not die
            traceback.print_exc(file=sys.stderr)
            self.registry.inc_family("serve.errors", ErrorCode.INTERNAL)
            return protocol.error_response(
                request.id, ErrorCode.INTERNAL, f"{type(err).__name__}: {err}"
            )
        finally:
            self._admitted -= 1
            self.registry.put("serve.inflight", self._admitted)
            self.registry.observe(f"time.serve.{op}", _now_ns() - start)

    # -- analysis ops ------------------------------------------------------

    async def _run_analysis_op(
        self,
        request: Request,
        session: AnalysisSession,
        explain_lock: threading.Lock,
        inc_sessions: _IncrementalSessions,
    ) -> Any:
        assert self._semaphore is not None
        async with self._semaphore:
            self._running += 1
            try:
                if request.op == "analyze":
                    return await self._op_analyze(request, session)
                if request.op == "explain":
                    return await self._op_explain(
                        request, session, explain_lock
                    )
                if request.op == "analyze_program":
                    return await self._op_analyze_program(request, session)
                if request.op == "open_session":
                    return await self._op_open_session(request, inc_sessions)
                if request.op == "update_source":
                    return await self._op_update_source(request, inc_sessions)
                if request.op == "graph":
                    return await self._op_graph(request, inc_sessions)
                raise ProtocolError(
                    ErrorCode.UNSUPPORTED, f"unknown op {request.op!r}"
                )
            finally:
                self._running -= 1

    def _decode_query(
        self, params: dict
    ) -> tuple[Any, Any, Any, Any]:
        """``query`` serde object, or ``source`` + ``pair`` index."""
        if "query" in params:
            try:
                return query_from_dict(params["query"])
            except (KeyError, TypeError, ValueError) as err:
                raise ProtocolError(
                    ErrorCode.BAD_REQUEST, f"malformed query: {err!r}"
                ) from err
        if "source" in params:
            program = self._compile(params["source"], params.get("lang"))
            pairs = reference_pairs(program)
            index = params.get("pair", 0)
            if not isinstance(index, int) or not 0 <= index < len(pairs):
                raise ProtocolError(
                    ErrorCode.BAD_REQUEST,
                    f"pair index {index!r} out of range "
                    f"(0..{len(pairs) - 1})",
                )
            site1, site2 = pairs[index]
            return site1.ref, site1.nest, site2.ref, site2.nest
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "params need either 'query' or 'source'"
        )

    def _compile(self, source: Any, lang: Any = None) -> Program:
        if not isinstance(source, str):
            raise ProtocolError(ErrorCode.BAD_REQUEST, "'source' must be text")
        if lang is None:
            lang = "loop"
        if lang != "loop":
            from repro.frontends import LANGUAGES, SkipReason, extract_source

            if lang not in LANGUAGES:
                raise ProtocolError(
                    ErrorCode.BAD_REQUEST,
                    f"unknown lang {lang!r}; expected one of "
                    f"{', '.join(LANGUAGES)}",
                )
            extraction = extract_source(source, lang=lang, name="<request>")
            if not extraction.program.statements and any(
                record.reason == SkipReason.PARSE_ERROR
                for record in extraction.skipped
            ):
                raise ProtocolError(
                    ErrorCode.SOURCE, extraction.skipped[0].detail
                )
            return extraction.program
        from repro.opt import compile_source

        try:
            return compile_source(source, name="<request>", strict=False).program
        except LangError as err:
            raise ProtocolError(ErrorCode.SOURCE, str(err)) from err

    async def _with_deadline(self, work, degrade):
        """Run blocking ``work`` on the executor under the deadline.

        On timeout the caller's ``degrade()`` answer is returned at
        once, flagged; the worker thread keeps going and its eventual
        result still lands in the shared memo tables.
        """
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, work)
        deadline = self.config.deadline_ms
        if deadline is None:
            return await future
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), timeout=deadline / 1000.0
            )
        except asyncio.TimeoutError:
            self.registry.inc("serve.degraded")
            # The serving deadline is one more blown resource budget:
            # account for it in the same robust.degraded.* family the
            # in-analyzer governor uses, so one metrics query covers
            # every degradation path.
            self.registry.inc_family("robust.degraded", REASON_DEADLINE)
            return degrade()

    async def _op_analyze(self, request: Request, session: AnalysisSession):
        ref1, nest1, ref2, nest2 = self._decode_query(request.params)
        want_directions = bool(request.params.get("directions", True))

        def work() -> dict:
            report = session.analyze(
                ref1, nest1, ref2, nest2, want_directions=want_directions
            )
            return protocol.report_to_wire(report)

        def degrade() -> dict:
            return protocol.degraded_report(
                str(ref1),
                str(ref2),
                nest1.common_prefix_depth(nest2),
                want_directions,
            )

        return await self._with_deadline(work, degrade)

    async def _op_explain(
        self,
        request: Request,
        session: AnalysisSession,
        explain_lock: threading.Lock,
    ):
        ref1, nest1, ref2, nest2 = self._decode_query(request.params)
        want_directions = bool(request.params.get("directions", True))

        def work() -> dict:
            # explain() temporarily swaps the session's sink; one at a
            # time per session keeps pipelined explains untangled.
            with explain_lock:
                explained = session.explain(
                    ref1, nest1, ref2, nest2, want_directions=want_directions
                )
            return {
                "report": protocol.report_to_wire(explained.report),
                "trace": explained.render(),
                "n_events": len(explained.events),
            }

        def degrade() -> dict:
            return {
                "report": protocol.degraded_report(
                    str(ref1),
                    str(ref2),
                    nest1.common_prefix_depth(nest2),
                    want_directions,
                ),
                "trace": "(degraded: deadline exceeded)",
                "n_events": 0,
            }

        return await self._with_deadline(work, degrade)

    async def _op_analyze_program(
        self, request: Request, session: AnalysisSession
    ):
        if "source" not in request.params:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "analyze_program needs 'source'"
            )
        program = self._compile(
            request.params["source"], request.params.get("lang")
        )
        want_directions = bool(request.params.get("directions", True))
        queries = queries_from_program(program)
        use_pool = len(queries) >= self.config.batch_threshold

        def work() -> dict:
            # Snapshot the shared memoizer into a plain (picklable)
            # warm-start table; fold the batch's merged table back in.
            warm = _memo_loads(_memo_dumps(self.cache.memoizer))
            report = analyze_batch(
                queries,
                jobs=self.pool.jobs if use_pool else 1,
                warm=warm,
                want_directions=want_directions,
                improved=self.config.improved,
                symmetry=self.config.symmetry,
                fm_budget=self.config.fm_budget,
                pool_map=self.pool.map_shards if use_pool else None,
                budget=self.config.budget,
            )
            self.cache.memoizer.merge_from(report.memoizer)
            session.stats.merge(report.stats)
            pairs = [
                protocol.report_to_wire(
                    DependenceReport.from_results(
                        str(outcome.query.ref1),
                        str(outcome.query.ref2),
                        outcome.result,
                        outcome.directions,
                    )
                )
                for outcome in report.outcomes
            ]
            return {"pairs": pairs, "summary": report.summary()}

        def degrade() -> dict:
            pairs = [
                protocol.degraded_report(
                    str(query.ref1),
                    str(query.ref2),
                    query.nest1.common_prefix_depth(query.nest2),
                    want_directions,
                )
                for query in queries
            ]
            return {"pairs": pairs, "summary": {"degraded": True}}

        return await self._with_deadline(work, degrade)

    # -- incremental session ops (protocol v3) -----------------------------

    def _open_incremental(self) -> IncrementalSession:
        # Same snapshot/merge-back pattern as analyze_program: the
        # session warm-starts from everything the server ever computed,
        # and every update folds its new memo entries back in.
        return IncrementalSession(
            memoizer=_memo_loads(_memo_dumps(self.cache.memoizer)),
            jobs=1,
            improved=self.config.improved,
            symmetry=self.config.symmetry,
            fm_budget=self.config.fm_budget,
            budget=self.config.budget,
        )

    def _apply_update(
        self,
        inc_sessions: _IncrementalSessions,
        sid: str,
        session: IncrementalSession,
        program: Program,
        verify: bool,
    ) -> dict:
        """Run one update under the connection lock; returns its summary.

        Caller holds ``inc_sessions.lock``.
        """
        report = session.update(program, verify=verify)
        self.cache.memoizer.merge_from(session.memoizer)
        summary = report.summary()
        summary["session"] = sid
        summary["degraded"] = False
        if report.degraded_pairs:
            self.registry.inc("serve.sessions.degraded_pairs")
        inc_sessions.last[sid] = summary
        return summary

    async def _op_open_session(
        self, request: Request, inc_sessions: _IncrementalSessions
    ):
        # Durable-session fields (additive, v3): a client may mint its
        # own id — the key its journal replays under and the router
        # pins to the hash ring — plus a monotonic incarnation epoch.
        sid_param = request.params.get("session_id")
        epoch = request.params.get("epoch", 0)
        if sid_param is not None and (
            not isinstance(sid_param, str) or not sid_param
        ):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "'session_id' must be a non-empty string"
            )
        if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "'epoch' must be a non-negative integer"
            )
        # The id is allocated before the work runs, so a deadline can
        # degrade the *response* while the shielded computation still
        # completes and the session remains usable under this id.
        if sid_param is None:
            self._session_counter += 1
            sid = f"s{self._session_counter}"
        else:
            sid = sid_param
        source = request.params.get("source")
        lang = request.params.get("lang")
        program = self._compile(source, lang) if source is not None else None
        verify = bool(request.params.get("verify", False))

        def work() -> dict:
            with inc_sessions.lock:
                live = inc_sessions.epochs.get(sid)
                if live is not None and epoch < live:
                    # A frame from a pre-failover incarnation arriving
                    # late must never clobber the rebuilt session.
                    raise ProtocolError(
                        ErrorCode.BAD_REQUEST,
                        f"stale epoch {epoch} for session {sid!r} "
                        f"(live epoch {live})",
                    )
                session = self._open_incremental()
                inc_sessions.sessions[sid] = session
                inc_sessions.epochs[sid] = epoch
                inc_sessions.last.pop(sid, None)
                self.registry.inc("serve.sessions.opened")
                result = {"session": sid, "epoch": epoch, "degraded": False}
                if program is not None:
                    result["update"] = self._apply_update(
                        inc_sessions, sid, session, program, verify
                    )
                return result

        def degrade() -> dict:
            return {"session": sid, "degraded": True}

        return await self._with_deadline(work, degrade)

    async def _op_update_source(
        self, request: Request, inc_sessions: _IncrementalSessions
    ):
        sid = request.params.get("session")
        if "source" not in request.params:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "update_source needs 'source'"
            )
        program = self._compile(
            request.params["source"], request.params.get("lang")
        )
        verify = bool(request.params.get("verify", False))

        def work() -> dict:
            # Session lookup happens under the lock, not at dispatch
            # time: a pipelined update racing its own open_session must
            # wait for the open to land, not fail on a missing id.
            with inc_sessions.lock:
                session = inc_sessions.sessions.get(sid)
                if session is None:
                    # Typed so a durable client knows to replay its
                    # journal (the session died with a worker) rather
                    # than treat this as a caller bug.
                    raise ProtocolError(
                        ErrorCode.UNKNOWN_SESSION, f"unknown session {sid!r}"
                    )
                return self._apply_update(
                    inc_sessions, sid, session, program, verify
                )

        def degrade() -> dict:
            # The hedge covers only this response.  The shielded update
            # still completes under the lock, and only its exact result
            # is retained — a degraded verdict never enters the
            # session's graph or pair cache via the deadline path.
            return {"session": sid, "degraded": True}

        return await self._with_deadline(work, degrade)

    async def _op_graph(
        self, request: Request, inc_sessions: _IncrementalSessions
    ):
        sid = request.params.get("session")

        def work() -> dict:
            with inc_sessions.lock:
                session = inc_sessions.sessions.get(sid)
                if session is None:
                    raise ProtocolError(
                        ErrorCode.UNKNOWN_SESSION, f"unknown session {sid!r}"
                    )
                graph = session.graph
                if graph is None or session.program is None:
                    raise ProtocolError(
                        ErrorCode.BAD_REQUEST,
                        f"session {sid!r} has not analyzed a program yet",
                    )
                return {
                    "session": sid,
                    "statements": len(session.program.statements),
                    "edges": graph.edge_dicts(),
                    "dot": graph.to_dot(),
                    "update": inc_sessions.last.get(sid),
                    "degraded": False,
                }

        def degrade() -> dict:
            return {"session": sid, "degraded": True}

        return await self._with_deadline(work, degrade)

    # -- control-plane ops -------------------------------------------------

    def _health(self) -> dict:
        import repro

        return {
            "status": "draining" if self.draining else "ok",
            "protocol": protocol.PROTOCOL_VERSION,
            "server": repro.__version__,
            # Capability advertisement (protocol v2): this endpoint is a
            # bare worker, not a consistent-hash router.
            "cluster": False,
            # Capability advertisement (protocol v3): incremental
            # session ops are served here.
            "sessions": True,
            # Source languages accepted via the 'lang' param on
            # analyze/explain/analyze_program/open_session/update_source.
            "frontends": ["loop", "python", "c"],
            "worker_id": self.config.worker_id,
            "inflight": self._admitted,
            "connections": self._sessions_open,
            "cache_entries": self.cache.entry_count(),
        }

    def _stats(self) -> dict:
        merged = MetricsRegistry()
        merged.merge(self.registry)
        for registry in self._session_registries:
            merged.merge(registry)
        return {
            "registry": merged.to_dict(),
            "cache": self.cache.stats(),
            "server": {
                "inflight": self._admitted,
                "running": self._running,
                "draining": self.draining,
                "connections": self._sessions_open,
                "pool_recycles": self.pool.recycles,
                "fastlane_entries": len(self.fastlane),
            },
        }


def _now_ns() -> int:
    import time

    return time.perf_counter_ns()
