"""The cluster router: consistent-hash sharding over worker daemons.

A cluster is N independent :class:`~repro.serve.server.DependenceServer`
workers behind one tiny asyncio router.  The router owns no analyzer
and no memo table; per request it does exactly four cheap things —
parse the line, derive the **shard key** (the canonical JSON text of
the request params, the same canonicalization the workers' wire fast
lane keys on), look the key up on the :class:`HashRing`, and forward
the raw line bytes to the key's home worker.  Responses stream back
verbatim.  Because the ring is deterministic, every canonical key has
exactly one home, so a repeated query always lands on the worker whose
memo tables (and wire fast lane) already hold its answer: warm hits
stay single-probe even at fleet scale.

Failure handling is built around **replay**:

* every forwarded analysis request stays in a per-link pending table
  until its response line arrives;
* a worker that answers ``shutting_down`` (the SIGTERM drain path) or
  whose connection drops (kill -9) is removed from the ring, and every
  pending request it still owed is re-routed to the key's new home and
  resent — analysis is pure, so resending is always safe;
* the supervisor (:mod:`repro.serve.cluster`) restarts dead workers
  and re-adds them to the ring, moving their ring segment back.

Analysis requests therefore never get lost: the client either receives
the worker's answer or the replayed answer from the re-sharded ring,
bit-identical either way (workers share one deterministic analyzer).

Control ops terminate at the router: ``health`` advertises
``cluster: true`` plus the live worker set (the protocol-version-2
capability frame old clients simply ignore), ``stats`` merges the
router's own counters with every worker's registry, and ``shutdown``
drains the whole cluster.

Incremental session ops (protocol v3) are served too — ``sessions:
true`` — by **pinning**: a durable session's client-minted id is the
shard key for every frame it ever sends, so ``open_session`` and all
later ``update_source``/``graph`` frames land on one home worker.
When that worker dies the id re-homes deterministically and the
client's journal replay (see :mod:`repro.serve.client`) rebuilds the
session there, bit-identical by the incremental engine's delta ≡ full
invariant.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import signal
import sys
import threading
import traceback
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.protocol import ErrorCode

__all__ = ["HashRing", "RouterConfig", "ClusterRouter", "shard_key"]

# Analysis ops are forwarded to a worker; control ops terminate at the
# router.  Session ops forward too, but shard on the *session id* (see
# ``_key_for``) so every frame of one durable session pins to one home.
_SESSION_OPS = frozenset({"open_session", "update_source", "graph"})
_FORWARDED_OPS = (
    frozenset({"analyze", "analyze_program", "explain"}) | _SESSION_OPS
)


def shard_key(params: dict) -> bytes:
    """The canonical byte key a request shards on.

    The canonical JSON text of the params object — the same
    canonicalization the workers' wire fast lane keys on, so one wire
    query maps to one byte string everywhere.  Every memo key a worker
    derives from a request is a deterministic function of this text,
    which is what gives each memo entry exactly one home on the ring.
    """
    return protocol.canonical_json(params).encode("utf-8")


def _session_id_of(op: str, params: dict) -> Any:
    """The durable session id a session op carries (None when absent)."""
    return params.get("session_id") if op == "open_session" else params.get("session")


def _key_for(op: str, params: dict) -> bytes:
    """The ring key one request homes on.

    Analysis ops shard on their canonical params (cache affinity);
    session ops shard on the session id alone, so ``open_session`` and
    every later ``update_source``/``graph`` for that id — including
    journal replays after a failover — land on the same worker.
    """
    if op in _SESSION_OPS:
        sid = _session_id_of(op, params)
        return protocol.canonical_json({"session": sid}).encode("utf-8")
    return shard_key(params)


class HashRing:
    """A deterministic consistent-hash ring over worker ids.

    Each node is placed at ``replicas`` positions derived from
    SHA-256 of ``"{node}#{index}"`` — no process-seeded ``hash()``
    anywhere, so placement is identical across runs, processes and
    machines.  A key homes on the first node position at or after
    SHA-256 of the key bytes (wrapping).  Removing a node moves only
    the keys that homed on it (they fall through to their next
    position's owner); every other key keeps its home — the property
    the re-shard-on-drain protocol relies on.
    """

    def __init__(self, nodes: tuple[str, ...] = (), replicas: int = 64):
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._positions: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _digest(data: bytes) -> int:
        return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        points = [
            (self._digest(f"{node}#{index}".encode("utf-8")), node)
            for index in range(self.replicas)
        ]
        merged = sorted(
            list(zip(self._positions, self._owners)) + points
        )
        self._positions = [position for position, _ in merged]
        self._owners = [owner for _, owner in merged]

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        kept = [
            (position, owner)
            for position, owner in zip(self._positions, self._owners)
            if owner != node
        ]
        self._positions = [position for position, _ in kept]
        self._owners = [owner for _, owner in kept]

    def node_for(self, key: bytes) -> str:
        """The home node of ``key``; raises LookupError on an empty ring."""
        if not self._owners:
            raise LookupError("hash ring has no nodes")
        index = bisect_right(self._positions, self._digest(key))
        if index == len(self._owners):
            index = 0
        return self._owners[index]


@dataclass
class RouterConfig:
    """Everything the router process can be configured with."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port (announced on stdout)
    announce: bool = True
    replicas: int = 64  # ring positions per worker
    connect_retry_s: float = 2.0  # per-worker connect patience
    reroute_wait_s: float = 30.0  # max wait for an empty ring to refill
    # The supervisor embeds the router in its own loop and owns the
    # process's signals; a standalone router installs its own.
    install_signal_handlers: bool = True


@dataclass
class _Worker:
    """One registered worker daemon."""

    worker_id: str
    host: str
    port: int
    pid: int | None = None
    # Bumped every (re-)registration: a stale EOF from a dead worker's
    # old connection must never eject its restarted successor.
    generation: int = 0


class _Link:
    """One client session's pipelined connection to one worker."""

    __slots__ = ("worker_id", "generation", "reader", "writer", "pending", "pump")

    def __init__(
        self,
        worker_id: str,
        generation: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self.worker_id = worker_id
        self.generation = generation
        self.reader = reader
        self.writer = writer
        # canonical id text -> raw request line awaiting its response
        self.pending: dict[str, bytes] = {}
        self.pump: asyncio.Task | None = None


class ClusterRouter:
    """The asyncio router process fronting a worker fleet.

    Lifecycle mirrors :class:`~repro.serve.server.DependenceServer`
    (``run()`` / ``started`` / ``request_shutdown()``), so the same
    harnesses drive both.  Workers join and leave through
    :meth:`add_worker` / :meth:`begin_drain`, which the supervisor (or
    a test) calls; the router also ejects workers on its own when they
    answer ``shutting_down`` or drop their connection.
    """

    def __init__(
        self,
        config: RouterConfig | None = None,
        on_shutdown: Callable[[], None] | None = None,
        on_worker_lost: Callable[[str], None] | None = None,
    ):
        self.config = config if config is not None else RouterConfig()
        self.registry = MetricsRegistry()
        self.ring = HashRing(replicas=self.config.replicas)
        self.workers: dict[str, _Worker] = {}
        self.started = threading.Event()
        self.bound_host: str | None = None
        self.bound_port: int | None = None
        self.draining = False
        self.on_shutdown = on_shutdown
        self.on_worker_lost = on_worker_lost
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested = threading.Event()
        self._ring_nonempty: asyncio.Event | None = None
        self._sessions: set["_ClientSession"] = set()
        self._pending_total = 0
        self._generation = 0

    # -- worker registry ---------------------------------------------------

    def add_worker(
        self, worker_id: str, host: str, port: int, pid: int | None = None
    ) -> None:
        """Register (or re-register after restart) one worker daemon.

        Safe to call from any thread; the ring mutation hops onto the
        router's event loop when it is running.
        """
        self._on_loop(self._add_worker, worker_id, host, port, pid)

    def begin_drain(self, worker_id: str) -> None:
        """Take a worker out of the ring ahead of its SIGTERM drain.

        In-flight requests it already owns keep their pending entries:
        the drain answers them, and anything it refuses or abandons is
        replayed onto the re-sharded ring.
        """
        self._on_loop(self._eject_worker, worker_id, "drain")

    def _on_loop(self, fn, *args) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            fn(*args)
            return
        try:
            on_loop = asyncio.get_running_loop() is loop
        except RuntimeError:
            on_loop = False
        if on_loop:
            # Already on the router's loop (the supervisor lives
            # there): apply now, so a caller that registers a worker
            # and immediately describes the ring sees it.
            fn(*args)
        else:
            loop.call_soon_threadsafe(fn, *args)

    def _add_worker(
        self, worker_id: str, host: str, port: int, pid: int | None
    ) -> None:
        self._generation += 1
        self.workers[worker_id] = _Worker(
            worker_id, host, port, pid, generation=self._generation
        )
        self.ring.add(worker_id)
        self.registry.inc("cluster.worker_joined")
        if self._ring_nonempty is not None and len(self.ring):
            self._ring_nonempty.set()

    def _eject_worker(self, worker_id: str, why: str) -> None:
        if worker_id not in self.ring:
            return
        self.ring.remove(worker_id)
        self.registry.inc_family("cluster.worker_ejected", why)
        if self._ring_nonempty is not None and not len(self.ring):
            self._ring_nonempty.clear()
        if why == "lost" and self.on_worker_lost is not None:
            try:
                self.on_worker_lost(worker_id)
            except Exception:  # pragma: no cover - supervisor hook bug
                traceback.print_exc(file=sys.stderr)

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Route until drained; returns the process exit code (0)."""
        asyncio.run(self._main())
        return 0

    def request_shutdown(self) -> None:
        """Begin a graceful cluster drain; safe from any thread."""
        self._shutdown_requested.set()
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(lambda: None)
            except RuntimeError:
                pass

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._ring_nonempty = asyncio.Event()
        if len(self.ring):
            self._ring_nonempty.set()
        if self.config.install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        signum, self.request_shutdown
                    )
                except (RuntimeError, NotImplementedError, ValueError):
                    break
        server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        sockname = server.sockets[0].getsockname()
        self.bound_host, self.bound_port = sockname[0], sockname[1]
        if self.config.announce:
            print(
                protocol.canonical_json({"serving": self.describe()}),
                flush=True,
            )
        self.started.set()
        try:
            while not self._shutdown_requested.is_set():
                await asyncio.sleep(0.05)
            self.draining = True
            server.close()
            await server.wait_closed()
            await self._drain()
        finally:
            for session in tuple(self._sessions):
                await session.close()
            if self.on_shutdown is not None:
                try:
                    self.on_shutdown()
                except Exception:  # pragma: no cover - supervisor hook bug
                    traceback.print_exc(file=sys.stderr)

    async def _drain(self) -> None:
        """Let every pending forwarded request come home (or replay)."""
        while any(session.pending_count() for session in self._sessions):
            await asyncio.sleep(0.02)

    def describe(self) -> dict:
        """The announce/health payload describing the cluster."""
        return {
            "host": self.bound_host,
            "port": self.bound_port,
            "protocol": protocol.PROTOCOL_VERSION,
            "cluster": True,
            "workers": [
                {
                    "id": worker.worker_id,
                    "host": worker.host,
                    "port": worker.port,
                    "pid": worker.pid,
                }
                for _, worker in sorted(self.workers.items())
            ],
        }

    # -- client sessions ---------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _ClientSession(self, reader, writer)
        self._sessions.add(session)
        self.registry.inc("cluster.connections")
        try:
            await session.serve()
        finally:
            self._sessions.discard(session)
            if not self.draining:
                await session.close()

    # -- control plane -----------------------------------------------------

    def _health(self) -> dict:
        import repro

        return {
            "status": "draining" if self.draining else "ok",
            "protocol": protocol.PROTOCOL_VERSION,
            "server": repro.__version__,
            "cluster": True,
            # Durable incremental sessions: the router pins each
            # client-minted session id to one ring home and forwards
            # its frames there; after a worker failover the client's
            # journal replay rebuilds the session at the new home.
            "sessions": True,
            "workers": len(self.ring),
            "ring": self.ring.nodes,
            "inflight": self._pending_total,
        }

    async def _stats(self) -> dict:
        merged = MetricsRegistry()
        merged.merge(self.registry)
        workers: dict[str, Any] = {}
        for worker_id, worker in sorted(self.workers.items()):
            try:
                result = await self._control_call(worker, "stats")
            except (OSError, asyncio.TimeoutError, ValueError):
                workers[worker_id] = {"unreachable": True}
                continue
            workers[worker_id] = result
        return {
            "router": merged.to_dict(),
            "ring": self.ring.nodes,
            "workers": workers,
        }

    async def _control_call(self, worker: _Worker, op: str) -> Any:
        """One short-lived request/response round trip to a worker."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                worker.host, worker.port, limit=protocol.MAX_LINE_BYTES
            ),
            timeout=5.0,
        )
        try:
            writer.write(protocol.encode_request(op, {}, request_id=0))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            response = protocol.decode_response(line)
            if not response.get("ok"):
                raise ValueError(f"{op} failed: {response.get('error')}")
            return response["result"]
        finally:
            writer.close()


class _ClientSession:
    """One client connection and its per-worker forwarding links."""

    def __init__(
        self,
        router: ClusterRouter,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self.router = router
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.links: dict[str, _Link] = {}

    def pending_count(self) -> int:
        return sum(len(link.pending) for link in self.links.values())

    async def serve(self) -> None:
        while True:
            try:
                line = await self.reader.readline()
            except (ValueError, ConnectionError):
                break
            if not line:
                break
            if not line.strip():
                continue
            await self._handle_line(line)

    async def close(self) -> None:
        for link in tuple(self.links.values()):
            if link.pump is not None:
                link.pump.cancel()
            try:
                link.writer.close()
            except Exception:
                pass
        self.links.clear()
        try:
            self.writer.close()
        except Exception:
            pass

    # -- request path ------------------------------------------------------

    async def _respond(self, response: dict | bytes) -> None:
        payload = (
            response
            if isinstance(response, bytes)
            else protocol.encode_response(response)
        )
        try:
            async with self.write_lock:
                self.writer.write(payload)
                await self.writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; workers still warm their caches

    async def _handle_line(self, line: bytes) -> None:
        router = self.router
        try:
            blob = json.loads(line)
        except ValueError as err:
            await self._respond(
                protocol.error_response(
                    None, ErrorCode.PARSE, f"invalid JSON: {err}"
                )
            )
            return
        if not isinstance(blob, dict):
            await self._respond(
                protocol.error_response(
                    None, ErrorCode.PARSE, "request must be a JSON object"
                )
            )
            return
        request_id = blob.get("id")
        version = blob.get("v", protocol.PROTOCOL_VERSION)
        if (
            not isinstance(version, int)
            or version not in protocol.SUPPORTED_VERSIONS
        ):
            await self._respond(
                protocol.error_response(
                    request_id,
                    ErrorCode.VERSION,
                    f"protocol version {version!r} not supported "
                    f"(router speaks {protocol.MIN_PROTOCOL_VERSION}.."
                    f"{protocol.PROTOCOL_VERSION})",
                )
            )
            return
        op = blob.get("op")
        if not isinstance(op, str) or not op:
            await self._respond(
                protocol.error_response(
                    request_id, ErrorCode.BAD_REQUEST, "missing 'op' field"
                )
            )
            return
        if op not in protocol.OPS:
            await self._respond(
                protocol.error_response(
                    request_id,
                    ErrorCode.UNSUPPORTED,
                    f"unknown op {op!r} "
                    f"(supported: {', '.join(sorted(protocol.OPS))})",
                )
            )
            return
        router.registry.inc_family("cluster.requests", op)
        params = blob.get("params", {})
        if not isinstance(params, dict):
            await self._respond(
                protocol.error_response(
                    request_id,
                    ErrorCode.BAD_REQUEST,
                    "'params' must be an object",
                )
            )
            return

        if op == "health":
            await self._respond(
                protocol.ok_response(request_id, router._health())
            )
            return
        if op == "stats":
            await self._respond(
                protocol.ok_response(request_id, await router._stats())
            )
            return
        if op == "shutdown":
            router.request_shutdown()
            await self._respond(
                protocol.ok_response(request_id, {"draining": True})
            )
            return

        if op in _SESSION_OPS:
            # Durable sessions pin to the ring by their client-minted
            # id; without one there is no stable home to pin to (the
            # old per-connection server-allocated ids cannot survive a
            # failover), so the router requires it.
            sid = _session_id_of(op, params)
            if not isinstance(sid, str) or not sid:
                await self._respond(
                    protocol.error_response(
                        request_id,
                        ErrorCode.BAD_REQUEST,
                        f"{op!r} through a cluster router needs a "
                        "client-minted session id (durable-session "
                        "clients send one automatically)",
                    )
                )
                return
        if router.draining or router._shutdown_requested.is_set():
            router.registry.inc_family(
                "serve.errors", ErrorCode.SHUTTING_DOWN
            )
            await self._respond(
                protocol.error_response(
                    request_id, ErrorCode.SHUTTING_DOWN, "cluster is draining"
                )
            )
            return
        await self._forward(request_id, _key_for(op, params), line)

    async def _forward(
        self, request_id: Any, key: bytes, line: bytes
    ) -> None:
        """Send one analysis request to its key's home worker."""
        router = self.router
        id_text = protocol.canonical_json(request_id)
        while True:
            try:
                worker_id = await self._home_for(key)
            except LookupError:
                router.registry.inc("cluster.no_worker_errors")
                await self._respond(
                    protocol.error_response(
                        request_id,
                        ErrorCode.OVERLOADED,
                        "no workers available; retry later",
                    )
                )
                return
            link = await self._link_for(worker_id)
            if link is None:
                continue  # worker ejected while connecting; re-route
            link.pending[id_text] = line
            router._pending_total += 1
            try:
                link.writer.write(line)
                await link.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                # The pump (or _lose_link) replays this pending entry.
                return
            router.registry.inc("cluster.forwarded")
            return

    async def _home_for(self, key: bytes) -> str:
        """The key's home worker, waiting out an empty-ring window."""
        router = self.router
        try:
            return router.ring.node_for(key)
        except LookupError:
            assert router._ring_nonempty is not None
            try:
                await asyncio.wait_for(
                    router._ring_nonempty.wait(),
                    timeout=router.config.reroute_wait_s,
                )
            except asyncio.TimeoutError:
                raise LookupError("ring stayed empty") from None
            return router.ring.node_for(key)

    async def _link_for(self, worker_id: str) -> _Link | None:
        link = self.links.get(worker_id)
        if link is not None:
            return link
        worker = self.router.workers.get(worker_id)
        if worker is None:
            self.router._eject_worker(worker_id, "lost")
            return None
        if worker_id not in self.router.ring:
            return None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(
                    worker.host, worker.port, limit=protocol.MAX_LINE_BYTES
                ),
                timeout=self.router.config.connect_retry_s,
            )
        except (OSError, asyncio.TimeoutError):
            # Can't reach the ring's current owner: treat it as lost so
            # the key re-homes instead of failing the request.
            self.router.registry.inc("cluster.worker_lost")
            self.router._eject_worker(worker_id, "lost")
            return None
        link = _Link(worker_id, worker.generation, reader, writer)
        self.links[worker_id] = link
        link.pump = asyncio.get_running_loop().create_task(self._pump(link))
        return link

    # -- response path -----------------------------------------------------

    async def _pump(self, link: _Link) -> None:
        """Stream one worker's responses back to the client, verbatim."""
        try:
            while True:
                line = await link.reader.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    break  # torn final line (kill -9 mid-write): replay
                await self._on_worker_line(link, line)
        except (ConnectionError, OSError):
            pass
        # A cancelled pump (deliberate session close) propagates instead:
        # the worker is fine, nothing to eject or replay.
        await self._lose_link(link)

    async def _on_worker_line(self, link: _Link, line: bytes) -> None:
        router = self.router
        try:
            blob = json.loads(line)
            request_id = blob.get("id") if isinstance(blob, dict) else None
        except ValueError:
            return  # not a response line; nothing to match it to
        id_text = protocol.canonical_json(request_id)
        pending = link.pending.pop(id_text, None)
        if pending is None:
            return  # stale duplicate (already replayed elsewhere)
        router._pending_total -= 1
        error = None if blob.get("ok") else blob.get("error")
        if (
            isinstance(error, dict)
            and error.get("code") == ErrorCode.SHUTTING_DOWN
        ):
            # SIGTERM drain path: the worker is refusing new work.  Take
            # it out of the ring (its segment re-shards) and replay this
            # request at the key's new home instead of surfacing the
            # refusal to the client.
            router._eject_worker(link.worker_id, "drain")
            await self._replay(pending)
            return
        await self._respond(line)

    async def _lose_link(self, link: _Link) -> None:
        """The worker connection died: re-shard and replay its debt."""
        router = self.router
        if self.links.get(link.worker_id) is link:
            del self.links[link.worker_id]
        try:
            link.writer.close()
        except Exception:
            pass
        current = router.workers.get(link.worker_id)
        if (
            link.worker_id in router.ring
            and current is not None
            and current.generation == link.generation
        ):
            router.registry.inc("cluster.worker_lost")
            router._eject_worker(link.worker_id, "lost")
        owed = list(link.pending.values())
        link.pending.clear()
        router._pending_total -= len(owed)
        for line in owed:
            await self._replay(line)

    async def _replay(self, line: bytes) -> None:
        """Re-route one request whose original home left the ring."""
        router = self.router
        try:
            blob = json.loads(line)
            request_id = blob.get("id")
            op = blob.get("op")
            params = blob.get("params", {})
        except ValueError:  # pragma: no cover - we forwarded valid JSON
            return
        router.registry.inc("cluster.replayed")
        await self._forward(request_id, _key_for(op, params), line)
