"""A persistent process pool for heavy uncached batch analyses.

The batch engine (:mod:`repro.core.engine`) creates a fresh
``multiprocessing`` pool per call — fine for one-shot CLI batches,
wasteful for a daemon answering ``analyze_program`` requests all day.
:class:`WorkerPool` keeps one :class:`concurrent.futures`
process pool alive across requests and plugs into the engine through
``analyze_batch(..., pool_map=pool.map_shards)``, reusing the engine's
deterministic round-robin sharding unchanged (so pooled results stay
bit-identical to serial runs).

A long-lived pool must survive its workers: if a worker process dies
(OOM kill, segfault, ``os._exit``), the executor is broken — the pool
**recycles** it (shuts the carcass down, spawns a fresh executor) and
retries the whole payload list, which is safe because shard analysis
is pure and deterministic.  After ``retries`` consecutive broken-pool
failures the error propagates.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro.core.engine import BatchReport, _pool_context, _run_shard, analyze_batch

__all__ = ["WorkerPool"]


class WorkerPool:
    """Recyclable process pool; ``pool_map``-compatible with the engine."""

    def __init__(self, jobs: int | None = None, retries: int = 1):
        if jobs is not None and jobs <= 0:
            raise ValueError("jobs must be positive")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.retries = retries
        self.recycles = 0
        self._executor: ProcessPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=_pool_context()
            )
        return self._executor

    def _recycle(self) -> None:
        """Tear down a broken executor and arrange for a fresh one."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.recycles += 1

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- mapping -----------------------------------------------------------

    def submit_map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> list[Any]:
        """``map(fn, payloads)`` across workers, recycling on crashes.

        ``fn`` must be pure per payload: a broken pool voids every
        in-flight result, so the whole list is re-run on retry.
        """
        attempts = 0
        while True:
            executor = self._ensure()
            try:
                return list(executor.map(fn, payloads))
            except BrokenProcessPool:
                self._recycle()
                attempts += 1
                if attempts > self.retries:
                    raise

    def map_shards(self, payloads: Sequence[Any]) -> list[Any]:
        """The engine's ``pool_map`` hook: run shard payloads here."""
        return self.submit_map(_run_shard, payloads)

    def run_batch(self, queries: Iterable, **options: Any) -> BatchReport:
        """:func:`~repro.core.engine.analyze_batch` on this pool."""
        options.setdefault("jobs", self.jobs)
        return analyze_batch(queries, pool_map=self.map_shards, **options)
