"""Assembly of the full synthetic PERFECT workload."""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfect.patterns import Query
from repro.perfect.programs import PROGRAM_SPECS, ProgramSpec, generate_program

__all__ = ["SuiteProgram", "load_suite", "suite_totals"]


@dataclass(frozen=True)
class SuiteProgram:
    """One synthetic program: its spec plus its generated queries."""

    spec: ProgramSpec
    queries: tuple[Query, ...]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def lines(self) -> int:
        return self.spec.lines


def load_suite(
    include_symbolic: bool = False, scale: float = 1.0
) -> list[SuiteProgram]:
    """Generate all 13 synthetic programs.

    ``include_symbolic`` adds the section-8 symbolic cases (the Table 7
    workload); ``scale`` shrinks repetition counts for quick runs while
    keeping every unique case.
    """
    return [
        SuiteProgram(
            spec=spec,
            queries=tuple(
                generate_program(
                    spec, include_symbolic=include_symbolic, scale=scale
                )
            ),
        )
        for spec in PROGRAM_SPECS
    ]


def suite_totals(suite: list[SuiteProgram]) -> dict[str, int]:
    """Query counts per bucket across the whole suite."""
    totals: dict[str, int] = {}
    for program in suite:
        for query in program.queries:
            totals[query.bucket] = totals.get(query.bucket, 0) + 1
    return totals
