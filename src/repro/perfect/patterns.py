"""Reference-pattern families for the synthetic PERFECT workload.

The paper evaluates on the 13 PERFECT Club Fortran programs, which are
proprietary; DESIGN.md documents the substitution.  Each factory below
deterministically builds a *family* of dependence queries that the
cascade decides with one specific test:

===================  ==========================================================
bucket               pattern shape
===================  ==========================================================
constant             ``a[c1]`` vs ``a[c2]`` — no dependence testing at all
gcd                  ``a[s*i]`` vs ``a[s*i + r]`` with ``s`` ∤ ``r``
svpc                 shifts, separable 2-D refs, and the paper's coupled
                     ``a[i1][i2]`` vs ``a[i2+c][i1+d]`` example
acyclic              triangular bounds ``j <= i`` (one-directional coupling)
loop_residue         banded bounds ``i <= j <= i+w`` (difference-constraint
                     cycles with unit coefficients)
fourier_motzkin      three-variable couplings ``a[i+j]`` vs ``a[i+j+k]`` and
                     scaled bands ``2i <= j <= 2i+w``
symbolic_*           section-8 shapes: unknowns in subscripts and bounds
===================  ==========================================================

``idx`` selects a distinct family member (different offsets/bounds);
the same ``idx`` always rebuilds the identical query, which is what the
memoization experiments repeat.  ``wrapper`` optionally adds an unused
outer loop (variants that the *simple* memo scheme distinguishes but
the improved one merges, and that unpruned direction refinement pays
for — Tables 2, 4 and 5).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.ir import builder as B
from repro.ir.arrays import ArrayRef
from repro.ir.loops import Loop, LoopNest

__all__ = ["Query", "PATTERNS", "SYMBOLIC_PATTERNS", "make_query"]


@dataclass(frozen=True)
class Query:
    """One dependence query of the synthetic workload."""

    ref1: ArrayRef
    ref2: ArrayRef
    nest1: LoopNest
    nest2: LoopNest
    bucket: str
    symbolic: bool = False

    @property
    def nest(self) -> LoopNest:
        return self.nest1


def _wrap(nest: LoopNest, wrapper: int) -> LoopNest:
    """Prepend ``wrapper`` unused outer loops (bounds vary per variant)."""
    if wrapper <= 0:
        return nest
    outers = [
        Loop(f"w{k}", B.c(1), B.c(8 + 2 * k + wrapper))
        for k in range(wrapper)
    ]
    return LoopNest(outers + list(nest.loops))


def _bound(idx: int) -> int:
    """A loop bound that varies across family members."""
    return (10, 50, 100, 20, 64)[idx % 5]


# -- plain pattern factories ---------------------------------------------------


def _constant(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    nest = B.nest(("i", 1, _bound(idx)))
    c1 = idx  # injective: every family member is a distinct problem
    c2 = c1 if idx % 3 == 0 else c1 + 1 + idx % 4
    ref1 = B.ref("a", [c1], write=True)
    ref2 = B.ref("a", [c2])
    return ref1, ref2, nest


def _gcd(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    if idx % 2 == 1:
        # Coupled inconsistent subscripts: a[i][i+c] vs a[j][j+c+g].
        # Per-dimension tests (simple GCD, Banerjee) cannot refute these
        # -- the class Shen/Li/Yew found traditional tests keep missing;
        # the Extended GCD test proves the combined equalities unsolvable.
        c = idx // 2
        g = 1 + idx % 3
        n = _bound(idx)
        nest = B.nest(("i", 1, n), ("j", 1, n))
        ref1 = B.ref("a", [B.v("i"), B.v("i") + c], write=True)
        ref2 = B.ref("a", [B.v("j"), B.v("j") + c + g])
        return ref1, ref2, nest
    stride = 2 + idx % 3  # 2, 3, 4
    offset = idx  # injective
    gap = 1 + idx % (stride - 1) if stride > 2 else 1
    nest = B.nest(("i", 1, _bound(idx)))
    ref1 = B.ref("a", [B.v("i") * stride + offset], write=True)
    ref2 = B.ref("a", [B.v("i") * stride + offset + gap])
    return ref1, ref2, nest


def _svpc(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    family = idx % 3
    n = _bound(idx)
    if family == 0:
        # plain shift; every third member shifts beyond the range
        shift = (idx // 3) + 1 + (n if idx % 3 == 2 else 0)
        nest = B.nest(("i", 1, n))
        ref1 = B.ref("a", [B.v("i") + shift], write=True)
        ref2 = B.ref("a", [B.v("i")])
        return ref1, ref2, nest
    if family == 1:
        # separable 2-D shifts
        s1 = idx // 3
        s2 = (idx // 9) % 3 + 1
        nest = B.nest(("i", 1, n), ("j", 1, n))
        ref1 = B.ref("a", [B.v("i") + s1, B.v("j") + s2], write=True)
        ref2 = B.ref("a", [B.v("i"), B.v("j")])
        return ref1, ref2, nest
    # the paper's coupled-subscript SVPC example
    c1 = n + idx // 3  # out of range -> independent
    c2 = (idx // 3) % 4
    nest = B.nest(("i1", 1, n), ("i2", 1, n))
    ref1 = B.ref("a", [B.v("i1"), B.v("i2")], write=True)
    ref2 = B.ref("a", [B.v("i2") + c1, B.v("i1") + c2])
    return ref1, ref2, nest


def _acyclic(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    n = _bound(idx)
    shift = (idx // 5) * 4 + idx % 4 + (n if idx % 5 == 4 else 0)
    nest = B.nest(("i", 1, n), ("j", 1, B.v("i")))
    ref1 = B.ref("a", [B.v("j") + shift], write=True)
    ref2 = B.ref("a", [B.v("j")])
    return ref1, ref2, nest


def _loop_residue(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    n = _bound(idx)
    width = 3 + idx % 3
    # The shift sweeps through and beyond the band width (including
    # negative values), so direction refinement at the outer level gets
    # genuinely refuted windows -- the Loop Residue test returns
    # independent for a healthy fraction of directions (section 7).
    shift = (idx // 5) * 3 + idx % 4 - width + (n + 2 * width if idx % 5 == 4 else 0)
    nest = B.nest(("i", 1, n), ("j", B.v("i"), B.v("i") + width))
    ref1 = B.ref("a", [B.v("j") + shift], write=True)
    ref2 = B.ref("a", [B.v("j")])
    return ref1, ref2, nest


def _fourier_motzkin(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    n = _bound(idx)
    family = idx % 2
    if family == 0:
        # three-variable coupling
        shift = (idx // 2) + (2 * n if idx % 7 == 6 else 0)
        nest = B.nest(("i", 1, n), ("j", 1, n))
        ref1 = B.ref("a", [B.v("i") + B.v("j") + shift], write=True)
        ref2 = B.ref("a", [B.v("i") + B.v("j")])
        return ref1, ref2, nest
    # scaled band: 2i <= j <= 2i + w (unequal coefficients)
    width = 2 + (idx // 2) % 3
    shift = idx // 2
    nest = B.nest(("i", 1, n), ("j", B.v("i") * 2, B.v("i") * 2 + width))
    ref1 = B.ref("a", [B.v("j") + shift], write=True)
    ref2 = B.ref("a", [B.v("j")])
    return ref1, ref2, nest


# -- symbolic pattern factories (section 8 / Table 7) ------------------------------


def _symbolic_svpc(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    # the unknown cancels: a[i+n+shift] vs a[i+n]
    n_bound = _bound(idx)
    shift = (idx // 3) * 3 + idx % 3 + (n_bound if idx % 3 == 2 else 0)
    nest = B.nest(("i", 1, n_bound))
    ref1 = B.ref("a", [B.v("i") + B.v("n") + shift], write=True)
    ref2 = B.ref("a", [B.v("i") + B.v("n")])
    return ref1, ref2, nest


def _symbolic_acyclic(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    # symbolic upper bound: for i = 1 to n
    shift = 1 + idx
    nest = B.nest(("i", 1, B.v("n")))
    ref1 = B.ref("a", [B.v("i") + shift], write=True)
    ref2 = B.ref("a", [B.v("i")])
    return ref1, ref2, nest


def _symbolic_residue(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    # symbolic loop origin: for i = n to n + span — the i/n coupling
    # yields unit-coefficient difference constraints
    span = 6 + idx % 5
    shift = (idx // 5) * 4 + idx % 4 + (span + 1 if idx % 5 == 4 else 0)
    nest = B.nest(("i", B.v("n"), B.v("n") + span))
    ref1 = B.ref("a", [B.v("i") + shift], write=True)
    ref2 = B.ref("a", [B.v("i")])
    return ref1, ref2, nest


def _symbolic_fm(idx: int) -> tuple[ArrayRef, ArrayRef, LoopNest]:
    # the paper's read(n) example: a[i+n] vs a[i+2n+shift] — the doubled
    # symbol gives unequal coefficients, only Fourier-Motzkin applies
    shift = 1 + idx
    nest = B.nest(("i", 1, _bound(idx)))
    ref1 = B.ref("a", [B.v("i") + B.v("n")], write=True)
    ref2 = B.ref("a", [B.v("i") + B.v("n") * 2 + shift])
    return ref1, ref2, nest


PATTERNS = {
    "constant": _constant,
    "gcd": _gcd,
    "svpc": _svpc,
    "acyclic": _acyclic,
    "loop_residue": _loop_residue,
    "fourier_motzkin": _fourier_motzkin,
}

SYMBOLIC_PATTERNS = {
    "svpc": _symbolic_svpc,
    "acyclic": _symbolic_acyclic,
    "loop_residue": _symbolic_residue,
    "fourier_motzkin": _symbolic_fm,
}


@functools.lru_cache(maxsize=None)
def make_query(
    bucket: str, idx: int, wrapper: int = 0, symbolic: bool = False
) -> Query:
    """Build one deterministic query from a pattern family.

    Cached: the workload repeats each ``(bucket, idx, wrapper)`` case
    many times (that repetition is the memoization experiment), and
    every component is immutable, so repeats share one ``Query``
    object.  Sharing makes the batch engine's structural dedup an
    identity comparison instead of a deep structural walk.
    """
    factory = (SYMBOLIC_PATTERNS if symbolic else PATTERNS)[bucket]
    ref1, ref2, nest = factory(idx)
    wrapped = _wrap(nest, wrapper)
    return Query(
        ref1=ref1,
        ref2=ref2,
        nest1=wrapped,
        nest2=wrapped,
        bucket=bucket,
        symbolic=symbolic,
    )
