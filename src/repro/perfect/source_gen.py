"""Render workload queries as mini-Fortran source text.

The synthetic PERFECT workload is normally built directly in the IR;
this module emits equivalent source programs so the *entire* pipeline
— lexer, parser, prepass optimizer, lowering — can be exercised by the
same population.  ``tests/test_source_gen.py`` validates that the
frontend path reproduces the builder path's verdicts query for query.
"""

from __future__ import annotations

from repro.lang.unparse import _affine_to_text
from repro.perfect.patterns import Query

__all__ = ["query_to_source", "queries_to_source"]


def _ref_text(array: str, subscripts) -> str:
    return array + "".join(
        f"[{_affine_to_text(s)}]" for s in subscripts
    )


def query_to_source(query: Query) -> str:
    """One self-contained program holding the query's reference pair.

    The write reference becomes the assignment target and the read its
    right-hand side, inside the query's (shared) loop nest; symbolic
    terms are declared with ``read(...)``.
    """
    if query.nest1 != query.nest2:
        raise ValueError("source generation expects a shared nest")
    nest = query.nest1
    loop_vars = set(nest.variables)
    symbols: set[str] = set(nest.symbols())
    for ref in (query.ref1, query.ref2):
        symbols |= ref.variables() - loop_vars

    lines = [f"read({s})" for s in sorted(symbols)]
    for depth, loop in enumerate(nest):
        pad = "  " * depth
        lines.append(
            f"{pad}for {loop.var} = {_affine_to_text(loop.lower)} "
            f"to {_affine_to_text(loop.upper)} do"
        )
    pad = "  " * nest.depth
    write, read = query.ref1, query.ref2
    if not write.is_write:
        write, read = read, write
    lines.append(
        f"{pad}{_ref_text(write.array, write.subscripts)} = "
        f"{_ref_text(read.array, read.subscripts)} + 1"
    )
    for depth in reversed(range(nest.depth)):
        lines.append("  " * depth + "end for")
    return "\n".join(lines) + "\n"


def queries_to_source(queries: list[Query]) -> str:
    """Concatenate many queries into one compilable program.

    Each query gets a private array name so pairs never mix; the result
    is one long program whose reference pairs are exactly the queries.
    """
    chunks = []
    symbols: set[str] = set()
    bodies: list[str] = []
    for index, query in enumerate(queries):
        text = query_to_source(query)
        body_lines = []
        for line in text.splitlines():
            if line.startswith("read("):
                symbols.add(line)
            else:
                body_lines.append(line.replace("a[", f"q{index}_a["))
        bodies.append("\n".join(body_lines))
    chunks.extend(sorted(symbols))
    chunks.extend(bodies)
    return "\n".join(chunks) + "\n"
