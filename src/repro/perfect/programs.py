"""The 13 synthetic PERFECT-Club-shaped programs.

Each :class:`ProgramSpec` encodes a program's published population:

* ``totals`` — how many dependence queries each test bucket decides,
  straight from the paper's Table 1 (columns Constant, GCD, SVPC,
  Acyclic, Loop Residue, Fourier-Motzkin);
* ``uniques`` — how many of those queries are *distinct* problems,
  from Table 3 (the remainder are repetitions of the same subscript and
  bound patterns — exactly the redundancy memoization exploits);
* ``wrapper_variants`` — how many unused-outer-loop variants each
  unique case appears under.  Variants are distinct cases for the
  *simple* memo scheme but merge under the *improved* scheme, which is
  what separates Table 2's two columns;
* ``symbolic`` — additional (total, unique) symbolic-term cases per
  bucket, enabled for the Table 7 workload.

The generator is deterministic: query ``q`` of a bucket reuses pattern
member ``q % unique`` under wrapper variant ``(q // unique) % variants``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfect.patterns import Query, make_query

__all__ = ["ProgramSpec", "PROGRAM_SPECS", "generate_program", "BUCKETS"]

BUCKETS = ("constant", "gcd", "svpc", "acyclic", "loop_residue", "fourier_motzkin")


@dataclass(frozen=True)
class ProgramSpec:
    """Published population of one PERFECT program (Tables 1-3)."""

    name: str
    lines: int
    totals: dict[str, int]
    uniques: dict[str, int]
    wrapper_variants: int = 2
    symbolic: dict[str, tuple[int, int]] = field(default_factory=dict)

    def total_tests(self) -> int:
        """Dependence tests actually run (Table 3's 'Total Cases')."""
        return sum(
            self.totals.get(b, 0)
            for b in ("svpc", "acyclic", "loop_residue", "fourier_motzkin")
        )


def _spec(
    name: str,
    lines: int,
    constant: int,
    gcd: int,
    svpc: tuple[int, int],
    acyclic: tuple[int, int],
    residue: tuple[int, int],
    fm: tuple[int, int],
    wrappers: int = 2,
    symbolic: dict[str, tuple[int, int]] | None = None,
) -> ProgramSpec:
    return ProgramSpec(
        name=name,
        lines=lines,
        totals={
            "constant": constant,
            "gcd": gcd,
            "svpc": svpc[0],
            "acyclic": acyclic[0],
            "loop_residue": residue[0],
            "fourier_motzkin": fm[0],
        },
        uniques={
            "constant": max(1, constant // 40) if constant else 0,
            "gcd": max(1, round(gcd * 0.05)) if gcd else 0,
            "svpc": svpc[1],
            "acyclic": acyclic[1],
            "loop_residue": residue[1],
            "fourier_motzkin": fm[1],
        },
        wrapper_variants=wrappers,
        symbolic=symbolic or {},
    )


# Populations from Table 1 (totals) and Table 3 (uniques); the symbolic
# additions approximate the per-program growth visible in Table 7.
PROGRAM_SPECS: tuple[ProgramSpec, ...] = (
    _spec("AP", 6104, 229, 91, (613, 27), (0, 0), (0, 0), (0, 0),
          symbolic={"svpc": (12, 6), "acyclic": (30, 15)}),
    _spec("CS", 18520, 50, 0, (127, 14), (15, 6), (0, 0), (0, 0),
          symbolic={"svpc": (12, 6), "acyclic": (16, 8), "loop_residue": (10, 5)}),
    _spec("LG", 2327, 6961, 0, (73, 23), (0, 0), (0, 0), (0, 0),
          wrappers=3, symbolic={"svpc": (8, 4)}),
    _spec("LW", 1237, 54, 0, (34, 15), (43, 2), (0, 0), (0, 0)),
    _spec("MT", 3785, 49, 0, (326, 14), (0, 0), (0, 0), (0, 0),
          symbolic={"svpc": (10, 5)}),
    _spec("NA", 3976, 45, 0, (679, 48), (202, 11), (1, 1), (2, 1),
          symbolic={"acyclic": (24, 12)}),
    _spec("OC", 2739, 2, 7, (36, 5), (0, 0), (0, 0), (0, 0),
          symbolic={"acyclic": (2, 1)}),
    _spec("SD", 7607, 949, 0, (526, 36), (17, 6), (5, 3), (12, 4)),
    _spec("SM", 2759, 1004, 98, (264, 8), (0, 0), (0, 0), (0, 0),
          wrappers=3),
    _spec("SR", 3970, 1679, 0, (1290, 14), (0, 0), (0, 0), (0, 0),
          wrappers=2, symbolic={"svpc": (14, 7), "loop_residue": (4, 2)}),
    _spec("TF", 2020, 801, 6, (826, 20), (0, 0), (0, 0), (0, 0),
          symbolic={"svpc": (40, 20)}),
    _spec("TI", 484, 0, 0, (4, 3), (42, 8), (0, 0), (0, 0)),
    _spec("WS", 3884, 36, 182, (378, 35), (4, 1), (0, 0), (160, 27),
          symbolic={"acyclic": (8, 4)}),
)


def generate_program(
    spec: ProgramSpec,
    include_symbolic: bool = False,
    scale: float = 1.0,
) -> list[Query]:
    """All dependence queries of one synthetic program, in a stable order.

    ``scale`` < 1 shrinks total counts proportionally (for quick runs
    and microbenchmarks) while keeping every unique case present.
    """
    queries: list[Query] = []
    for bucket in BUCKETS:
        total = spec.totals.get(bucket, 0)
        unique = spec.uniques.get(bucket, 0)
        queries.extend(
            _bucket_queries(spec, bucket, total, unique, scale, symbolic=False)
        )
    if include_symbolic:
        for bucket, (total, unique) in spec.symbolic.items():
            queries.extend(
                _bucket_queries(spec, bucket, total, unique, scale, symbolic=True)
            )
    return queries


def _bucket_queries(
    spec: ProgramSpec,
    bucket: str,
    total: int,
    unique: int,
    scale: float,
    symbolic: bool,
) -> list[Query]:
    if total <= 0 or unique <= 0:
        return []
    scaled_total = max(unique, int(round(total * scale)))
    out: list[Query] = []
    for q in range(scaled_total):
        idx = q % unique
        # Only every other unique case comes in unused-outer-loop
        # variants; this calibrates the simple-vs-improved unique-case
        # gap of Table 2 to the published ratios.
        variants = spec.wrapper_variants if idx % 2 == 0 else 1
        wrapper = (q // unique) % variants
        out.append(make_query(bucket, idx, wrapper, symbolic))
    return out
