"""Synthetic PERFECT-Club-shaped workload (see DESIGN.md substitutions)."""

from repro.perfect.patterns import PATTERNS, SYMBOLIC_PATTERNS, Query, make_query
from repro.perfect.programs import (
    BUCKETS,
    PROGRAM_SPECS,
    ProgramSpec,
    generate_program,
)
from repro.perfect.suite import SuiteProgram, load_suite, suite_totals

__all__ = [
    "Query",
    "make_query",
    "PATTERNS",
    "SYMBOLIC_PATTERNS",
    "ProgramSpec",
    "PROGRAM_SPECS",
    "BUCKETS",
    "generate_program",
    "SuiteProgram",
    "load_suite",
    "suite_totals",
]
