"""Dimension-by-dimension direction vectors (paper section 6, last idea).

Burke and Cytron's optimization for "nice" cases::

    for i ... for j ...
        a[i + 1][j] = a[i][j]

``i`` and ``j`` are not interrelated, so each component of the
direction vector can be computed independently: 3 small tests per level
instead of up to ``3^depth`` hierarchical refinements, and the vector
set is the Cartesian product of the per-level direction sets.

A problem qualifies when the levels genuinely do not interact:

* the two references share their whole loop nest (``n1 == n2 ==
  n_common``) and there are no symbolic terms;
* every loop bound is a constant (rectangular nest — a trapezoid
  couples levels through its bounds);
* every subscript equation touches exactly one level's variable pair,
  and no level is touched by two equations.

Under those conditions the per-level subproblems have disjoint
variables, so the product construction is exact.
"""

from __future__ import annotations

from repro.core.result import DirectionResult
from repro.deptests.base import Verdict
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.robust.budget import NULL_SCOPE, BudgetScope
from repro.system.constraints import ConstraintSystem, LinearConstraint
from repro.system.depsystem import DependenceProblem, Direction
from repro.system.transform import gcd_transform

__all__ = ["is_separable", "separable_directions"]


def is_separable(problem: DependenceProblem) -> bool:
    """Can direction vectors be computed dimension by dimension?"""
    if problem.symbols:
        return False
    if not (problem.n1 == problem.n2 == problem.n_common):
        return False
    if any(c.num_vars_used > 1 for c in problem.bounds.constraints):
        return False
    touched: set[int] = set()
    for coeffs, _rhs in problem.equations:
        levels = set()
        for j, c in enumerate(coeffs):
            if c == 0:
                continue
            if j < problem.n1:
                levels.add(j)
            elif j < problem.n1 + problem.n2:
                levels.add(j - problem.n1)
            else:
                return False  # symbol in an equation
        if len(levels) > 1:
            return False
        if levels:
            (level,) = levels
            if level in touched:
                return False
            touched.add(level)
    return True


def _level_problem(
    problem: DependenceProblem, level: int
) -> DependenceProblem:
    """The 2-variable subproblem of one common level."""
    i1, i2 = problem.var1(level), problem.var2(level)
    names = (problem.names[i1], problem.names[i2])

    def project(coeffs) -> tuple[int, int]:
        return (coeffs[i1], coeffs[i2])

    equations = [
        (project(coeffs), rhs)
        for coeffs, rhs in problem.equations
        if coeffs[i1] != 0 or coeffs[i2] != 0
    ]
    bounds = ConstraintSystem(names)
    for con in problem.bounds.constraints:
        used = con.variables()
        if used and all(v in (i1, i2) for v in used):
            bounds.add_constraint(LinearConstraint(project(con.coeffs), con.bound))
    return DependenceProblem(
        names=names,
        equations=equations,
        bounds=bounds,
        n1=1,
        n2=1,
        n_common=1,
        symbols=(),
    )


def separable_directions(
    analyzer,
    problem: DependenceProblem,
    sink: TraceSink = NULL_SINK,
    scope: BudgetScope = NULL_SCOPE,
) -> DirectionResult:
    """Per-level direction sets, combined as a Cartesian product.

    Levels with no subscript equation get their feasible directions
    straight from the bounds (no test at all); constrained levels cost
    at most three small tests each.  Test invocations are recorded in
    the analyzer's direction statistics, as in hierarchical refinement.
    """
    for coeffs, rhs in problem.equations:
        if all(c == 0 for c in coeffs) and rhs != 0:
            # Degenerate constant dimension that cannot match.
            return DirectionResult(
                vectors=frozenset(), n_common=problem.n_common
            )
    per_level: list[set[str]] = []
    tests = 0
    for level in range(problem.n_common):
        scope.tick()
        sub = _level_problem(problem, level)
        if not sub.equations:
            per_level.append(_unconstrained_directions(sub))
            continue
        outcome = gcd_transform(sub)
        if outcome.independent:
            return DirectionResult(
                vectors=frozenset(), n_common=problem.n_common
            )
        feasible: set[str] = set()
        use_flat = getattr(analyzer, "use_flat", False)
        for direction in Direction.ALL:
            system = None
            if use_flat:
                system = outcome.transformed.with_extra_flat(
                    sub.direction_rows(0, direction)
                )
            if system is None:
                extra = sub.direction_constraints(0, direction)
                system = outcome.transformed.with_extra_constraints(extra)
            decision = analyzer._run_cascade(
                system, record=False, sink=sink, scope=scope
            )
            tests += 1
            independent = decision.result.verdict is Verdict.INDEPENDENT
            analyzer.stats.record_direction_test(
                decision.result.test_name, independent
            )
            if not independent:
                feasible.add(direction)
        if not feasible:
            return DirectionResult(
                vectors=frozenset(),
                n_common=problem.n_common,
                tests_performed=tests,
            )
        per_level.append(feasible)

    vectors: set[tuple[str, ...]] = {()}
    for feasible in per_level:
        vectors = {
            prefix + (direction,)
            for prefix in vectors
            for direction in sorted(feasible)
        }
    return DirectionResult(
        vectors=frozenset(vectors),
        n_common=problem.n_common,
        tests_performed=tests,
    )


def _unconstrained_directions(sub: DependenceProblem) -> set[str]:
    """Feasible directions of a level untouched by any subscript.

    Derived from the bounds alone: ``<`` needs two distinct feasible
    iterations, ``=`` needs one, and the ranges of ``i`` and ``i'`` are
    identical (same loop).
    """
    intervals = sub.bounds.single_variable_intervals()
    lo = max(iv.lo for iv in intervals)
    hi = min(iv.hi for iv in intervals)
    if lo > hi:
        return set()
    out = {Direction.EQ}
    if hi > lo:
        out |= {Direction.LT, Direction.GT}
    return out
