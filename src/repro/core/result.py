"""Results returned by the dependence analyzer."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DependenceResult", "DirectionResult", "DECIDED_CONSTANT"]

# Pseudo test name for the array-constant fast path (Table 1's first
# column): cases like a[3] vs a[4] decided without any dependence test.
DECIDED_CONSTANT = "constant"


@dataclass(slots=True)
class DependenceResult:
    """Outcome of a plain (no direction vectors) dependence query.

    Attributes:
        dependent: can the two references touch the same location?
        decided_by: name of the test that produced the answer
            ("constant", "gcd", "svpc", "acyclic", "loop_residue",
            "fourier_motzkin"), or "memo" suffixed when served from the
            memoization table (e.g. "svpc" with ``from_memo=True``).
        exact: False only if Fourier-Motzkin exhausted its
            branch-and-bound budget and dependence was *assumed*.
        witness: a satisfying assignment over the problem's combined
            variables (i vars, primed i' vars, symbols) when available.
        from_memo: served from a memoization table without re-testing.
        distance: per common loop level, the constant dependence
            distance ``i'_k - i_k`` if the Extended GCD solution proves
            it constant, else None for that level.  Only populated for
            dependent results.
        degraded_reason: machine-readable reason code (see
            :mod:`repro.robust.budget`) when this is a conservative
            verdict forced by a blown resource budget, quarantine or
            response deadline; None for genuinely computed answers.
    """

    dependent: bool
    decided_by: str
    exact: bool = True
    witness: tuple[int, ...] | None = None
    from_memo: bool = False
    distance: tuple[int | None, ...] | None = None
    degraded_reason: str | None = None

    @property
    def independent(self) -> bool:
        return not self.dependent

    @property
    def degraded(self) -> bool:
        return self.degraded_reason is not None


@dataclass(slots=True)
class DirectionResult:
    """Outcome of a direction-vector query (paper section 6).

    ``vectors`` holds every maximal direction vector under which the
    references are dependent.  Components are "<", "=", ">" or "*"
    (levels proven irrelevant keep "*").  An empty set means the
    references are independent — including the implicit
    branch-and-bound case where the plain test was dependent over the
    reals but every elementary vector proved independent.
    """

    vectors: frozenset[tuple[str, ...]]
    n_common: int
    exact: bool = True
    from_memo: bool = False
    tests_performed: int = 0
    degraded_reason: str | None = None

    @property
    def dependent(self) -> bool:
        return bool(self.vectors)

    @property
    def independent(self) -> bool:
        return not self.vectors

    @property
    def degraded(self) -> bool:
        return self.degraded_reason is not None

    def elementary_vectors(self) -> frozenset[tuple[str, ...]]:
        """Expand '*' components into all elementary {<,=,>} vectors."""
        from repro.system.depsystem import Direction

        expanded: set[tuple[str, ...]] = set()

        def expand(prefix: tuple[str, ...], rest: tuple[str, ...]) -> None:
            if not rest:
                expanded.add(prefix)
                return
            head, tail = rest[0], rest[1:]
            options = Direction.ALL if head == Direction.ANY else (head,)
            for option in options:
                expand(prefix + (option,), tail)

        for vector in self.vectors:
            expand((), vector)
        return frozenset(expanded)

    def count_elementary(self) -> int:
        return len(self.elementary_vectors())
