"""Symbolic (unknown) terms in dependence testing (paper section 8).

A loop-invariant unknown — a value read at run time, an unanalyzable
parameter — can appear in subscripts and bounds.  As long as it does
not vary inside the loops, it is added to the dependence system "as if
it were an induction variable without bounds": a single shared variable
constrained only by wherever it occurs.  Everything downstream (the GCD
factorization, the cascade, direction vectors) is unchanged — exactness
is preserved at very little extra cost (Table 7).

:mod:`repro.system.depsystem` performs this automatically: any free
variable of a subscript or bound that is not a loop index becomes a
symbol.  This module provides the introspection helpers used by the
harness and tests.
"""

from __future__ import annotations

from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest
from repro.system.depsystem import DependenceProblem

__all__ = ["has_symbolic_terms", "symbolic_terms", "problem_is_symbolic"]


def symbolic_terms(ref: ArrayRef, nest: LoopNest) -> frozenset[str]:
    """Free variables of a reference and its nest that are not loop indices."""
    loop_vars = set(nest.variables)
    return frozenset((ref.variables() | nest.symbols()) - loop_vars)


def has_symbolic_terms(ref: ArrayRef, nest: LoopNest) -> bool:
    return bool(symbolic_terms(ref, nest))


def problem_is_symbolic(problem: DependenceProblem) -> bool:
    """Does the combined dependence system involve any symbolic term?"""
    return bool(problem.symbols)
