"""Persistent memoization tables (paper section 5, last paragraph).

"One other possible improvement is to store the hash table across
compilations.  This will eliminate the data dependence cost of
incremental compilation.  In addition, if there is similarity across
programs, one could use a set of benchmarks to set up a standard table
which would be used by all programs."

This module serializes a :class:`~repro.core.memo.Memoizer` to a plain
JSON document and restores it, so a later compilation session starts
with every previously-seen case already answered.  Only the cacheable
payloads are stored (verdicts, reduced distances/vectors, GCD
factorizations); hit statistics start fresh.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any

from repro.core.analyzer import _CachedDirections, _CachedVerdict, _GcdCacheEntry
from repro.core.memo import Memoizer, MemoTable, intern_key

__all__ = [
    "save_memoizer",
    "load_memoizer",
    "load_memoizer_safe",
    "dumps",
    "loads",
    "encode_memo_value",
    "decode_memo_value",
    "encode_memo_key",
    "decode_memo_key",
    "merge_memoizers",
    "atomic_write_text",
]

_FORMAT_VERSION = 1

# Everything a structurally broken cache file can raise while being
# parsed and decoded: I/O errors, truncated/garbage JSON (json raises a
# ValueError subclass), missing or mistyped fields, non-dict payloads.
_CACHE_LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError, AttributeError)


def _encode_value(value: Any) -> dict:
    if isinstance(value, _GcdCacheEntry):
        return {
            "kind": "gcd",
            "independent": value.independent,
            # `is not None`, not truthiness: a *dependent* entry may
            # legitimately carry an empty basis (unique solution) or an
            # empty offset, which must survive the round trip.
            "x_offset": list(value.x_offset)
            if value.x_offset is not None
            else None,
            "x_basis": [list(row) for row in value.x_basis]
            if value.x_basis is not None
            else None,
        }
    if isinstance(value, _CachedVerdict):
        return {
            "kind": "verdict",
            "dependent": value.dependent,
            "decided_by": value.decided_by,
            "exact": value.exact,
            "distance": list(value.distance_reduced)
            if value.distance_reduced is not None
            else None,
        }
    if isinstance(value, _CachedDirections):
        return {
            "kind": "directions",
            "vectors": sorted(list(v) for v in value.vectors_reduced),
            "exact": value.exact,
            "n_common": value.reduced_n_common,
        }
    raise TypeError(f"cannot persist memo value {value!r}")


def _decode_value(blob: dict) -> Any:
    kind = blob["kind"]
    if kind == "gcd":
        return _GcdCacheEntry(
            independent=blob["independent"],
            x_offset=tuple(blob["x_offset"])
            if blob["x_offset"] is not None
            else None,
            x_basis=tuple(tuple(row) for row in blob["x_basis"])
            if blob["x_basis"] is not None
            else None,
        )
    if kind == "verdict":
        return _CachedVerdict(
            dependent=blob["dependent"],
            decided_by=blob["decided_by"],
            exact=blob["exact"],
            distance_reduced=tuple(blob["distance"])
            if blob["distance"] is not None
            else None,
        )
    if kind == "directions":
        return _CachedDirections(
            vectors_reduced=frozenset(tuple(v) for v in blob["vectors"]),
            exact=blob["exact"],
            reduced_n_common=blob["n_common"],
        )
    raise ValueError(f"unknown memo value kind {kind!r}")


# Public entry-level serde: the serving cache persists memo entries
# individually (so it can evict least-recently-used entries under a
# byte budget) and reuses this format for each value.
encode_memo_value = _encode_value
decode_memo_value = _decode_value


def encode_memo_key(key) -> dict:
    """JSON fields describing a memo key (tuple or interned bytes)."""
    if isinstance(key, bytes):
        return {"key": list(key), "key_type": "b"}
    return {"key": list(key)}


def decode_memo_key(entry: dict):
    """Inverse of :func:`encode_memo_key`; bytes keys re-intern."""
    if entry.get("key_type") == "b":
        return intern_key(bytes(entry["key"]))
    return tuple(entry["key"])


def _encode_table(table: MemoTable) -> dict:
    entries = []
    for key, value in table.items():
        blob = encode_memo_key(key)
        blob["value"] = _encode_value(value)
        entries.append(blob)
    return {
        "size": table.size,
        "fixed_size": table.fixed_size,
        "entries": entries,
    }


def _decode_table(blob: dict) -> MemoTable:
    table = MemoTable(
        size=blob["size"], fixed_size=blob.get("fixed_size", False)
    )
    for entry in blob["entries"]:
        table.update(decode_memo_key(entry), _decode_value(entry["value"]))
    return table


def dumps(memoizer: Memoizer) -> str:
    """Serialize a memoizer to a JSON string."""
    return json.dumps(
        {
            "version": _FORMAT_VERSION,
            "improved": memoizer.improved,
            "symmetry": memoizer.symmetry,
            "no_bounds": _encode_table(memoizer.no_bounds),
            "with_bounds": _encode_table(memoizer.with_bounds),
        }
    )


def loads(text: str) -> Memoizer:
    """Restore a memoizer from :func:`dumps` output."""
    blob = json.loads(text)
    if blob.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported memo format {blob.get('version')!r}")
    return Memoizer(
        no_bounds=_decode_table(blob["no_bounds"]),
        with_bounds=_decode_table(blob["with_bounds"]),
        improved=blob["improved"],
        symmetry=blob["symmetry"],
    )


def merge_memoizers(memoizers) -> Memoizer:
    """Union many memoizers' tables into one fresh memoizer.

    The map-reduce step of the batch engine: each worker fills its own
    tables; the merged table answers every case any worker saw and can
    be persisted to warm-start the next compilation.  All inputs must
    share one keying scheme; values for duplicate keys are equal by
    construction, so last-in wins without affecting answers.  Hit
    statistics start fresh in the merged memoizer.
    """
    memoizers = list(memoizers)
    if not memoizers:
        return Memoizer()
    merged = Memoizer(
        improved=memoizers[0].improved, symmetry=memoizers[0].symmetry
    )
    for memoizer in memoizers:
        merged.merge_from(memoizer)
    return merged


def atomic_write_text(
    path: str | Path, text: str, chaos_site: str | None = None
) -> None:
    """Write a file all-or-nothing: mkstemp + fsync + rename.

    A reader never observes a torn file — it sees either the previous
    complete content or the new one.  The temp file lands in the target
    directory so the final :func:`os.replace` stays within one
    filesystem (rename atomicity).  ``chaos_site`` names this write for
    the deterministic fault-injection harness
    (:mod:`repro.robust.chaos`); injected write failures surface as the
    same :class:`OSError` a full disk would raise, and injected
    corruption mangles the payload before it hits the temp file — both
    without ever corrupting the destination in place.
    """
    path = Path(path)
    data = text.encode()
    if chaos_site is not None:
        from repro.robust.chaos import active_plan, write_fault

        if active_plan() is not None:
            data = write_fault(data, chaos_site, str(path))
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_memoizer(memoizer: Memoizer, path: str | Path) -> None:
    """Write the memoizer to disk for the next compilation session.

    Atomic (see :func:`atomic_write_text`): a crash mid-save leaves the
    previous cache intact instead of a truncated file.
    """
    atomic_write_text(path, dumps(memoizer), chaos_site="persist.save_memoizer")


def load_memoizer(path: str | Path) -> Memoizer:
    """Load a memoizer saved by :func:`save_memoizer`."""
    return loads(Path(path).read_text())


def load_memoizer_safe(path: str | Path) -> Memoizer | None:
    """Load a warm-start table, or ``None`` when the file is unusable.

    A corrupt, truncated or version-mismatched cache file must never
    take the analysis down — it only costs warmth.  Every structural
    decode failure is reported as a :class:`RuntimeWarning` and the
    caller proceeds cold.  A *missing* file is also ``None``, silently:
    "no cache yet" is the normal first-run state, not a defect.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        return loads(path.read_text())
    except _CACHE_LOAD_ERRORS as err:
        warnings.warn(
            f"skipping corrupt warm-start cache {path}: {err!r} "
            "(analysis proceeds cold)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
