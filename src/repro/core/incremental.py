"""Incremental whole-program re-analysis: the dependence-delta engine.

The paper's memo table makes a *repeated query* free; this module makes
a *repeated program* nearly free.  An :class:`IncrementalSession` keeps
the last analyzed :class:`~repro.ir.program.Program` alongside its
:class:`~repro.core.graph.DependenceGraph` and a cache of every pair's
direction-vector answer keyed by the pair's canonical content
(:func:`repro.ir.fingerprint.program_pair_keys`).  When the program is
edited:

1. statement fingerprints of the old and new versions are diffed into
   **kept / dirty / removed** sets (:func:`~repro.ir.fingerprint.
   diff_fingerprints`);
2. only pairs with at least one dirty endpoint miss the pair cache —
   every edge between two kept statements is reused verbatim, however
   the edit shifted statement indices;
3. the missing pairs are re-queried through the existing batch engine
   (:func:`~repro.core.engine.analyze_batch`) with the session's warm
   memo table, so even "new" statements that repeat a known subscript
   pattern cost one memo probe;
4. the results are spliced into a fresh graph built in exactly
   :func:`~repro.core.graph.build_graph`'s pair order, so the delta
   path is **bit-identical** to a cold full re-analysis — the same
   edge list, the same ``to_dot`` text, the same ``edge_dicts`` serde.

That identity is the module's contract, not an aspiration:
``update(..., verify=True)`` runs the full analysis from scratch and
raises :class:`IncrementalMismatchError` on any divergence, and the CI
``incremental-smoke`` job enforces it over a seeded edit storm.

Degraded verdicts (a blown :mod:`repro.robust.budget`) are answered
conservatively in the returned graph but **never retained**: they are
excluded from the pair cache, so the next update re-queries them — a
hedge must not outlive the resource pressure that forced it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.analyzer import DependenceAnalyzer
from repro.core.engine import PairQuery, analyze_batch
from repro.core.graph import DependenceGraph, build_graph
from repro.core.kinds import classify_pair
from repro.core.memo import Memoizer
from repro.core.result import DirectionResult
from repro.ir.fingerprint import (
    FingerprintDelta,
    ProgramFingerprint,
    diff_fingerprints,
    program_fingerprint,
    program_pair_keys,
)
from repro.ir.program import Program, reference_pairs
from repro.robust.budget import ResourceBudget

__all__ = [
    "IncrementalSession",
    "UpdateReport",
    "IncrementalMismatchError",
    "full_graph",
]


class IncrementalMismatchError(AssertionError):
    """The delta path diverged from a full re-analysis (a bug)."""


def full_graph(
    program: Program,
    improved: bool = True,
    symmetry: bool = False,
    fm_budget: int = 256,
) -> DependenceGraph:
    """A cold full re-analysis: fresh analyzer, fresh memo, all pairs.

    The reference the delta path is verified against (``verify=True``,
    the test suite, ``scripts/incremental_smoke.py``).  Deliberately
    ungoverned: the invariant is *delta ≡ full*, and a wall-clock
    budget could make "full" itself nondeterministic.
    """
    analyzer = DependenceAnalyzer(
        memoizer=Memoizer(improved=improved, symmetry=symmetry),
        fm_budget=fm_budget,
        want_witness=False,
    )
    return build_graph(program, analyzer)


@dataclass
class UpdateReport:
    """What one :meth:`IncrementalSession.update` call did."""

    graph: DependenceGraph
    delta: FingerprintDelta
    total_pairs: int
    reused_pairs: int
    requeried_pairs: int
    degraded_pairs: int = 0
    elapsed_s: float = 0.0
    verified: bool = False
    statements: int = 0
    edges: int = field(default=0)

    @property
    def requery_fraction(self) -> float:
        if self.total_pairs == 0:
            return 0.0
        return self.requeried_pairs / self.total_pairs

    def summary(self) -> dict:
        """Plain-data digest (the serve session ops' wire shape)."""
        return {
            "statements": self.statements,
            "kept": len(self.delta.kept),
            "dirty": list(self.delta.dirty),
            "removed": list(self.delta.removed),
            "pairs": self.total_pairs,
            "reused": self.reused_pairs,
            "requeried": self.requeried_pairs,
            "requery_fraction": round(self.requery_fraction, 6),
            "degraded_pairs": self.degraded_pairs,
            "edges": self.edges,
            "elapsed_ms": round(self.elapsed_s * 1000.0, 3),
        }


class IncrementalSession:
    """Analyze a program once, then re-analyze its edits by delta.

    The first :meth:`update` is a full analysis that seeds the pair
    cache; every later call diffs fingerprints and re-queries only the
    dirty pairs.  The session owns (or shares) a
    :class:`~repro.core.memo.Memoizer`, so re-queries warm-start from
    everything the session has ever computed.
    """

    def __init__(
        self,
        memoizer: Memoizer | None = None,
        jobs: int = 1,
        improved: bool = True,
        symmetry: bool = False,
        fm_budget: int = 256,
        budget: ResourceBudget | None = None,
    ):
        self.memoizer = (
            memoizer
            if memoizer is not None
            else Memoizer(improved=improved, symmetry=symmetry)
        )
        self.jobs = jobs
        self.improved = improved
        self.symmetry = symmetry
        self.fm_budget = fm_budget
        self.budget = budget
        self.program: Program | None = None
        self.graph: DependenceGraph | None = None
        self.fingerprint: ProgramFingerprint | None = None
        self._pair_results: dict[str, DirectionResult] = {}

    # -- the delta path ----------------------------------------------------

    def update(self, program: Program, verify: bool = False) -> UpdateReport:
        """Re-analyze ``program``, reusing everything an edit kept.

        Returns the new graph plus delta statistics.  With
        ``verify=True`` a cold full re-analysis runs afterwards and any
        divergence raises :class:`IncrementalMismatchError` (intended
        for tests and smoke jobs; it forfeits the speedup).
        """
        start = time.perf_counter()
        new_fp = program_fingerprint(program)
        if self.fingerprint is None:
            delta = FingerprintDelta(
                kept=(),
                dirty=tuple(range(len(new_fp.statements))),
                removed=(),
            )
        else:
            delta = diff_fingerprints(self.fingerprint, new_fp)

        pairs = reference_pairs(program)
        keys = program_pair_keys(program, new_fp)
        results: dict[int, DirectionResult] = {}
        to_query: list[int] = []
        for index, key in enumerate(keys):
            cached = self._pair_results.get(key)
            if cached is not None:
                results[index] = cached
            else:
                to_query.append(index)

        if to_query:
            report = analyze_batch(
                [
                    PairQuery(
                        ref1=pairs[index][0].ref,
                        nest1=pairs[index][0].nest,
                        ref2=pairs[index][1].ref,
                        nest2=pairs[index][1].nest,
                        tag=index,
                    )
                    for index in to_query
                ],
                jobs=self.jobs,
                warm=self.memoizer,
                want_directions=True,
                want_witness=False,
                improved=self.improved,
                symmetry=self.symmetry,
                fm_budget=self.fm_budget,
                budget=self.budget,
                share_warm=True,
            )
            if report.memoizer is not self.memoizer:
                # Multi-job path: fold the workers' new entries back in
                # (share_warm already did this in place when jobs=1).
                self.memoizer.merge_from(report.memoizer)
            for outcome in report.outcomes:
                directions = outcome.directions
                assert directions is not None  # want_directions=True
                if (
                    directions.degraded_reason is None
                    and outcome.result.degraded_reason is not None
                ):
                    # The verdict itself was degraded: poison the
                    # directions too so retention (below) skips them.
                    directions = DirectionResult(
                        vectors=directions.vectors,
                        n_common=directions.n_common,
                        exact=False,
                        degraded_reason=outcome.result.degraded_reason,
                    )
                results[outcome.query.tag] = directions

        # Splice: rebuild every edge in build_graph's exact pair order,
        # so reused and re-queried answers are indistinguishable.
        graph = DependenceGraph(program)
        degraded_pairs = 0
        retained: dict[str, DirectionResult] = {}
        for index, (site1, site2) in enumerate(pairs):
            directions = results[index]
            if directions.degraded_reason is not None:
                degraded_pairs += 1
            else:
                # The invalidation rule: the retained cache holds only
                # this program's pairs (stale entries for removed or
                # edited statements drop out) and only exact answers.
                retained[keys[index]] = directions
            for edge in classify_pair(site1, site2, directions=directions):
                if edge.kind != "input":
                    graph.edges.append(edge)

        self.program = program
        self.graph = graph
        self.fingerprint = new_fp
        self._pair_results = retained

        report_out = UpdateReport(
            graph=graph,
            delta=delta,
            total_pairs=len(pairs),
            reused_pairs=len(pairs) - len(to_query),
            requeried_pairs=len(to_query),
            degraded_pairs=degraded_pairs,
            elapsed_s=time.perf_counter() - start,
            statements=len(program.statements),
            edges=len(graph.edges),
        )
        if verify:
            self.verify()
            report_out.verified = True
        return report_out

    # -- the invariant -----------------------------------------------------

    def verify(self) -> None:
        """Assert the retained graph ≡ a cold full re-analysis."""
        assert self.program is not None and self.graph is not None
        reference = full_graph(
            self.program,
            improved=self.improved,
            symmetry=self.symmetry,
            fm_budget=self.fm_budget,
        )
        if (
            self.graph.edges != reference.edges
            or self.graph.to_dot() != reference.to_dot()
            or self.graph.edge_dicts() != reference.edge_dicts()
        ):
            raise IncrementalMismatchError(
                "delta graph diverged from full re-analysis: "
                f"{len(self.graph.edges)} delta edges vs "
                f"{len(reference.edges)} full edges"
            )
