"""Program-level dependence graphs.

Aggregates the classified dependence edges of a whole program into one
graph object with the queries downstream transformations ask —
statement-level edges, cycles (fusion clusters), per-loop carried
summaries — plus Graphviz DOT export for inspection.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.analyzer import DependenceAnalyzer
from repro.core.kinds import DependenceEdge, classify_pair
from repro.ir.program import Program, reference_pairs
from repro.system.depsystem import Direction

__all__ = ["DependenceGraph", "build_graph"]


@dataclass
class DependenceGraph:
    """Statement-level dependence graph of one program."""

    program: Program
    edges: list[DependenceEdge] = field(default_factory=list)

    # -- queries ---------------------------------------------------------------

    def statement_edges(self) -> list[tuple[int, int, DependenceEdge]]:
        """Edges as (source statement index, sink statement index, edge)."""
        return [
            (edge.source.stmt_index, edge.sink.stmt_index, edge)
            for edge in self.edges
        ]

    def successors(self, stmt_index: int) -> set[int]:
        return {
            dst
            for src, dst, _ in self.statement_edges()
            if src == stmt_index and dst != stmt_index
        }

    def carried_by_level(self) -> dict[int, list[DependenceEdge]]:
        """Edges grouped by the loop level that may carry them."""
        by_level: dict[int, list[DependenceEdge]] = defaultdict(list)
        for edge in self.edges:
            for level, component in enumerate(edge.vector):
                if component == Direction.EQ:
                    continue
                by_level[level].append(edge)
                if component != Direction.ANY:
                    break
        return dict(by_level)

    def loop_independent_edges(self) -> list[DependenceEdge]:
        return [
            edge
            for edge in self.edges
            if all(c == Direction.EQ for c in edge.vector)
        ]

    def kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for edge in self.edges:
            counts[edge.kind] += 1
        return dict(counts)

    # -- export ------------------------------------------------------------------

    def edge_dicts(self) -> list[dict]:
        """Canonical plain-data form of every edge, in graph order.

        The serde half of the delta ≡ full invariant: two graphs over
        the same program are interchangeable iff their ``edge_dicts``
        (and :meth:`to_dot`) compare equal, so the incremental engine,
        the serve ``graph`` op and the CI smoke jobs all diff this one
        encoding.
        """
        return [
            {
                "source": {
                    "stmt": edge.source.stmt_index,
                    "site": edge.source.site_index,
                    "ref": str(edge.source.ref),
                },
                "sink": {
                    "stmt": edge.sink.stmt_index,
                    "site": edge.sink.site_index,
                    "ref": str(edge.sink.ref),
                },
                "kind": edge.kind,
                "vector": list(edge.vector),
                "loop_carried": edge.loop_carried,
            }
            for edge in self.edges
        ]

    def to_dot(self) -> str:
        """Graphviz DOT text: one node per statement, labelled edges."""
        lines = ["digraph dependences {", "  rankdir=TB;"]
        for index, stmt in enumerate(self.program.statements):
            label = str(stmt.write) if stmt.write else f"S{index}"
            lines.append(f'  s{index} [label="S{index}: {label}" shape=box];')
        styles = {"flow": "solid", "anti": "dashed", "output": "dotted"}
        for src, dst, edge in self.statement_edges():
            vector = " ".join(edge.vector) or "scalar"
            style = styles.get(edge.kind, "solid")
            lines.append(
                f'  s{src} -> s{dst} [label="{edge.kind} ({vector})" '
                f"style={style}];"
            )
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.edges)


def build_graph(
    program: Program, analyzer: DependenceAnalyzer | None = None
) -> DependenceGraph:
    """Classify every reference pair and assemble the graph.

    Input (read-read) edges are excluded — they never constrain
    execution order.
    """
    if analyzer is None:
        analyzer = DependenceAnalyzer()
    graph = DependenceGraph(program)
    for site1, site2 in reference_pairs(program):
        for edge in classify_pair(site1, site2, analyzer):
            if edge.kind != "input":
                graph.edges.append(edge)
    return graph
