"""The cascaded exact dependence analyzer — the paper's contribution."""

from repro.core.analyzer import DependenceAnalyzer
from repro.core.directions import DirectionOptions, refine_directions
from repro.core.distances import constant_distances, forced_directions
from repro.core.engine import (
    BatchReport,
    PairOutcome,
    PairQuery,
    analyze_batch,
    queries_from_program,
    queries_from_suite,
)
from repro.core.graph import DependenceGraph, build_graph
from repro.core.kinds import DependenceEdge, DependenceKind, classify_pair
from repro.core.memo import Memoizer, MemoStats, MemoTable, paper_hash
from repro.core.parallel import (
    LoopReport,
    aggregate_loop_reports,
    analyze_parallelism,
    carried_levels,
)
from repro.core.persist import load_memoizer, merge_memoizers, save_memoizer
from repro.core.result import DECIDED_CONSTANT, DependenceResult, DirectionResult
from repro.core.separable import is_separable, separable_directions
from repro.core.stats import TEST_ORDER, AnalyzerStats
from repro.core.symbolic import (
    has_symbolic_terms,
    problem_is_symbolic,
    symbolic_terms,
)
from repro.core.transforms import (
    gather_dependences,
    interchange_legal,
    permutation_legal,
    reversal_legal,
)
from repro.core.vectorize import VectorizationResult, vectorize

__all__ = [
    "DependenceAnalyzer",
    "DependenceResult",
    "DirectionResult",
    "DECIDED_CONSTANT",
    "DirectionOptions",
    "refine_directions",
    "constant_distances",
    "forced_directions",
    "MemoTable",
    "MemoStats",
    "Memoizer",
    "paper_hash",
    "save_memoizer",
    "load_memoizer",
    "merge_memoizers",
    "BatchReport",
    "PairOutcome",
    "PairQuery",
    "analyze_batch",
    "queries_from_program",
    "queries_from_suite",
    "aggregate_loop_reports",
    "AnalyzerStats",
    "TEST_ORDER",
    "has_symbolic_terms",
    "symbolic_terms",
    "problem_is_symbolic",
    "DependenceKind",
    "DependenceEdge",
    "classify_pair",
    "LoopReport",
    "analyze_parallelism",
    "carried_levels",
    "is_separable",
    "separable_directions",
    "gather_dependences",
    "permutation_legal",
    "interchange_legal",
    "reversal_legal",
    "DependenceGraph",
    "build_graph",
    "vectorize",
    "VectorizationResult",
]
