"""Dependence kind classification (flow / anti / output / input).

Direction vectors say *when* two references collide; the access kinds
say *what* the collision means to a compiler:

* **flow** (true) dependence — a write reaches a later read;
* **anti** dependence — a read precedes a later write of the same cell;
* **output** dependence — two writes to the same cell, order matters;
* **input** "dependence" — two reads; harmless, tracked for locality.

For a pair ``(r1, r2)`` with direction vector ``psi`` (components over
the common loops), ``r1``'s iteration precedes ``r2``'s iff the first
non-``=`` component is ``<``; it follows iff that component is ``>``;
all-``=`` vectors are loop-independent and program order (statement
position) breaks the tie.  Classification therefore needs both the
direction vectors and the sites' order in the program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import DependenceAnalyzer
from repro.core.result import DirectionResult
from repro.ir.program import AccessSite
from repro.system.depsystem import Direction

__all__ = ["DependenceKind", "DependenceEdge", "classify_pair"]


class DependenceKind:
    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    INPUT = "input"


@dataclass(frozen=True)
class DependenceEdge:
    """One classified dependence: source site, sink site, kind, vector.

    The *source* executes first; the vector is expressed source-to-sink
    (its first non-``=`` component, if any, is ``<`` or ``*``).
    """

    source: AccessSite
    sink: AccessSite
    kind: str
    vector: tuple[str, ...]
    loop_carried: bool


def _first_direction(vector: tuple[str, ...]) -> str:
    """The orientation of a vector: '<', '>', '=' or '*' (ambiguous)."""
    for component in vector:
        if component == Direction.EQ:
            continue
        return component
    return Direction.EQ


def _flip(vector: tuple[str, ...]) -> tuple[str, ...]:
    swap = {
        Direction.LT: Direction.GT,
        Direction.GT: Direction.LT,
        Direction.EQ: Direction.EQ,
        Direction.ANY: Direction.ANY,
    }
    return tuple(swap[c] for c in vector)


def _kind(first_is_write: bool, second_is_write: bool) -> str:
    if first_is_write and second_is_write:
        return DependenceKind.OUTPUT
    if first_is_write:
        return DependenceKind.FLOW
    if second_is_write:
        return DependenceKind.ANTI
    return DependenceKind.INPUT


def classify_pair(
    site1: AccessSite,
    site2: AccessSite,
    analyzer: DependenceAnalyzer | None = None,
    directions: DirectionResult | None = None,
) -> list[DependenceEdge]:
    """All dependence edges between two sites, oriented source->sink.

    Each maximal direction vector yields one edge.  A ``>``-oriented
    vector means ``site2``'s iteration actually precedes ``site1``'s,
    so the edge is flipped; an all-``=`` vector is loop-independent and
    oriented by statement order; a leading-``*`` vector is conservative
    in both orientations and reported as two edges.
    """
    if analyzer is None:
        analyzer = DependenceAnalyzer()
    if directions is None:
        directions = analyzer.directions(
            site1.ref, site1.nest, site2.ref, site2.nest
        )
    edges: list[DependenceEdge] = []
    for vector in sorted(directions.vectors):
        first = _first_direction(vector)
        if first == Direction.LT:
            orientations = [(site1, site2, vector)]
        elif first == Direction.GT:
            orientations = [(site2, site1, _flip(vector))]
        elif first == Direction.EQ:
            if site1.stmt_index == site2.stmt_index:
                # Within one statement instance the right-hand side is
                # evaluated before the store: reads execute first, so a
                # same-iteration write/read collision is an *anti*
                # dependence from the read to the write.
                if site1.ref.is_write and not site2.ref.is_write:
                    orientations = [(site2, site1, _flip(vector))]
                else:
                    orientations = [(site1, site2, vector)]
            elif site1.site_index <= site2.site_index:
                orientations = [(site1, site2, vector)]
            else:
                orientations = [(site2, site1, _flip(vector))]
        else:  # leading '*': both orientations possible
            orientations = [
                (site1, site2, vector),
                (site2, site1, _flip(vector)),
            ]
        for source, sink, oriented in orientations:
            edges.append(
                DependenceEdge(
                    source=source,
                    sink=sink,
                    kind=_kind(source.ref.is_write, sink.ref.is_write),
                    vector=oriented,
                    loop_carried=_first_direction(oriented) != Direction.EQ,
                )
            )
    return edges
