"""Batched whole-program dependence analysis: the sharded driver.

The paper's measurements end at single-query memoization: 5,679 queries
collapse to 332 actual tests because real programs repeat a handful of
subscript/bound patterns.  This module turns that observation into a
whole-program (and multi-program) execution strategy:

1. **Pre-screening** — unequal-constant subscript pairs are answered
   inline with no dependence system at all (Table 1's first column).
2. **Deduplication** — remaining pairs are grouped twice before any
   analysis: structurally (identical ``(ref, nest)`` tuples — exact
   textual repeats) and canonically (equal
   :meth:`~repro.system.depsystem.DependenceProblem.key_vector`
   serializations — alpha-renamed twins).  Each canonical problem is
   analyzed exactly once, so duplicated queries never even pay for
   a memo probe.
3. **Sharding** — unique problems are dealt round-robin across a
   ``multiprocessing`` worker pool; every worker runs its own
   :class:`~repro.core.analyzer.DependenceAnalyzer` with a private
   :class:`~repro.core.memo.Memoizer`.
4. **Map-reduce merging** — worker verdicts are fanned back out to the
   original query order, :class:`~repro.core.stats.AnalyzerStats` are
   summed, and the workers' memo tables are unioned with
   :func:`~repro.core.persist.merge_memoizers` so the merged table can
   be persisted and **warm-start** a later run (the paper's "store the
   hash table across compilations" idea, section 5's last paragraph).

Results are deterministic: the outcome list preserves input order and
each verdict is computed by exactly one analyzer on one canonical
problem, so the shard count never changes any answer.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.core.persist import (
    dumps as _memo_dumps,
    load_memoizer_safe,
    loads as _memo_loads,
    merge_memoizers,
)
from repro.core.result import DependenceResult, DirectionResult
from repro.core.stats import AnalyzerStats
from repro.robust.budget import (
    DEGRADED_BUDGET,
    REASON_QUARANTINE,
    ResourceBudget,
)
from repro.ir.arrays import ArrayRef
from repro.obs.events import ConstantScreen, QueryEnd, QueryStart
from repro.obs.sinks import CollectingSink, TraceSink, merge_event_streams
from repro.ir.loops import LoopNest
from repro.ir.program import Program, reference_pairs
from repro.system.depsystem import build_problem

__all__ = [
    "PairQuery",
    "PairOutcome",
    "BatchReport",
    "analyze_batch",
    "queries_from_program",
    "queries_from_suite",
]


@dataclass(frozen=True)
class PairQuery:
    """One dependence question posed to the batch engine."""

    ref1: ArrayRef
    nest1: LoopNest
    ref2: ArrayRef
    nest2: LoopNest
    tag: Any = field(default=None, compare=False)


@dataclass
class PairOutcome:
    """The engine's answer for one input query.

    ``deduped`` marks outcomes that shared another query's analysis
    (structural or canonical duplicate) rather than being the
    representative that was actually dispatched.
    """

    query: PairQuery
    result: DependenceResult
    directions: DirectionResult | None
    deduped: bool = False


@dataclass
class BatchReport:
    """Everything a batch run produced.

    ``stats`` merges the workers' analyzer counters (plus the inline
    constant screen); ``memoizer`` is the union of every worker's memo
    tables, ready for :func:`~repro.core.persist.save_memoizer`.
    """

    outcomes: list[PairOutcome]
    stats: AnalyzerStats
    memoizer: Memoizer
    jobs: int
    n_queries: int
    n_screened: int
    n_unique_pairs: int
    n_unique_problems: int
    quarantine: list = field(default_factory=list)

    @property
    def results(self) -> list[DependenceResult]:
        return [outcome.result for outcome in self.outcomes]

    def hit_rate_bounds(self) -> float:
        if self.stats.memo_queries_bounds == 0:
            return 0.0
        return self.stats.memo_hits_bounds / self.stats.memo_queries_bounds

    def hit_rate_no_bounds(self) -> float:
        if self.stats.memo_queries_no_bounds == 0:
            return 0.0
        return (
            self.stats.memo_hits_no_bounds
            / self.stats.memo_queries_no_bounds
        )

    @property
    def degraded_outcomes(self) -> list[PairOutcome]:
        """Outcomes answered conservatively by the robustness layer."""
        return [
            outcome
            for outcome in self.outcomes
            if outcome.result.degraded_reason is not None
            or (
                outcome.directions is not None
                and outcome.directions.degraded_reason is not None
            )
        ]

    def summary(self) -> dict:
        """Plain-data digest for CLIs and benchmark logs."""
        return {
            "queries": self.n_queries,
            "screened_constant": self.n_screened,
            "unique_pairs": self.n_unique_pairs,
            "unique_problems": self.n_unique_problems,
            "jobs": self.jobs,
            "tests_run": sum(self.stats.decided_by.values()),
            "memo_hit_rate_no_bounds": self.hit_rate_no_bounds(),
            "memo_hit_rate_bounds": self.hit_rate_bounds(),
            "memo_entries": len(self.memoizer.no_bounds)
            + len(self.memoizer.with_bounds),
            "quarantined": len(self.quarantine),
            "degraded_queries": len(self.degraded_outcomes),
        }


# -- gathering queries ---------------------------------------------------------


def queries_from_program(
    program: Program, include_self_output: bool = False
) -> list[PairQuery]:
    """Every testable reference pair of one program, tagged with sites."""
    return [
        PairQuery(
            ref1=site1.ref,
            nest1=site1.nest,
            ref2=site2.ref,
            nest2=site2.nest,
            tag=(site1, site2),
        )
        for site1, site2 in reference_pairs(
            program, include_self_output=include_self_output
        )
    ]


def queries_from_suite(suite) -> list[PairQuery]:
    """Flatten a :func:`repro.perfect.load_suite` corpus into one batch."""
    out: list[PairQuery] = []
    for program in suite:
        for query in program.queries:
            out.append(
                PairQuery(
                    ref1=query.ref1,
                    nest1=query.nest1,
                    ref2=query.ref2,
                    nest2=query.nest2,
                    tag=(program.name, query.bucket),
                )
            )
    return out


def _as_pair(query) -> PairQuery:
    if isinstance(query, PairQuery):
        return query
    return PairQuery(
        ref1=query.ref1,
        nest1=query.nest1,
        ref2=query.ref2,
        nest2=query.nest2,
        tag=getattr(query, "bucket", None),
    )


# -- the sharded worker --------------------------------------------------------


def _run_shard(payload):
    """Analyze one shard of unique problems (runs in a worker process).

    ``payload`` is ``(reps, warm_blob, opts)`` where ``reps`` is a list
    of ``(rep_index, ref1, nest1, ref2, nest2)`` tuples; an optional
    fourth element maps rep indices to the problems stage 2 already
    built (attached only on the in-process path, where they are shared
    objects rather than pickled copies).  Returns the
    per-representative answers plus this worker's stats, serialized
    memo tables, and (when tracing) collected trace events for the
    reduce step.
    """
    reps, warm_blob, opts = payload[:3]
    prebuilt = payload[3] if len(payload) > 3 else None
    if warm_blob is None:
        memoizer = Memoizer(
            improved=opts["improved"], symmetry=opts["symmetry"]
        )
    elif isinstance(warm_blob, Memoizer):
        # share_warm serial path: the caller's live table, extended in
        # place — no dump/load round trip (see analyze_batch).
        memoizer = warm_blob
    else:
        memoizer = _memo_loads(warm_blob)
    shard_sink = CollectingSink() if opts.get("trace") else None
    analyzer = DependenceAnalyzer(
        memoizer=memoizer,
        fm_budget=opts["fm_budget"],
        want_witness=opts["want_witness"],
        sink=shard_sink,
        budget=opts.get("budget"),
    )
    if prebuilt is not None:
        # Seed the analyzer's problem cache with the systems stage 2
        # already constructed, so each representative skips a second
        # build_problem + key encoding round.
        for rep_index, ref1, nest1, ref2, nest2 in reps:
            problem = prebuilt.get(rep_index)
            if problem is not None:
                analyzer._problem_cache[(ref1, nest1, ref2, nest2)] = problem
    answers = []
    for rep_index, ref1, nest1, ref2, nest2 in reps:
        result = analyzer.analyze(ref1, nest1, ref2, nest2)
        directions = None
        if opts["want_directions"]:
            if result.dependent:
                directions = analyzer.directions(ref1, nest1, ref2, nest2)
            else:
                directions = DirectionResult(
                    vectors=frozenset(),
                    n_common=nest1.common_prefix_depth(nest2),
                )
        answers.append((rep_index, result, directions))
    events = shard_sink.events if shard_sink is not None else []
    if opts.get("pickle_wire"):
        # Plain pool path: ship the memoizer itself (pickled by the
        # pool transparently) instead of a JSON dump — the checkpoint
        # format is the only consumer that needs the JSON blob.
        return answers, analyzer.stats, memoizer, events
    return answers, analyzer.stats, _memo_dumps(memoizer), events


def _pool_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# -- supervised execution (watchdog / checkpoint) ------------------------------


def _split_payload(payload):
    """Break a shard payload into per-case payloads for poison isolation.

    Returns ``(rep_index, label, case_payload)`` triples where each
    ``case_payload`` is a valid single-case :func:`_run_shard` input.
    """
    reps, warm_blob, opts = payload
    return [
        (
            case[0],
            f"{case[1]} vs {case[3]}",
            ([case], warm_blob, opts),
        )
        for case in reps
    ]


def _quarantine_fallback(case_payload):
    """Answer a poison case conservatively, in-process.

    A case that repeatedly killed or hung its workers is retried here
    under a strict resource budget (so a pathological system terminates
    degraded rather than hanging the driver).  If even that raises, the
    answer is hand-built: dependent, all-``'*'`` directions, flagged
    with the ``quarantine`` reason code.
    """
    reps, warm_blob, opts = case_payload
    strict_opts = dict(opts, budget=ResourceBudget.strict(), trace=False)
    try:
        return _run_shard((reps, warm_blob, strict_opts))
    except Exception:
        stats = AnalyzerStats()
        answers = []
        for rep_index, _ref1, nest1, _ref2, nest2 in reps:
            stats.registry.inc_family("robust.degraded", REASON_QUARANTINE)
            result = DependenceResult(
                dependent=True,
                decided_by=DEGRADED_BUDGET,
                exact=False,
                degraded_reason=REASON_QUARANTINE,
            )
            directions = None
            if opts["want_directions"]:
                n_common = nest1.common_prefix_depth(nest2)
                directions = DirectionResult(
                    vectors=frozenset({("*",) * n_common}),
                    n_common=n_common,
                    exact=False,
                    degraded_reason=REASON_QUARANTINE,
                )
            answers.append((rep_index, result, directions))
        memoizer = Memoizer(
            improved=opts["improved"], symmetry=opts["symmetry"]
        )
        return answers, stats, _memo_dumps(memoizer), []


# -- the driver ---------------------------------------------------------------


def analyze_batch(
    queries: Iterable,
    jobs: int | None = None,
    warm: Memoizer | str | Path | None = None,
    want_directions: bool = True,
    want_witness: bool = False,
    improved: bool = True,
    symmetry: bool = False,
    fm_budget: int = 256,
    sink: TraceSink | None = None,
    pool_map: Callable[[list], list] | None = None,
    budget: ResourceBudget | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    shard_timeout: float | None = None,
    shard_retries: int = 1,
    share_warm: bool = False,
) -> BatchReport:
    """Analyze a whole batch of dependence queries, sharded over workers.

    ``queries`` may hold :class:`PairQuery` objects or anything with
    ``ref1/nest1/ref2/nest2`` attributes (e.g. the synthetic suite's
    :class:`~repro.perfect.patterns.Query`).  ``jobs`` defaults to the
    machine's CPU count; ``jobs=1`` runs the identical pipeline
    in-process (dedup still applies).  ``warm`` pre-loads every worker's
    memoizer from a previous run's merged table (a
    :class:`~repro.core.memo.Memoizer` or a path saved by
    :func:`~repro.core.persist.save_memoizer`); its keying scheme must
    match ``improved``/``symmetry``.

    With a ``sink``, every worker collects its queries' trace events
    and the reduce step replays them into the sink in deterministic
    round-robin shard order with globally renumbered query ids —
    sharding never changes the trace (timings aside).

    ``pool_map`` lets a caller supply its own fan-out executor (e.g.
    the serving layer's persistent :class:`repro.serve.pool.WorkerPool`
    with crashed-worker recycling): it receives the list of shard
    payloads and must return one :func:`_run_shard` output per payload,
    in order.  ``None`` keeps the built-in per-call pool.

    ``budget`` bounds every worker's analyzer
    (:class:`~repro.robust.budget.ResourceBudget`); a blown budget
    degrades that query to a conservative flagged answer instead of
    running away.  ``shard_timeout``/``shard_retries`` and
    ``checkpoint``/``resume`` switch execution to the supervised path
    (:func:`repro.robust.watchdog.run_supervised`): each shard runs in
    its own watched process, a case that defeats ``shard_retries``
    retries is quarantined (conservative in-process answer, reported in
    :attr:`BatchReport.quarantine`), and completed shards are
    checkpointed atomically so ``resume=True`` replays them instead of
    recomputing — the resumed run's report is identical to an
    uninterrupted one.  ``checkpoint`` cannot be combined with a trace
    ``sink`` (event streams are not checkpointable).

    ``share_warm=True`` lets the serial in-process path (one shard, or
    ``jobs=1``) use the caller's ``warm`` :class:`Memoizer` *object*
    directly instead of round-tripping it through the JSON dump format:
    the shard extends it in place and :attr:`BatchReport.memoizer` *is*
    that object.  Answers are identical either way (memo entries are
    pure); the only observable difference is that the caller's table
    gains the batch's entries without a merge step — exactly what a
    long-lived incremental session wants, and a large constant saving
    when the warm table dwarfs the query list.  Ignored on
    multi-process, pool and supervised paths (workers need a
    serializable copy).
    """
    items = [_as_pair(query) for query in queries]
    n_queries = len(items)
    outcomes: list[PairOutcome | None] = [None] * n_queries
    screen_stats = AnalyzerStats()
    trace = sink is not None and sink.enabled
    screen_events: list = []
    screen_qid = 0

    if warm is not None and not isinstance(warm, Memoizer):
        # A broken warm-start file only costs warmth, never the run
        # (load_memoizer_safe warns and returns None on corruption).
        warm = load_memoizer_safe(warm)
    if warm is not None and (
        warm.improved != improved or warm.symmetry != symmetry
    ):
        raise ValueError(
            "warm-start memoizer uses a different keying scheme "
            f"(improved={warm.improved}, symmetry={warm.symmetry})"
        )

    # Stage 1: constant screen + structural dedup, one dict probe per
    # repeated query.  Unequal-constant subscripts are independent
    # with no system at all; identical (ref, nest) tuples collapse
    # before any problem is built.  The first occurrence of a pair
    # decides screen-vs-dedup; every repeat reuses that decision (and
    # the screened pair's shared immutable result objects) from the
    # same structural map.
    structural: dict[tuple, int | tuple] = {}
    unique_items: list[PairQuery] = []
    owners: list[list[int]] = []
    n_screened = 0
    for idx, item in enumerate(items):
        key = (item.ref1, item.nest1, item.ref2, item.nest2)
        entry = structural.get(key)
        if entry is None:
            constant = DependenceAnalyzer._constant_fast_path(
                item.ref1, item.ref2
            )
            if constant is not None and not constant.dependent:
                n_common = item.nest1.common_prefix_depth(item.nest2)
                directions = None
                if want_directions:
                    directions = DirectionResult(
                        vectors=frozenset(), n_common=n_common
                    )
                entry = (constant, directions, n_common)
                structural[key] = entry
            else:
                position = len(unique_items)
                structural[key] = position
                unique_items.append(item)
                owners.append([idx])
                continue
        elif type(entry) is int:
            owners[entry].append(idx)
            continue
        constant, directions, n_common = entry
        screen_stats.total_queries += 1
        screen_stats.constant_cases += 1
        if trace:
            screen_events.append(
                QueryStart(
                    op="analyze",
                    ref1=str(item.ref1),
                    ref2=str(item.ref2),
                    n_common=n_common,
                    query_id=screen_qid,
                )
            )
            screen_events.append(
                ConstantScreen(independent=True, query_id=screen_qid)
            )
            screen_events.append(
                QueryEnd(
                    dependent=False,
                    decided_by=constant.decided_by,
                    exact=True,
                    elapsed_ns=0,
                    query_id=screen_qid,
                )
            )
            screen_qid += 1
        outcomes[idx] = PairOutcome(
            query=item, result=constant, directions=directions
        )
        n_screened += 1

    # Stage 2: canonical dedup.  Problems serializing to the same full
    # key vector are the same integer system (alpha-renamed twins), so
    # one analysis answers them all.  The key is computed on the *full*
    # problem — reduced-key merging stays the memoizer's job because
    # direction lifting depends on each query's own loop structure.
    canonical: dict[tuple[int, ...], int] = {}
    reps: list[PairQuery] = []
    rep_problems: list = []
    rep_costs: list[int] = []
    rep_owners: list[list[int]] = []
    for position, item in enumerate(unique_items):
        problem = build_problem(item.ref1, item.nest1, item.ref2, item.nest2)
        key = problem.key_vector(with_bounds=True)
        rep_position = canonical.get(key)
        if rep_position is None:
            rep_position = len(reps)
            canonical[key] = rep_position
            reps.append(item)
            rep_problems.append(problem)
            # Cost proxy for shard balancing: direction refinement is
            # the dominant per-problem cost and grows with both the
            # system size and the number of common loops to refine.
            rep_costs.append(
                (len(problem.bounds.constraints) + 1)
                * (item.nest1.common_prefix_depth(item.nest2) + 1)
            )
            rep_owners.append([])
        rep_owners[rep_position].append(position)

    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, max(1, len(reps))))

    # The serial in-process fan-out (mirrors the branch order below:
    # supervised first, then single-payload/jobs==1, then pool_map,
    # then the single-CPU fallback).
    serial = (
        checkpoint is None
        and shard_timeout is None
        and (
            jobs == 1
            or len(reps) <= 1
            or (pool_map is None and (os.cpu_count() or 1) < 2)
        )
    )
    if warm is None:
        warm_blob = None
    elif share_warm and serial:
        warm_blob = warm  # live object: the shard extends it in place
    else:
        warm_blob = _memo_dumps(warm)
    opts = {
        "improved": improved,
        "symmetry": symmetry,
        "fm_budget": fm_budget,
        "want_witness": want_witness,
        "want_directions": want_directions,
        "trace": trace,
        "budget": budget,
        # Workers return live Memoizer objects over the pool's pickle
        # channel unless a checkpoint needs the JSON memo blob.
        "pickle_wire": checkpoint is None,
    }

    # Stage 3: deterministic cost-balanced sharding and fan-out.
    # Greedy longest-processing-time assignment on the stage-2 cost
    # proxy: heaviest representative first, onto the least-loaded
    # shard (ties to the lowest shard index).  A pure function of the
    # input — replay order stays deterministic — and it keeps one
    # pathological shard from serializing the whole fan-out.
    shards: list[list[tuple]] = [[] for _ in range(jobs)]
    loads = [0] * jobs
    order = sorted(
        range(len(reps)), key=lambda i: (-rep_costs[i], i)
    )
    for rep_index in order:
        shard_index = min(range(jobs), key=lambda j: (loads[j], j))
        loads[shard_index] += rep_costs[rep_index]
        shards[shard_index].append(rep_index)
    payloads = []
    for shard in shards:
        if not shard:
            continue
        shard.sort()
        payloads.append(
            (
                [
                    (
                        rep_index,
                        reps[rep_index].ref1,
                        reps[rep_index].nest1,
                        reps[rep_index].ref2,
                        reps[rep_index].nest2,
                    )
                    for rep_index in shard
                ],
                warm_blob,
                opts,
            )
        )
    quarantine: list = []
    watchdog_stats: list[AnalyzerStats] = []
    if checkpoint is not None or shard_timeout is not None:
        if checkpoint is not None and trace:
            raise ValueError(
                "checkpointing cannot be combined with a trace sink "
                "(event streams are not checkpointable)"
            )
        # Imported here so the common path never touches the robust
        # machinery (and so repro.robust stays import-light).
        from repro.robust.checkpoint import BatchCheckpoint, fingerprint_batch
        from repro.robust.watchdog import run_supervised

        ckpt = None
        done = None
        if checkpoint is not None:
            fingerprint = fingerprint_batch(
                list(canonical.keys()),
                {k: v for k, v in opts.items() if k != "trace"},
            )
            ckpt = BatchCheckpoint(checkpoint, fingerprint)
            done = ckpt.load(resume)
        wd_stats = AnalyzerStats()
        watchdog_stats.append(wd_stats)
        groups, quarantine = run_supervised(
            payloads,
            _run_shard,
            timeout=shard_timeout,
            attempts=1 + max(0, shard_retries),
            split=_split_payload,
            fallback=_quarantine_fallback,
            registry=wd_stats.registry,
            done=done,
            on_result=ckpt.record if ckpt is not None else None,
            max_workers=jobs,
        )
        shard_outputs = [output for group in groups for output in group]
    elif len(payloads) <= 1 or jobs == 1:
        prebuilt = dict(enumerate(rep_problems))
        shard_outputs = [
            _run_shard(payload + (prebuilt,)) for payload in payloads
        ]
    elif pool_map is not None:
        shard_outputs = pool_map(payloads)
    elif (os.cpu_count() or 1) < 2:
        # One CPU: forked workers would timeshare the core and pay
        # fork + IPC for nothing.  Run the same shard payloads
        # in-process, in order — identical outputs, no pool tax — and
        # hand each shard the stage-2 problem objects (shared, not
        # pickled) to skip rebuilding them.
        prebuilt = dict(enumerate(rep_problems))
        shard_outputs = [
            _run_shard(payload + (prebuilt,)) for payload in payloads
        ]
    else:
        context = _pool_context()
        with context.Pool(processes=len(payloads)) as pool:
            shard_outputs = pool.map(_run_shard, payloads)

    # Stage 4: reduce.  Merge stats and memo tables; fan each
    # representative's answer back out to every query it stands for.
    merged_stats = AnalyzerStats.merged(
        [screen_stats]
        + watchdog_stats
        + [stats for _, stats, _, _ in shard_outputs]
    )
    worker_memos = [
        blob if isinstance(blob, Memoizer) else _memo_loads(blob)
        for _, _, blob, _ in shard_outputs
    ]
    if worker_memos and all(memo is warm for memo in worker_memos):
        # share_warm serial path: every shard extended the caller's
        # table in place; it already is the merge.
        merged_memo = warm
    elif worker_memos:
        merged_memo = merge_memoizers(worker_memos)
    elif warm is not None:
        merged_memo = warm
    else:
        merged_memo = Memoizer(improved=improved, symmetry=symmetry)

    if trace:
        # Shard assignment is a deterministic function of the input
        # (greedy on stage-2 costs) and pool.map preserves payload
        # order, so this replay order is a pure function of the input.
        streams = [screen_events]
        streams.extend(events for _, _, _, events in shard_outputs)
        for event in merge_event_streams(streams):
            sink.emit(event)

    rep_answers: dict[int, tuple[DependenceResult, DirectionResult | None]] = {}
    for answers, _, _, _ in shard_outputs:
        for rep_index, result, directions in answers:
            rep_answers[rep_index] = (result, directions)
    for rep_index, positions in enumerate(rep_owners):
        result, directions = rep_answers[rep_index]
        first = True
        for position in positions:
            for idx in owners[position]:
                outcomes[idx] = PairOutcome(
                    query=items[idx],
                    result=result,
                    directions=directions,
                    deduped=not first,
                )
                first = False

    assert all(outcome is not None for outcome in outcomes)
    return BatchReport(
        outcomes=outcomes,  # type: ignore[arg-type]
        stats=merged_stats,
        memoizer=merged_memo,
        jobs=jobs,
        n_queries=n_queries,
        n_screened=n_screened,
        n_unique_pairs=len(unique_items),
        n_unique_problems=len(reps),
        quarantine=quarantine,
    )
