"""Pruning optimizations for direction-vector computation (section 6).

The two prunings that collapse Table 4's ~12,500 tests to Table 5's
~900 live next to the code they modify; this module re-exports them as
one documented surface:

* **unused-variable elimination** —
  :meth:`repro.system.depsystem.DependenceProblem.eliminate_unused`
  drops loop indices that appear in no subscript (nor in the bounds of
  any that do); their direction components are ``*`` for free.
* **distance-vector pruning** —
  :func:`repro.core.distances.forced_directions` fixes the direction of
  any level whose GCD distance is a provable constant.
"""

from __future__ import annotations

from repro.core.distances import constant_distances, forced_directions

__all__ = ["constant_distances", "forced_directions"]
