"""Memoization of dependence queries (paper section 5).

Real programs repeat a small number of unique subscript/bound patterns,
so remembering previous answers removes the vast majority of test
invocations (5,679 -> 332 on the PERFECT Club).  Two tables are kept:

* a **no-bounds** table keyed on the subscript equations alone — a hit
  here reuses the Extended GCD outcome (the GCD test never looks at
  bounds);
* a **with-bounds** table keyed on equations plus loop bounds — a hit
  reuses the full verdict (and any direction-vector analysis).

The hash is the paper's: treating the problem as one long integer
vector ``z``, ``h(z) = size(z) + sum_i 2^i * z_i``, chosen so that
symmetrical or partially symmetrical references do not collide; the
table is a simple open-hashing scheme (buckets of entries, full-key
comparison on probe).

The paper fixes the table at 4096 slots, which degrades linearly once a
whole-program (or multi-program) workload pushes the load factor past
one.  By default the table now doubles and rehashes when its load
factor exceeds ``max_load`` (0.75); ``fixed_size=True`` preserves the
published fixed-slot scheme for the reproduction tables (Tables 2-3).

The *improved* scheme additionally drops the bound constraints of
unused loop indices before keying, merging cases that differ only in
irrelevant surrounding loops; see
:meth:`repro.system.depsystem.DependenceProblem.eliminate_unused`.

As a further optimization the paper suggests canonicalizing symmetric
pairs (comparing ``a[i]`` to ``a[i-1]`` is the same problem as
comparing ``a[i-1]`` to ``a[i]``); :class:`MemoTable` supports this via
``symmetry=True`` (off by default to mirror the published scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["MemoTable", "MemoStats", "paper_hash"]


def paper_hash(vector: tuple[int, ...], table_size: int) -> int:
    """The paper's hash: ``h(z) = size(z) + sum_i 2^i * z_i`` mod table size."""
    acc = len(vector)
    weight = 1
    for z in vector:
        acc += weight * z
        weight = (weight * 2) % table_size
    return acc % table_size


@dataclass
class MemoStats:
    """Hit/miss accounting for one table."""

    queries: int = 0
    hits: int = 0
    inserts: int = 0
    probe_collisions: int = 0  # bucket entries inspected that did not match

    @property
    def unique(self) -> int:
        return self.inserts

    @property
    def unique_fraction(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.inserts / self.queries


class MemoTable:
    """Open-hashing memo table keyed on integer problem vectors.

    ``fixed_size=True`` reproduces the paper's published scheme exactly
    (a fixed slot count, buckets growing without bound); the default
    doubles the slot count and rehashes whenever the load factor
    exceeds ``max_load``, keeping probes O(1) at whole-program scale.
    """

    def __init__(
        self,
        size: int = 4096,
        fixed_size: bool = False,
        max_load: float = 0.75,
    ):
        if size <= 0:
            raise ValueError("table size must be positive")
        if max_load <= 0:
            raise ValueError("max_load must be positive")
        self.size = size
        self.fixed_size = fixed_size
        self.max_load = max_load
        self._buckets: list[list[tuple[tuple[int, ...], Any]]] = [
            [] for _ in range(size)
        ]
        self._count = 0
        self.stats = MemoStats()

    @property
    def load_factor(self) -> float:
        return self._count / self.size

    def lookup(self, key: tuple[int, ...]) -> tuple[bool, Any]:
        """Return ``(hit, value)``; counts the query."""
        self.stats.queries += 1
        bucket = self._buckets[paper_hash(key, self.size)]
        for stored_key, value in bucket:
            if stored_key == key:
                self.stats.hits += 1
                return True, value
            self.stats.probe_collisions += 1
        return False, None

    def _store(self, key: tuple[int, ...], value: Any) -> bool:
        """Insert or overwrite; returns True when the key was new."""
        bucket = self._buckets[paper_hash(key, self.size)]
        for i, (stored_key, _) in enumerate(bucket):
            if stored_key == key:
                bucket[i] = (key, value)
                return False
        bucket.append((key, value))
        self._count += 1
        if not self.fixed_size and self._count > self.max_load * self.size:
            self.resize(self.size * 2)
        return True

    def insert(self, key: tuple[int, ...], value: Any) -> None:
        if self._store(key, value):
            self.stats.inserts += 1

    def update(self, key: tuple[int, ...], value: Any) -> None:
        """Overwrite the value without counting a fresh unique insert."""
        self._store(key, value)

    def resize(self, new_size: int) -> None:
        """Rehash every entry into ``new_size`` slots."""
        if new_size <= 0:
            raise ValueError("table size must be positive")
        entries = [entry for bucket in self._buckets for entry in bucket]
        self.size = new_size
        self._buckets = [[] for _ in range(new_size)]
        for key, value in entries:
            self._buckets[paper_hash(key, new_size)].append((key, value))

    def items(self) -> Iterator[tuple[tuple[int, ...], Any]]:
        """All ``(key, value)`` entries, in bucket order."""
        for bucket in self._buckets:
            yield from bucket

    def merge_from(self, other: "MemoTable") -> None:
        """Adopt every entry of ``other`` (map-reduce merge step).

        Entries already present keep the incoming value — memo values
        for equal keys are equal by construction, so the choice is
        immaterial; hit statistics are left untouched.
        """
        for key, value in other.items():
            self.update(key, value)

    def __len__(self) -> int:
        return self._count


@dataclass
class Memoizer:
    """The analyzer's pair of memo tables (section 5).

    ``improved`` selects the unused-variable-eliminated keys (the
    paper's improved scheme); the analyzer consults it when encoding.
    """

    no_bounds: MemoTable = field(default_factory=MemoTable)
    with_bounds: MemoTable = field(default_factory=MemoTable)
    improved: bool = True
    # The paper's "further optimization": canonicalize a problem and its
    # reference-swapped twin onto one slot.  Applies to plain queries
    # (distances are re-oriented on retrieval); direction-vector queries
    # keep orientation-specific entries.
    symmetry: bool = False

    @classmethod
    def paper(cls, improved: bool = True) -> "Memoizer":
        """The published scheme: fixed 4096-slot tables (Tables 2-3)."""
        return cls(
            no_bounds=MemoTable(fixed_size=True),
            with_bounds=MemoTable(fixed_size=True),
            improved=improved,
        )

    def compatible_with(self, other: "Memoizer") -> bool:
        """Same keying scheme — a prerequisite for merging tables."""
        return (
            self.improved == other.improved
            and self.symmetry == other.symmetry
        )

    def merge_from(self, other: "Memoizer") -> "Memoizer":
        """Adopt every entry of ``other``'s tables; returns ``self``.

        Both memoizers must use the same keying scheme (``improved`` /
        ``symmetry``), otherwise their key vectors are incomparable.
        """
        if not self.compatible_with(other):
            raise ValueError(
                "cannot merge memoizers with different keying schemes: "
                f"improved={self.improved}/{other.improved} "
                f"symmetry={self.symmetry}/{other.symmetry}"
            )
        self.no_bounds.merge_from(other.no_bounds)
        self.with_bounds.merge_from(other.with_bounds)
        return self
