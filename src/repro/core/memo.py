"""Memoization of dependence queries (paper section 5).

Real programs repeat a small number of unique subscript/bound patterns,
so remembering previous answers removes the vast majority of test
invocations (5,679 -> 332 on the PERFECT Club).  Two tables are kept:

* a **no-bounds** table keyed on the subscript equations alone — a hit
  here reuses the Extended GCD outcome (the GCD test never looks at
  bounds);
* a **with-bounds** table keyed on equations plus loop bounds — a hit
  reuses the full verdict (and any direction-vector analysis).

The hash is the paper's: treating the problem as one long integer
vector ``z``, ``h(z) = size(z) + sum_i 2^i * z_i``, chosen so that
symmetrical or partially symmetrical references do not collide; the
table is a simple open-hashing scheme (buckets of entries, full-key
comparison on probe).

The *improved* scheme additionally drops the bound constraints of
unused loop indices before keying, merging cases that differ only in
irrelevant surrounding loops; see
:meth:`repro.system.depsystem.DependenceProblem.eliminate_unused`.

As a further optimization the paper suggests canonicalizing symmetric
pairs (comparing ``a[i]`` to ``a[i-1]`` is the same problem as
comparing ``a[i-1]`` to ``a[i]``); :class:`MemoTable` supports this via
``symmetry=True`` (off by default to mirror the published scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["MemoTable", "MemoStats", "paper_hash"]


def paper_hash(vector: tuple[int, ...], table_size: int) -> int:
    """The paper's hash: ``h(z) = size(z) + sum_i 2^i * z_i`` mod table size."""
    acc = len(vector)
    weight = 1
    for z in vector:
        acc += weight * z
        weight = (weight * 2) % table_size
    return acc % table_size


@dataclass
class MemoStats:
    """Hit/miss accounting for one table."""

    queries: int = 0
    hits: int = 0
    inserts: int = 0
    probe_collisions: int = 0  # bucket entries inspected that did not match

    @property
    def unique(self) -> int:
        return self.inserts

    @property
    def unique_fraction(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.inserts / self.queries


class MemoTable:
    """Open-hashing memo table keyed on integer problem vectors."""

    def __init__(self, size: int = 4096):
        if size <= 0:
            raise ValueError("table size must be positive")
        self.size = size
        self._buckets: list[list[tuple[tuple[int, ...], Any]]] = [
            [] for _ in range(size)
        ]
        self.stats = MemoStats()

    def lookup(self, key: tuple[int, ...]) -> tuple[bool, Any]:
        """Return ``(hit, value)``; counts the query."""
        self.stats.queries += 1
        bucket = self._buckets[paper_hash(key, self.size)]
        for stored_key, value in bucket:
            if stored_key == key:
                self.stats.hits += 1
                return True, value
            self.stats.probe_collisions += 1
        return False, None

    def insert(self, key: tuple[int, ...], value: Any) -> None:
        bucket = self._buckets[paper_hash(key, self.size)]
        for i, (stored_key, _) in enumerate(bucket):
            if stored_key == key:
                bucket[i] = (key, value)
                return
        bucket.append((key, value))
        self.stats.inserts += 1

    def update(self, key: tuple[int, ...], value: Any) -> None:
        """Overwrite the value without counting a fresh unique insert."""
        bucket = self._buckets[paper_hash(key, self.size)]
        for i, (stored_key, _) in enumerate(bucket):
            if stored_key == key:
                bucket[i] = (key, value)
                return
        bucket.append((key, value))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)


@dataclass
class Memoizer:
    """The analyzer's pair of memo tables (section 5).

    ``improved`` selects the unused-variable-eliminated keys (the
    paper's improved scheme); the analyzer consults it when encoding.
    """

    no_bounds: MemoTable = field(default_factory=MemoTable)
    with_bounds: MemoTable = field(default_factory=MemoTable)
    improved: bool = True
    # The paper's "further optimization": canonicalize a problem and its
    # reference-swapped twin onto one slot.  Applies to plain queries
    # (distances are re-oriented on retrieval); direction-vector queries
    # keep orientation-specific entries.
    symmetry: bool = False
