"""Memoization of dependence queries (paper section 5).

Real programs repeat a small number of unique subscript/bound patterns,
so remembering previous answers removes the vast majority of test
invocations (5,679 -> 332 on the PERFECT Club).  Two tables are kept:

* a **no-bounds** table keyed on the subscript equations alone — a hit
  here reuses the Extended GCD outcome (the GCD test never looks at
  bounds);
* a **with-bounds** table keyed on equations plus loop bounds — a hit
  reuses the full verdict (and any direction-vector analysis).

The hash is the paper's: treating the problem as one long integer
vector ``z``, ``h(z) = size(z) + sum_i 2^i * z_i``, chosen so that
symmetrical or partially symmetrical references do not collide; the
table is a simple open-hashing scheme (buckets of entries, full-key
comparison on probe).

The paper fixes the table at 4096 slots, which degrades linearly once a
whole-program (or multi-program) workload pushes the load factor past
one.  By default the table now doubles and rehashes when its load
factor exceeds ``max_load`` (0.75); ``fixed_size=True`` preserves the
published fixed-slot scheme for the reproduction tables (Tables 2-3).

The *improved* scheme additionally drops the bound constraints of
unused loop indices before keying, merging cases that differ only in
irrelevant surrounding loops; see
:meth:`repro.system.depsystem.DependenceProblem.eliminate_unused`.

As a further optimization the paper suggests canonicalizing symmetric
pairs (comparing ``a[i]`` to ``a[i-1]`` is the same problem as
comparing ``a[i-1]`` to ``a[i]``); :class:`MemoTable` supports this via
``symmetry=True`` (off by default to mirror the published scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "MemoTable",
    "MemoStats",
    "paper_hash",
    "encode_key",
    "intern_key",
]


def paper_hash(vector, table_size: int) -> int:
    """The paper's hash: ``h(z) = size(z) + sum_i 2^i * z_i`` mod table size.

    Works on any integer sequence — including ``bytes`` keys, which
    iterate as their octets — so the bucket structure (the published
    scheme) stays well-defined for both key representations.
    """
    acc = len(vector)
    weight = 1
    for z in vector:
        acc += weight * z
        weight = (weight * 2) % table_size
    return acc % table_size


def encode_key(vector) -> bytes:
    """Zigzag-varint encode an integer sequence into a stable byte key.

    Each element encodes independently (zigzag to fold sign, then 7-bit
    groups with a continuation bit), so the encoding of a concatenated
    sequence is the concatenation of the encodings — the analyzer
    relies on this to append pre-encoded option tails to a problem's
    cached key bytes.  The per-element encoding is prefix-free, making
    the sequence encoding injective: distinct key vectors never collide
    as bytes.
    """
    out = bytearray()
    append = out.append
    for z in vector:
        u = z + z if z >= 0 else -z - z - 1
        while u > 0x7F:
            append((u & 0x7F) | 0x80)
            u >>= 7
        append(u)
    return bytes(out)


# Global intern table for byte keys.  Problems repeat heavily (that is
# the whole premise of memoization), so interning makes every repeated
# probe reuse one bytes object — one dict hit here, then one dict hit in
# the memo table, with zero tuple construction.  ``bytes`` cannot go
# through ``sys.intern`` (str-only); a plain setdefault dict gives the
# same sharing.  The table is process-global and append-only; shard
# workers each build their own and the keys re-intern on merge/restore
# (see repro.core.persist).
_INTERN: dict[bytes, bytes] = {}


def intern_key(data: bytes) -> bytes:
    """Return the canonical shared instance of ``data``."""
    return _INTERN.setdefault(data, data)


_ABSENT = object()  # lookup sidecar miss sentinel (None is a legal value)


@dataclass
class MemoStats:
    """Hit/miss accounting for one table."""

    queries: int = 0
    hits: int = 0
    inserts: int = 0
    # Retained for dashboard compatibility: the exact-probe sidecar
    # answers lookups in one dict hit, so bucket probes (and therefore
    # collisions) no longer occur on the lookup path.
    probe_collisions: int = 0

    @property
    def unique(self) -> int:
        return self.inserts

    @property
    def unique_fraction(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.inserts / self.queries


class MemoTable:
    """Open-hashing memo table keyed on integer problem vectors.

    ``fixed_size=True`` reproduces the paper's published scheme exactly
    (a fixed slot count, buckets growing without bound); the default
    doubles the slot count and rehashes whenever the load factor
    exceeds ``max_load``, keeping probes O(1) at whole-program scale.
    """

    def __init__(
        self,
        size: int = 4096,
        fixed_size: bool = False,
        max_load: float = 0.75,
    ):
        if size <= 0:
            raise ValueError("table size must be positive")
        if max_load <= 0:
            raise ValueError("max_load must be positive")
        self.size = size
        self.fixed_size = fixed_size
        self.max_load = max_load
        self._buckets: list[list[tuple[tuple[int, ...], Any]]] = [
            [] for _ in range(size)
        ]
        # Exact-probe sidecar: mirrors the buckets key-for-key so a
        # lookup is one native dict probe (zero tuple/bucket walking).
        # The buckets remain authoritative for iteration, resize and
        # the published open-hashing structure.
        self._exact: dict[Any, Any] = {}
        self._count = 0
        self.stats = MemoStats()

    @property
    def load_factor(self) -> float:
        return self._count / self.size

    def lookup(self, key) -> tuple[bool, Any]:
        """Return ``(hit, value)``; counts the query."""
        stats = self.stats
        stats.queries += 1
        value = self._exact.get(key, _ABSENT)
        if value is not _ABSENT:
            stats.hits += 1
            return True, value
        return False, None

    def _store(self, key, value: Any) -> bool:
        """Insert or overwrite; returns True when the key was new."""
        exact = self._exact
        if key in exact:
            exact[key] = value
            bucket = self._buckets[paper_hash(key, self.size)]
            for i, (stored_key, _) in enumerate(bucket):
                if stored_key == key:
                    bucket[i] = (key, value)
                    break
            return False
        exact[key] = value
        self._buckets[paper_hash(key, self.size)].append((key, value))
        self._count += 1
        if not self.fixed_size and self._count > self.max_load * self.size:
            self.resize(self.size * 2)
        return True

    def insert(self, key: tuple[int, ...], value: Any) -> None:
        if self._store(key, value):
            self.stats.inserts += 1

    def update(self, key: tuple[int, ...], value: Any) -> None:
        """Overwrite the value without counting a fresh unique insert."""
        self._store(key, value)

    def resize(self, new_size: int) -> None:
        """Rehash every entry into ``new_size`` slots."""
        if new_size <= 0:
            raise ValueError("table size must be positive")
        entries = [entry for bucket in self._buckets for entry in bucket]
        self.size = new_size
        self._buckets = [[] for _ in range(new_size)]
        for key, value in entries:
            self._buckets[paper_hash(key, new_size)].append((key, value))

    def items(self) -> Iterator[tuple[tuple[int, ...], Any]]:
        """All ``(key, value)`` entries, in bucket order."""
        for bucket in self._buckets:
            yield from bucket

    def merge_from(self, other: "MemoTable") -> None:
        """Adopt every entry of ``other`` (map-reduce merge step).

        Entries already present keep the incoming value — memo values
        for equal keys are equal by construction, so the choice is
        immaterial; hit statistics are left untouched.
        """
        for key, value in other.items():
            self.update(key, value)

    def __len__(self) -> int:
        return self._count


@dataclass
class Memoizer:
    """The analyzer's pair of memo tables (section 5).

    ``improved`` selects the unused-variable-eliminated keys (the
    paper's improved scheme); the analyzer consults it when encoding.
    """

    no_bounds: MemoTable = field(default_factory=MemoTable)
    with_bounds: MemoTable = field(default_factory=MemoTable)
    improved: bool = True
    # The paper's "further optimization": canonicalize a problem and its
    # reference-swapped twin onto one slot.  Applies to plain queries
    # (distances are re-oriented on retrieval); direction-vector queries
    # keep orientation-specific entries.
    symmetry: bool = False

    @classmethod
    def paper(cls, improved: bool = True) -> "Memoizer":
        """The published scheme: fixed 4096-slot tables (Tables 2-3)."""
        return cls(
            no_bounds=MemoTable(fixed_size=True),
            with_bounds=MemoTable(fixed_size=True),
            improved=improved,
        )

    def compatible_with(self, other: "Memoizer") -> bool:
        """Same keying scheme — a prerequisite for merging tables."""
        return (
            self.improved == other.improved
            and self.symmetry == other.symmetry
        )

    def merge_from(self, other: "Memoizer") -> "Memoizer":
        """Adopt every entry of ``other``'s tables; returns ``self``.

        Both memoizers must use the same keying scheme (``improved`` /
        ``symmetry``), otherwise their key vectors are incomparable.
        """
        if not self.compatible_with(other):
            raise ValueError(
                "cannot merge memoizers with different keying schemes: "
                f"improved={self.improved}/{other.improved} "
                f"symmetry={self.symmetry}/{other.symmetry}"
            )
        self.no_bounds.merge_from(other.no_bounds)
        self.with_bounds.merge_from(other.with_bounds)
        return self
