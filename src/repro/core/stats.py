"""Counters reproducing the paper's per-test statistics.

Every table in the evaluation is a view over these counters: how many
cases each test decided (Table 1), how memoization collapses repeats
(Tables 2-3), how many test invocations direction vectors cost
(Tables 4-5, 7), and per-test independent/dependent outcome splits
(section 7's discussion numbers).

Since the observability layer landed, :class:`AnalyzerStats` is itself
a *view* over a :class:`repro.obs.metrics.MetricsRegistry`: every
attribute reads and writes a named registry entry, so the registry is
the single source of truth, ``merged()`` folds registries, and cascade
stage timings (histograms) ride along with the counters through the
batch engine's map-reduce shard merge.
"""

from __future__ import annotations

from collections import Counter

from repro.obs.metrics import MetricsRegistry

__all__ = ["AnalyzerStats", "TEST_ORDER"]

# Canonical column order used by the tables.  Extra (future) test names
# still merge and still appear in *_counts(); the tables pick their
# columns at render time.
TEST_ORDER = ("svpc", "acyclic", "loop_residue", "fourier_motzkin")

# test name -> "time.cascade.<name>", built on demand: the cascade hot
# path attributes a timing per stage and must not pay an f-string each
# time.  Process-global; the handful of test names never grows.
_STAGE_TIMERS: dict[str, str] = {
    name: f"time.cascade.{name}" for name in TEST_ORDER
}


def _scalar(name: str, doc: str) -> property:
    def fget(self: "AnalyzerStats") -> int:
        return self.registry.get(name)

    def fset(self: "AnalyzerStats", value: int) -> None:
        self.registry.put(name, value)

    return property(fget, fset, doc=doc)


def _family(name: str, doc: str) -> property:
    def fget(self: "AnalyzerStats") -> Counter:
        return self.registry.family(name)

    return property(fget, doc=doc)


class AnalyzerStats:
    """Mutable counters accumulated by one analyzer run.

    A thin view: all state lives in :attr:`registry`.  The attribute
    API (``stats.total_queries += 1``, ``stats.decided_by["svpc"]``)
    is unchanged from the pre-registry dataclass.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- plain dependence queries (Tables 1 and 3) -------------------------
    total_queries = _scalar("queries.total", "Dependence queries received.")
    constant_cases = _scalar("queries.constant", "Constant fast-path cases.")
    gcd_independent = _scalar(
        "queries.gcd_independent", "Queries Extended GCD proved independent."
    )
    decided_by = _family("tests.decided_by", "Cascade test -> queries decided.")

    # -- memoization (Tables 2 and 3) ----------------------------------------
    memo_queries_no_bounds = _scalar(
        "memo.no_bounds.queries", "No-bounds memo probes."
    )
    memo_hits_no_bounds = _scalar("memo.no_bounds.hits", "No-bounds memo hits.")
    memo_queries_bounds = _scalar(
        "memo.bounds.queries", "With-bounds memo probes."
    )
    memo_hits_bounds = _scalar("memo.bounds.hits", "With-bounds memo hits.")

    # -- direction vectors (Tables 4, 5 and 7) ---------------------------------
    direction_tests = _family(
        "tests.direction", "Cascade test -> direction-refinement invocations."
    )
    direction_vectors_found = _scalar(
        "directions.vectors_found", "Direction vectors reported."
    )

    # -- per-test outcomes (section 7 discussion) --------------------------------
    outcomes = _family(
        "tests.outcomes", '(test, "independent"/"dependent") -> count.'
    )

    def record_decision(self, test_name: str, independent: bool) -> None:
        outcome = "independent" if independent else "dependent"
        self.registry.inc_family("tests.decided_by", test_name)
        self.registry.inc_family("tests.outcomes", (test_name, outcome))

    def record_direction_test(self, test_name: str, independent: bool) -> None:
        outcome = "independent" if independent else "dependent"
        self.registry.inc_family("tests.direction", test_name)
        self.registry.inc_family("tests.outcomes", (test_name, outcome))

    def observe_stage_ns(self, test_name: str, elapsed_ns: int) -> None:
        """Attribute one cascade stage's wall time to its test's timer."""
        name = _STAGE_TIMERS.get(test_name)
        if name is None:
            name = _STAGE_TIMERS[test_name] = f"time.cascade.{test_name}"
        self.registry.observe(name, elapsed_ns)

    @property
    def unique_cases_no_bounds(self) -> int:
        return self.memo_queries_no_bounds - self.memo_hits_no_bounds

    @property
    def unique_cases_bounds(self) -> int:
        return self.memo_queries_bounds - self.memo_hits_bounds

    @classmethod
    def merged(
        cls, runs: "list[AnalyzerStats] | tuple[AnalyzerStats, ...]"
    ) -> "AnalyzerStats":
        """Fold many runs' counters into a fresh total (map-reduce step).

        Every counter is a sum, so the fold is associative and
        order-independent — sharded runs merge to the same totals no
        matter how the work was split.  All keys of every family are
        kept, including test names outside ``TEST_ORDER``.
        """
        total = cls()
        for run in runs:
            total.merge(run)
        return total

    def merge(self, other: "AnalyzerStats") -> None:
        """Accumulate another run's registry into this one."""
        self.registry.merge(other.registry)

    def _ordered_counts(self, counter: Counter) -> dict[str, int]:
        counts = {name: counter.get(name, 0) for name in TEST_ORDER}
        for name in sorted(counter):
            if name not in counts:
                counts[name] = counter[name]
        return counts

    def test_counts(self) -> dict[str, int]:
        """Plain-query decision counts, table column order first.

        Keys beyond ``TEST_ORDER`` follow in sorted order — nothing is
        dropped; renderers select the columns they print.
        """
        return self._ordered_counts(self.decided_by)

    def direction_test_counts(self) -> dict[str, int]:
        return self._ordered_counts(self.direction_tests)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnalyzerStats):
            return NotImplemented
        return self.registry == other.registry

    def __repr__(self) -> str:
        snapshot = self.registry.counter_snapshot()
        return f"AnalyzerStats({snapshot['scalars']!r}, {snapshot['families']!r})"
