"""Counters reproducing the paper's per-test statistics.

Every table in the evaluation is a view over these counters: how many
cases each test decided (Table 1), how memoization collapses repeats
(Tables 2-3), how many test invocations direction vectors cost
(Tables 4-5, 7), and per-test independent/dependent outcome splits
(section 7's discussion numbers).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["AnalyzerStats", "TEST_ORDER"]

# Canonical column order used by the tables.
TEST_ORDER = ("svpc", "acyclic", "loop_residue", "fourier_motzkin")


@dataclass
class AnalyzerStats:
    """Mutable counters accumulated by one analyzer run."""

    # -- plain dependence queries (Tables 1 and 3) -------------------------
    total_queries: int = 0
    constant_cases: int = 0
    gcd_independent: int = 0
    decided_by: Counter = field(default_factory=Counter)

    # -- memoization (Tables 2 and 3) ----------------------------------------
    memo_queries_no_bounds: int = 0
    memo_hits_no_bounds: int = 0
    memo_queries_bounds: int = 0
    memo_hits_bounds: int = 0

    # -- direction vectors (Tables 4, 5 and 7) ---------------------------------
    direction_tests: Counter = field(default_factory=Counter)
    direction_vectors_found: int = 0

    # -- per-test outcomes (section 7 discussion) --------------------------------
    outcomes: Counter = field(default_factory=Counter)  # (test, "independent"/"dependent")

    def record_decision(self, test_name: str, independent: bool) -> None:
        self.decided_by[test_name] += 1
        self.outcomes[(test_name, "independent" if independent else "dependent")] += 1

    def record_direction_test(self, test_name: str, independent: bool) -> None:
        self.direction_tests[test_name] += 1
        self.outcomes[(test_name, "independent" if independent else "dependent")] += 1

    @property
    def unique_cases_no_bounds(self) -> int:
        return self.memo_queries_no_bounds - self.memo_hits_no_bounds

    @property
    def unique_cases_bounds(self) -> int:
        return self.memo_queries_bounds - self.memo_hits_bounds

    @classmethod
    def merged(cls, runs: "list[AnalyzerStats] | tuple[AnalyzerStats, ...]") -> "AnalyzerStats":
        """Fold many runs' counters into a fresh total (map-reduce step).

        Every counter is a sum, so the fold is associative and
        order-independent — sharded runs merge to the same totals no
        matter how the work was split.
        """
        total = cls()
        for run in runs:
            total.merge(run)
        return total

    def merge(self, other: "AnalyzerStats") -> None:
        """Accumulate another run's counters into this one."""
        self.total_queries += other.total_queries
        self.constant_cases += other.constant_cases
        self.gcd_independent += other.gcd_independent
        self.decided_by.update(other.decided_by)
        self.memo_queries_no_bounds += other.memo_queries_no_bounds
        self.memo_hits_no_bounds += other.memo_hits_no_bounds
        self.memo_queries_bounds += other.memo_queries_bounds
        self.memo_hits_bounds += other.memo_hits_bounds
        self.direction_tests.update(other.direction_tests)
        self.direction_vectors_found += other.direction_vectors_found
        self.outcomes.update(other.outcomes)

    def test_counts(self) -> dict[str, int]:
        """Plain-query decision counts in table column order."""
        return {name: self.decided_by.get(name, 0) for name in TEST_ORDER}

    def direction_test_counts(self) -> dict[str, int]:
        return {name: self.direction_tests.get(name, 0) for name in TEST_ORDER}
