"""Direction vectors via hierarchical refinement (paper section 6).

A direction vector assigns each common loop level one of ``<``, ``=``,
``>`` (or the wildcard ``*``); the references are dependent *with* that
vector iff the dependence system plus the corresponding iteration-order
constraints is satisfiable.  Following Burke and Cytron, the refinement
is hierarchical: test ``(*, *, ..., *)`` first; on dependence, split
the first wildcard three ways and recurse, pruning every subtree whose
root tests independent.

Unoptimized, this multiplies test counts enormously (Table 4: ~12,500
tests where plain queries needed 332).  Two prunings bring the cost
back down (Table 5: ~900):

* **unused-variable elimination** — a loop index appearing in no
  subscript (nor, transitively, in the bounds of one that does) gets
  direction ``*`` with no testing at all;
* **distance-vector pruning** — a level whose GCD distance is a known
  constant has its direction forced by the distance's sign.

Refinement also implements the paper's *implicit branch and bound*: a
plain query that Fourier-Motzkin could only answer "maybe" (a real but
possibly non-integer solution) is independent if every elementary
direction vector tests independent — this occurred four times in the
paper's suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import DirectionResult
from repro.deptests.base import Verdict
from repro.obs.events import DirectionNode
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.robust.budget import NULL_SCOPE, BudgetScope
from repro.system.constraints import LinearConstraint
from repro.system.depsystem import DependenceProblem, Direction
from repro.system.transform import TransformedSystem

__all__ = ["DirectionOptions", "refine_directions", "lift_vector"]


@dataclass(frozen=True)
class DirectionOptions:
    """Pruning switches; both prunings on reproduces Table 5, both off
    Table 4.  ``dimension_by_dimension`` additionally enables Burke and
    Cytron's separable-nest optimization (section 6's closing idea):
    when the levels provably do not interact, per-level direction sets
    are computed independently and combined as a product."""

    prune_unused: bool = True
    prune_distance: bool = True
    dimension_by_dimension: bool = False


def refine_directions(
    analyzer,
    problem: DependenceProblem,
    transformed: TransformedSystem,
    options: DirectionOptions,
    sink: TraceSink = NULL_SINK,
    scope: BudgetScope = NULL_SCOPE,
) -> DirectionResult:
    """Hierarchical direction-vector refinement over a transformed system.

    ``problem``/``transformed`` may be the unused-variable-reduced
    system; the returned vectors are over *its* common levels — the
    caller embeds them back into the original nest (dropped levels get
    ``*``) via :func:`lift_vector`.
    """
    n_common = problem.n_common

    forced: dict[int, str] = {}
    if options.prune_distance:
        from repro.core.distances import constant_distances, forced_directions

        forced = forced_directions(constant_distances(transformed))

    template: list[str] = [
        forced.get(level, Direction.ANY) for level in range(n_common)
    ]
    refinable = [lvl for lvl in range(n_common) if lvl not in forced]

    if sink.enabled and forced:
        sink.emit(DirectionNode(vector=tuple(template), action="forced"))

    leaves: set[tuple[str, ...]] = set()
    state = _RefineState(analyzer, problem, transformed, sink, scope)

    def recurse(vector: list[str], next_refinable: int) -> None:
        verdict, exact = state.test(tuple(vector))
        if verdict is Verdict.INDEPENDENT:
            return
        if not exact:
            state.exact = False
        if next_refinable >= len(refinable):
            leaves.add(tuple(vector))
            return
        level = refinable[next_refinable]
        for direction in Direction.ALL:
            vector[level] = direction
            recurse(vector, next_refinable + 1)
        vector[level] = Direction.ANY

    recurse(template, 0)

    return DirectionResult(
        vectors=frozenset(leaves),
        n_common=n_common,
        exact=state.exact,
        tests_performed=state.tests,
    )


def lift_vector(
    vector: tuple[str, ...], level_map: list[int], out_n_common: int
) -> tuple[str, ...]:
    """Embed a reduced-level vector into the original common levels."""
    out = [Direction.ANY] * out_n_common
    for reduced_level, direction in enumerate(vector):
        out[level_map[reduced_level]] = direction
    return tuple(out)


class _RefineState:
    """Shared bookkeeping for one refinement run."""

    def __init__(
        self,
        analyzer,
        problem,
        transformed,
        sink: TraceSink = NULL_SINK,
        scope: BudgetScope = NULL_SCOPE,
    ):
        self.analyzer = analyzer
        self.problem = problem
        self.transformed = transformed
        self.sink = sink
        self.scope = scope
        self.tests = 0
        self.exact = True
        self.use_flat = getattr(analyzer, "use_flat", False)
        self._cache: dict[tuple[str, ...], tuple[Verdict, bool]] = {}

    def test(self, vector: tuple[str, ...]) -> tuple[Verdict, bool]:
        """Run the cascade under the vector's direction constraints."""
        # Refinement fans out up to 3^depth sub-queries: the budget's
        # wall clock governs the whole tree walk.
        self.scope.tick()
        if vector in self._cache:
            if self.sink.enabled:
                self.sink.emit(DirectionNode(vector=vector, action="cached"))
            return self._cache[vector]
        system = None
        if self.use_flat:
            rows: list = []
            for level, direction in enumerate(vector):
                rows.extend(self.problem.direction_rows(level, direction))
            system = self.transformed.with_extra_flat(rows)
        if system is None:  # object path (flat off, or int64 overflow)
            extra: list[LinearConstraint] = []
            for level, direction in enumerate(vector):
                extra.extend(self.problem.direction_constraints(level, direction))
            system = self.transformed.with_extra_constraints(extra)
        decision = self.analyzer._run_cascade(
            system, record=False, sink=self.sink, scope=self.scope
        )
        result = decision.result
        self.tests += 1
        independent = result.verdict is Verdict.INDEPENDENT
        self.analyzer.stats.record_direction_test(result.test_name, independent)
        if self.sink.enabled:
            self.sink.emit(
                DirectionNode(
                    vector=vector,
                    action="tested",
                    verdict=result.verdict.value,
                )
            )
        outcome = (result.verdict, result.exact)
        self._cache[vector] = outcome
        return outcome
