"""The cascaded exact dependence analyzer (the paper's contribution).

:class:`DependenceAnalyzer` wires together everything below it:

1. an **array-constant fast path** (``a[3]`` vs ``a[4]``) decided with
   no dependence test at all — Table 1's first column;
2. **memoization** (section 5): a no-bounds table reusing Extended GCD
   factorizations and a with-bounds table reusing full verdicts;
3. **Extended GCD** preprocessing (section 3.1): integer solvability of
   the subscript equalities and the change of variables that folds the
   equalities into the loop-bound inequalities;
4. the **cascade of exact tests** (sections 3.2-3.5), cheapest first:
   SVPC, then Acyclic (which also simplifies cyclic systems), then Loop
   Residue, then Fourier-Motzkin as the backup;
5. **distance extraction** from the GCD solution and **direction
   vectors** via hierarchical refinement (section 6, in
   :mod:`repro.core.directions`);
6. **symbolic terms** handled as unbounded shared variables
   (section 8) — no special casing needed anywhere downstream.

The same analyzer instance accumulates :class:`AnalyzerStats`, from
which the experiment harness regenerates the paper's tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.memo import Memoizer, encode_key, intern_key
from repro.core.result import DECIDED_CONSTANT, DependenceResult, DirectionResult
from repro.core.stats import AnalyzerStats
from repro.deptests.acyclic import AcyclicTest
from repro.deptests.base import TestResult, Verdict
from repro.deptests.fourier_motzkin import FourierMotzkinTest
from repro.deptests.loop_residue import LoopResidueTest
from repro.deptests.svpc import SvpcTest
from repro.obs.events import (
    CascadeStage,
    ConstantScreen,
    EgcdResolved,
    MemoLookup,
    QueryEnd,
    QueryStart,
)
from repro.obs.sinks import NULL_SINK, QueryScopedSink, TraceSink
from repro.robust.budget import (
    DEGRADED_BUDGET,
    NULL_SCOPE,
    BudgetExceeded,
    BudgetScope,
    ResourceBudget,
)
from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest
from repro.ir.program import AccessSite
from repro.linalg.gcdext import floor_div
from repro.system.constraints import ConstraintSystem
from repro.system.depsystem import DependenceProblem, Direction, build_problem
from repro.system.transform import (
    GcdOutcome,
    TransformedSystem,
    gcd_transform,
)

__all__ = ["DependenceAnalyzer", "CascadeDecision"]


@dataclass
class CascadeDecision:
    """Internal: outcome of running the inequality cascade on one system."""

    result: TestResult
    witness_t: tuple[int, ...] | None


_MISS = object()  # sentinel: no-bounds table had no entry

# Direction-query memo keys append an option tail to the problem's
# with-bounds key.  The tuple scheme appended (-1, prune_unused,
# prune_distance, dimension_by_dimension); the byte scheme appends the
# same elements' varint encoding, which by the codec's concatenation
# property collides exactly when the old tuples would have.  Eight
# possible tails — precompute them.
_DIRECTION_TAILS: dict[tuple[int, int, int], bytes] = {}


def _direction_tail(pu: int, pd: int, dbd: int) -> bytes:
    tail = _DIRECTION_TAILS.get((pu, pd, dbd))
    if tail is None:
        tail = encode_key((-1, pu, pd, dbd))
        _DIRECTION_TAILS[(pu, pd, dbd)] = tail
    return tail


@dataclass
class _CachedVerdict:
    """With-bounds memo value for plain queries.

    Distances are stored over the *reduced canonical* problem's common
    levels; retrievals re-orient and re-embed them per query (different
    unused-loop wrappers share this entry under the improved scheme).
    """

    dependent: bool
    decided_by: str
    exact: bool
    distance_reduced: tuple[int | None, ...] | None


@dataclass
class _CachedDirections:
    """With-bounds memo value for direction queries (reduced levels)."""

    vectors_reduced: frozenset[tuple[str, ...]]
    exact: bool
    reduced_n_common: int


@dataclass
class _GcdCacheEntry:
    """No-bounds memo value: the reusable part of the GCD factorization.

    ``x_offset``/``x_basis`` encode the general solution of the
    subscript equalities; re-applying them to a new problem's bounds
    skips the echelon factorization entirely (the paper: a match
    ignoring bounds means "we are not required to repeat the GCD test").
    """

    independent: bool
    x_offset: tuple[int, ...] | None = None
    x_basis: tuple[tuple[int, ...], ...] | None = None


class DependenceAnalyzer:
    """Exact dependence testing via cascaded special-case tests."""

    def __init__(
        self,
        memoizer: Memoizer | None = None,
        stats: AnalyzerStats | None = None,
        fm_budget: int = 256,
        eliminate_unused: bool = True,
        want_witness: bool = True,
        sink: TraceSink | None = None,
        budget: ResourceBudget | None = None,
        use_flat: bool = True,
    ):
        self.memoizer = memoizer
        self.stats = stats if stats is not None else AnalyzerStats()
        self.eliminate_unused = eliminate_unused
        self.want_witness = want_witness
        # Run the cascade on the array-backed FlatSystem representation
        # (repro.system.flat).  False forces the object path — used by
        # the flat/object equivalence property suite and as an escape
        # hatch; int64 overflow falls back per query automatically.
        self.use_flat = use_flat
        self.sink = sink if sink is not None else NULL_SINK
        # The resource budget (see repro.robust.budget); per-query
        # scopes are opened at the entry points and threaded explicitly
        # (never stored on self: the serving layer runs pipelined
        # queries of one session's analyzer on several threads).
        self.budget = budget
        self._trace_qid = 0
        self._svpc = SvpcTest()
        self._acyclic = AcyclicTest()
        self._residue = LoopResidueTest()
        self._fm = FourierMotzkinTest(max_branch_nodes=fm_budget)
        # The cascade, cheapest first.  Each member implements the
        # uniform run(system, sink) protocol; Acyclic's NOT_APPLICABLE
        # results carry the residual system the next member should take.
        self._cascade = (self._svpc, self._acyclic, self._residue, self._fm)
        # Bounded cache of built problems keyed on the (frozen,
        # hashable) query itself.  Problems are treated as immutable
        # everywhere past construction, and their attached key-bytes /
        # elimination caches make a repeated query's memo hit one dict
        # probe instead of a full rebuild of the constraint system.
        self._problem_cache: dict[tuple, DependenceProblem] = {}

    def _build_problem_cached(
        self, ref1: ArrayRef, nest1: LoopNest, ref2: ArrayRef, nest2: LoopNest
    ) -> DependenceProblem:
        cache = self._problem_cache
        key = (ref1, nest1, ref2, nest2)
        problem = cache.get(key)
        if problem is None:
            problem = build_problem(ref1, nest1, ref2, nest2)
            if len(cache) >= 32768:
                cache.clear()
            cache[key] = problem
        return problem

    # -- resource governance ------------------------------------------------

    def _open_scope(self) -> BudgetScope:
        """A fresh budget scope for one query (NULL_SCOPE when unbudgeted)."""
        if self.budget is None or self.budget.unlimited:
            return NULL_SCOPE
        return self.budget.open()

    def _degraded_result(self, blown: BudgetExceeded) -> DependenceResult:
        """The conservative answer to a budget-blown plain query.

        "Dependent" is the safe side of every client decision (a
        parallelizer keeps the loop serial), and the reason code plus
        ``exact=False`` flag the answer as assumed, not computed.
        Degraded answers are never memoized — the exception propagates
        to here before any with-bounds insert.
        """
        self.stats.registry.inc_family("robust.degraded", blown.reason)
        return DependenceResult(
            dependent=True,
            decided_by=DEGRADED_BUDGET,
            exact=False,
            degraded_reason=blown.reason,
        )

    def _degraded_directions(
        self, blown: BudgetExceeded, n_common: int
    ) -> DirectionResult:
        """Conservative all-``'*'`` vectors for a budget-blown query."""
        self.stats.registry.inc_family("robust.degraded", blown.reason)
        return DirectionResult(
            vectors=frozenset({(Direction.ANY,) * n_common}),
            n_common=n_common,
            exact=False,
            degraded_reason=blown.reason,
        )

    # -- tracing ------------------------------------------------------------

    def _begin_trace(
        self, op: str, ref1: str, ref2: str, n_common: int
    ) -> tuple[TraceSink, int]:
        """Open a query scope on the sink; no-op when tracing is off."""
        if not self.sink.enabled:
            return NULL_SINK, 0
        qid = self._trace_qid
        self._trace_qid += 1
        qsink = QueryScopedSink(self.sink, qid)
        qsink.emit(QueryStart(op=op, ref1=ref1, ref2=ref2, n_common=n_common))
        return qsink, time.perf_counter_ns()

    @staticmethod
    def _end_trace(
        qsink: TraceSink,
        start_ns: int,
        dependent: bool,
        decided_by: str,
        exact: bool,
        n_vectors: int | None = None,
    ) -> None:
        qsink.emit(
            QueryEnd(
                dependent=dependent,
                decided_by=decided_by,
                exact=exact,
                elapsed_ns=time.perf_counter_ns() - start_ns,
                n_vectors=n_vectors,
            )
        )

    # -- public entry points ------------------------------------------------

    def analyze(
        self,
        ref1: ArrayRef,
        nest1: LoopNest,
        ref2: ArrayRef,
        nest2: LoopNest,
    ) -> DependenceResult:
        """Can the two references touch the same element? (section 2)"""
        self.stats.total_queries += 1
        qsink, start = (
            self._begin_trace(
                "analyze", str(ref1), str(ref2), nest1.common_prefix_depth(nest2)
            )
            if self.sink.enabled
            else (NULL_SINK, 0)
        )
        constant = self._constant_fast_path(ref1, ref2)
        if constant is not None:
            self.stats.constant_cases += 1
            if qsink.enabled:
                qsink.emit(ConstantScreen(independent=not constant.dependent))
                self._end_trace(
                    qsink, start, constant.dependent, constant.decided_by, True
                )
            return constant
        scope = self._open_scope()
        try:
            problem = self._build_problem_cached(ref1, nest1, ref2, nest2)
            result = self._analyze_problem(problem, qsink, scope)
        except BudgetExceeded as blown:
            result = self._degraded_result(blown)
        if qsink.enabled:
            self._end_trace(
                qsink, start, result.dependent, result.decided_by, result.exact
            )
        return result

    def analyze_sites(self, site1: AccessSite, site2: AccessSite) -> DependenceResult:
        return self.analyze(site1.ref, site1.nest, site2.ref, site2.nest)

    def analyze_problem(
        self,
        problem: DependenceProblem,
        ref1: str = "?",
        ref2: str = "?",
    ) -> DependenceResult:
        """Analyze a pre-built dependence system.

        The batch engine constructs problems once (to canonicalize and
        deduplicate them) and hands them over directly; the constant
        fast path does not apply because constant-only subscript pairs
        are screened before a problem is ever built.  ``ref1``/``ref2``
        only label the trace (the problem itself has no source refs).
        """
        self.stats.total_queries += 1
        qsink, start = (
            self._begin_trace("analyze", ref1, ref2, problem.n_common)
            if self.sink.enabled
            else (NULL_SINK, 0)
        )
        scope = self._open_scope()
        try:
            result = self._analyze_problem(problem, qsink, scope)
        except BudgetExceeded as blown:
            result = self._degraded_result(blown)
        if qsink.enabled:
            self._end_trace(
                qsink, start, result.dependent, result.decided_by, result.exact
            )
        return result

    def directions(
        self,
        ref1: ArrayRef,
        nest1: LoopNest,
        ref2: ArrayRef,
        nest2: LoopNest,
        prune_unused: bool | None = None,
        prune_distance: bool = True,
        dimension_by_dimension: bool = False,
    ) -> DirectionResult:
        """All direction vectors under which the references are dependent.

        ``prune_unused`` defaults to the analyzer's
        ``eliminate_unused`` setting; set both pruning flags False to
        reproduce the unoptimized hierarchical numbers (Table 4).
        ``dimension_by_dimension`` turns on the separable-nest
        optimization where applicable (section 6).
        """
        from repro.core.directions import DirectionOptions

        if prune_unused is None:
            prune_unused = self.eliminate_unused
        options = DirectionOptions(
            prune_unused=prune_unused,
            prune_distance=prune_distance,
            dimension_by_dimension=dimension_by_dimension,
        )
        self.stats.total_queries += 1
        n_common_full = nest1.common_prefix_depth(nest2)
        qsink, start = (
            self._begin_trace("directions", str(ref1), str(ref2), n_common_full)
            if self.sink.enabled
            else (NULL_SINK, 0)
        )

        constant = self._constant_fast_path(ref1, ref2)
        if constant is not None and constant.independent:
            # Unequal constants: no dependence under any direction.
            self.stats.constant_cases += 1
            if qsink.enabled:
                qsink.emit(ConstantScreen(independent=True))
                self._end_trace(
                    qsink, start, False, DECIDED_CONSTANT, True, n_vectors=0
                )
            return DirectionResult(
                vectors=frozenset(), n_common=n_common_full
            )
        if constant is not None:
            # Equal-constant subscripts collide at *every* iteration
            # pair; which directions exist still depends on the bounds
            # (a single-iteration loop only has '='), so fall through to
            # refinement for an exact answer.  The plain analyzer still
            # reports these as constant cases without testing.
            self.stats.constant_cases += 1
            if qsink.enabled:
                qsink.emit(ConstantScreen(independent=False))

        scope = self._open_scope()
        try:
            return self._directions_impl(
                ref1, nest1, ref2, nest2, options, n_common_full, qsink,
                start, scope,
            )
        except BudgetExceeded as blown:
            result = self._degraded_directions(blown, n_common_full)
            if qsink.enabled:
                self._end_trace(
                    qsink,
                    start,
                    True,
                    DEGRADED_BUDGET,
                    False,
                    n_vectors=result.count_elementary(),
                )
            return result

    def _directions_impl(
        self,
        ref1: ArrayRef,
        nest1: LoopNest,
        ref2: ArrayRef,
        nest2: LoopNest,
        options,
        n_common_full: int,
        qsink: TraceSink,
        start: int,
        scope: BudgetScope,
    ) -> DirectionResult:
        """The un-governed body of :meth:`directions` (may raise
        :class:`~repro.robust.budget.BudgetExceeded`)."""
        problem = self._build_problem_cached(ref1, nest1, ref2, nest2)
        work = problem
        surviving = list(range(problem.n_common))
        forced_dropped = None
        if options.prune_unused:
            # The safe-keep analysis and projection are pure in
            # (problem, nest1); repeated queries replay the cached
            # reduced problem (which carries its own key-bytes cache).
            prep_key = ("dirprep", nest1)
            prep = problem._key_cache.get(prep_key)
            if prep is None:
                extra_keep, forced_dropped = self._direction_safe_keep(
                    problem, nest1
                )
                work, surviving = problem.eliminate_unused(extra_keep)
                problem._key_cache[prep_key] = (
                    work,
                    tuple(surviving),
                    forced_dropped,
                )
            else:
                work, surviving_cached, forced_dropped = prep
                surviving = list(surviving_cached)

        memo = self.memoizer
        memo_key = None
        key_source = None
        nb_entry = _MISS
        if memo is not None:
            key_source = work if memo.improved else problem
            nb_entry = self._nb_lookup(key_source, qsink)
            if nb_entry is not _MISS and nb_entry.independent:
                if qsink.enabled:
                    qsink.emit(
                        EgcdResolved(independent=True, reused=True, elapsed_ns=0)
                    )
                    self._end_trace(qsink, start, False, "gcd", True, n_vectors=0)
                return DirectionResult(
                    vectors=frozenset(),
                    n_common=n_common_full,
                    from_memo=True,
                )

        outcome = self._gcd_outcome(work, key_source, nb_entry, qsink)
        if outcome.independent:
            self.stats.gcd_independent += 1
            if qsink.enabled:
                self._end_trace(qsink, start, False, "gcd", True, n_vectors=0)
            return DirectionResult(
                vectors=frozenset(), n_common=n_common_full
            )

        if memo is not None:
            memo_key = intern_key(
                key_source.key_bytes(with_bounds=True)
                + _direction_tail(
                    int(options.prune_unused),
                    int(options.prune_distance),
                    int(options.dimension_by_dimension),
                )
            )
            self.stats.memo_queries_bounds += 1
            hit, cached = memo.with_bounds.lookup(memo_key)
            if qsink.enabled:
                qsink.emit(MemoLookup(table="with_bounds", hit=hit))
            if hit:
                self.stats.memo_hits_bounds += 1
                entry: _CachedDirections = cached
                lifted = self._lift_vectors(
                    entry.vectors_reduced, surviving, n_common_full, forced_dropped
                )
                if qsink.enabled:
                    self._end_trace(
                        qsink,
                        start,
                        bool(lifted),
                        "memo",
                        entry.exact,
                        n_vectors=len(lifted),
                    )
                return DirectionResult(
                    vectors=lifted,
                    n_common=n_common_full,
                    exact=entry.exact,
                    from_memo=True,
                    tests_performed=0,
                )

        from repro.core.directions import refine_directions as _refine

        transformed = outcome.transformed
        assert transformed is not None
        reduced_result = None
        decided_by = "refinement"
        if options.dimension_by_dimension:
            from repro.core.separable import is_separable, separable_directions

            if is_separable(work):
                reduced_result = separable_directions(self, work, qsink, scope)
                decided_by = "separable"
        if reduced_result is None:
            reduced_result = _refine(
                self, work, transformed, options, qsink, scope
            )
        result = DirectionResult(
            vectors=self._lift_vectors(
                reduced_result.vectors, surviving, n_common_full, forced_dropped
            ),
            n_common=n_common_full,
            exact=reduced_result.exact,
            tests_performed=reduced_result.tests_performed,
        )
        self.stats.direction_vectors_found += result.count_elementary()
        if memo is not None and memo_key is not None:
            memo.with_bounds.insert(
                memo_key,
                _CachedDirections(
                    vectors_reduced=reduced_result.vectors,
                    exact=reduced_result.exact,
                    reduced_n_common=reduced_result.n_common,
                ),
            )
        if qsink.enabled:
            self._end_trace(
                qsink,
                start,
                bool(result.vectors),
                decided_by,
                result.exact,
                n_vectors=result.count_elementary(),
            )
        return result

    @staticmethod
    def _lift_vectors(
        vectors_reduced: frozenset[tuple[str, ...]],
        surviving: list[int],
        n_common_full: int,
        forced: dict[int, str] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        from repro.core.directions import lift_vector

        lifted = frozenset(
            lift_vector(vector, surviving, n_common_full)
            for vector in vectors_reduced
        )
        if forced:
            lifted = frozenset(
                tuple(
                    forced.get(level, component)
                    for level, component in enumerate(vector)
                )
                for vector in lifted
            )
        return lifted

    @staticmethod
    def _direction_safe_keep(
        problem: DependenceProblem, nest1: LoopNest
    ) -> tuple[set[int], dict[int, str] | None]:
        """Which variables direction refinement must keep, and the exact
        components for common levels it may still drop.

        Unused-variable elimination is sound for *verdicts*, but the
        direction constraints (``i <= i' - 1`` etc.) couple each common
        level's two variables to each other and, through the bounds, to
        the rest of the system — so a dropped level lifted as ``*`` is
        only exact when (differential fuzzing found each of these):

        * *both* of the level's variables are unused — if either is
          used, the direction constraint links the dropped variable to
          the live system and some directions may be infeasible;
        * the level's loop has constant bounds — bounds referencing an
          outer (dropped) variable shift the level's range between the
          two iterations being compared, which rules out combinations
          across levels (e.g. ``(<, >)`` needs slack the shifted range
          may not have);
        * the loop has at least two iterations — a provably
          single-iteration level only pairs an iteration with itself,
          so its component is forced to ``=`` (still droppable).

        Returns the force-keep variable set (closure over bounds is
        done by ``eliminate_unused``) and the forced component map for
        droppable single-iteration levels.
        """
        used = problem.used_variable_closure()
        keep: set[int] = set()
        forced: dict[int, str] = {}
        for level in range(problem.n_common):
            v1, v2 = level, problem.n1 + level
            if v1 in used or v2 in used:
                keep.update((v1, v2))
                continue
            loop = nest1.loops[level]
            if loop.lower.is_constant and loop.upper.is_constant:
                if loop.upper.constant <= loop.lower.constant:
                    # Single iteration (empty loops are out of contract:
                    # non-empty assumption, section 5).
                    forced[level] = Direction.EQ
            else:
                keep.update((v1, v2))
        return keep, forced or None

    # -- constant fast path ------------------------------------------------------

    @staticmethod
    def _constant_fast_path(
        ref1: ArrayRef, ref2: ArrayRef
    ) -> DependenceResult | None:
        """Decide constant-subscript cases without any dependence test.

        If some dimension compares two unequal constants the references
        are independent; if every dimension compares equal constants
        they always collide.  Mixed cases fall through to the tests.
        """
        all_constant = True
        for sub1, sub2 in zip(ref1.subscripts, ref2.subscripts):
            if sub1.is_constant and sub2.is_constant:
                if sub1.constant != sub2.constant:
                    return DependenceResult(
                        dependent=False, decided_by=DECIDED_CONSTANT
                    )
            else:
                all_constant = False
        if all_constant:
            return DependenceResult(dependent=True, decided_by=DECIDED_CONSTANT)
        return None

    # -- problem-level pipeline ------------------------------------------------------

    def _analyze_problem(
        self,
        problem: DependenceProblem,
        qsink: TraceSink = NULL_SINK,
        scope: BudgetScope = NULL_SCOPE,
    ) -> DependenceResult:
        work = problem
        surviving = list(range(problem.n_common))
        if self.eliminate_unused:
            work, surviving = problem.eliminate_unused()

        # The paper's symmetry optimization (section 5): a problem and
        # its reference-swapped twin share one memo slot.  Canonicalize
        # on the smaller key; distances flip sign when we analyzed (or
        # recall) the swapped orientation.
        memo = self.memoizer
        flipped = False
        if memo is not None and memo.symmetry:
            twin = work.swapped()
            if twin.key_vector(with_bounds=True) < work.key_vector(
                with_bounds=True
            ):
                work = twin
                flipped = True

        # Memo order follows the paper: the no-bounds (GCD) table first —
        # a cached "equalities unsolvable" answers the query outright and
        # the with-bounds table is never consulted for such cases (its
        # totals in Table 2 exclude the GCD-independent population).
        key_source = None
        nb_entry = _MISS
        if memo is not None:
            key_source = work if memo.improved else problem
            nb_entry = self._nb_lookup(key_source, qsink)
            if nb_entry is not _MISS and nb_entry.independent:
                if qsink.enabled:
                    qsink.emit(
                        EgcdResolved(independent=True, reused=True, elapsed_ns=0)
                    )
                return DependenceResult(
                    dependent=False, decided_by="gcd", from_memo=True
                )

        # Resolve the equalities before touching the with-bounds table:
        # GCD-independent cases never consult it (Table 2's with-bounds
        # totals count only the cases that reach the inequality tests).
        outcome = self._gcd_outcome(work, key_source, nb_entry, qsink)
        if outcome.independent:
            self.stats.gcd_independent += 1
            return DependenceResult(dependent=False, decided_by="gcd")

        key_bounds = None
        if memo is not None:
            key_bounds = key_source.key_bytes(with_bounds=True)
            self.stats.memo_queries_bounds += 1
            hit, cached = memo.with_bounds.lookup(key_bounds)
            if qsink.enabled:
                qsink.emit(MemoLookup(table="with_bounds", hit=hit))
            if hit:
                self.stats.memo_hits_bounds += 1
                entry: _CachedVerdict = cached
                return DependenceResult(
                    dependent=entry.dependent,
                    decided_by=entry.decided_by,
                    exact=entry.exact,
                    witness=None,
                    from_memo=True,
                    distance=self._present_distance(
                        entry.distance_reduced, flipped, problem, surviving
                    ),
                )

        transformed = outcome.transformed
        assert transformed is not None
        system = transformed.flat if self.use_flat else None
        if system is None:  # flat disabled, or int64 overflow fallback
            system = transformed.system
        decision = self._run_cascade(
            system, record=True, sink=qsink, scope=scope
        )
        verdict = decision.result.verdict
        dependent = verdict in (Verdict.DEPENDENT, Verdict.UNKNOWN)
        distance_reduced = None
        if dependent:
            from repro.core.distances import constant_distances

            distance_reduced = constant_distances(transformed)
        witness = None
        if dependent and self.want_witness and decision.witness_t is not None:
            witness = self._lift_witness(problem, work, transformed, decision)
        result = DependenceResult(
            dependent=dependent,
            decided_by=decision.result.test_name,
            exact=decision.result.exact,
            witness=witness,
            distance=self._present_distance(
                distance_reduced, flipped, problem, surviving
            ),
        )
        if memo is not None and key_bounds is not None:
            memo.with_bounds.insert(
                key_bounds,
                _CachedVerdict(
                    dependent=dependent,
                    decided_by=decision.result.test_name,
                    exact=decision.result.exact,
                    distance_reduced=distance_reduced,
                ),
            )
        return result

    def _present_distance(
        self,
        distance_reduced: tuple[int | None, ...] | None,
        flipped: bool,
        problem: DependenceProblem,
        surviving: list[int],
    ) -> tuple[int | None, ...] | None:
        """Orient and lift a reduced-space distance for this query.

        Cached distances live over the *reduced canonical* problem's
        common levels; each retrieval flips them back if it analyzed the
        swapped orientation and re-embeds them into its own original
        loop nest (dropped unused levels report None).
        """
        if distance_reduced is None:
            return None
        oriented = tuple(
            None if d is None else (-d if flipped else d)
            for d in distance_reduced
        )
        if len(surviving) == problem.n_common and surviving == list(
            range(problem.n_common)
        ):
            return oriented
        return self._lift_distances(problem, surviving, oriented)

    def _nb_lookup(
        self, key_source: DependenceProblem, qsink: TraceSink = NULL_SINK
    ):
        """Consult the no-bounds table; returns the entry or _MISS."""
        memo = self.memoizer
        assert memo is not None
        key = key_source.key_bytes(with_bounds=False)
        self.stats.memo_queries_no_bounds += 1
        hit, cached = memo.no_bounds.lookup(key)
        if qsink.enabled:
            qsink.emit(MemoLookup(table="no_bounds", hit=hit))
        if hit:
            self.stats.memo_hits_no_bounds += 1
            return cached
        return _MISS

    def _gcd_outcome(
        self,
        work: DependenceProblem,
        key_source: DependenceProblem | None,
        nb_entry,
        qsink: TraceSink = NULL_SINK,
    ) -> GcdOutcome:
        """Extended GCD, reusing a cached factorization when available."""
        if nb_entry is not _MISS:
            entry: _GcdCacheEntry = nb_entry
            if entry.independent:
                if qsink.enabled:
                    qsink.emit(
                        EgcdResolved(independent=True, reused=True, elapsed_ns=0)
                    )
                return GcdOutcome(independent=True)
            start = time.perf_counter_ns() if qsink.enabled else 0
            rebuilt = self._rebuild_transform(work, entry)
            if qsink.enabled:
                qsink.emit(
                    EgcdResolved(
                        independent=False,
                        reused=True,
                        elapsed_ns=time.perf_counter_ns() - start,
                    )
                )
            return rebuilt
        start = time.perf_counter_ns() if qsink.enabled else 0
        outcome = gcd_transform(work)
        if qsink.enabled:
            qsink.emit(
                EgcdResolved(
                    independent=outcome.independent,
                    reused=False,
                    elapsed_ns=time.perf_counter_ns() - start,
                )
            )
        memo = self.memoizer
        if memo is not None and key_source is not None:
            key = key_source.key_bytes(with_bounds=False)
            if outcome.independent:
                memo.no_bounds.insert(key, _GcdCacheEntry(independent=True))
            else:
                transformed = outcome.transformed
                assert transformed is not None
                memo.no_bounds.insert(
                    key,
                    _GcdCacheEntry(
                        independent=False,
                        x_offset=transformed.x_offset,
                        x_basis=transformed.x_basis,
                    ),
                )
        return outcome

    @staticmethod
    def _rebuild_transform(
        problem: DependenceProblem, entry: _GcdCacheEntry
    ) -> GcdOutcome:
        """Re-apply a cached factorization to this problem's bounds."""
        assert entry.x_offset is not None and entry.x_basis is not None
        t_names = tuple(f"t{k + 1}" for k in range(len(entry.x_basis)))
        # Bounds transform lazily (flat-first) on cascade entry; a
        # with-bounds memo hit right after this never transforms at all.
        transformed = TransformedSystem(
            t_names=t_names,
            x_offset=entry.x_offset,
            x_basis=entry.x_basis,
            problem=problem,
        )
        return GcdOutcome(independent=False, transformed=transformed)

    # -- the inequality cascade ------------------------------------------------------

    def _run_cascade(
        self,
        system: ConstraintSystem,
        record: bool,
        sink: TraceSink = NULL_SINK,
        scope: BudgetScope = NULL_SCOPE,
    ) -> CascadeDecision:
        """Run SVPC -> Acyclic -> Loop Residue -> Fourier-Motzkin.

        Per the paper, the cascade checks applicability cheapest-first
        and applies exactly one test (plus Acyclic's free partial
        simplification of cyclic systems).  Every member speaks the
        same ``run(system, sink) -> TestResult`` protocol; a member
        that cannot decide returns NOT_APPLICABLE, optionally carrying
        a simplified ``residual`` (and the witness-lifting
        ``completion``) the next member takes instead.
        """
        current = system
        completions = []
        result = None
        # Stage timers: top-level queries (record=True) always observe;
        # direction-refinement sub-queries (record=False) fan out up to
        # 3^depth cascade runs per query, so their per-stage histogram
        # updates are skipped unless a trace sink is attached — the
        # refinement tests are still counted via record_direction_test.
        observe = record or sink.enabled
        for test in self._cascade:
            scope.tick()
            result = test.run(current, sink, scope)
            if observe:
                self.stats.observe_stage_ns(test.name, result.elapsed_ns)
            if sink.enabled:
                sink.emit(
                    CascadeStage(
                        stage=test.name,
                        verdict=result.verdict.value,
                        elapsed_ns=result.elapsed_ns,
                    )
                )
            if result.verdict is not Verdict.NOT_APPLICABLE:
                break
            if result.residual is not None:
                current = result.residual
                if result.completion is not None:
                    completions.append(result.completion)
        assert result is not None  # Fourier-Motzkin always answers
        self._record(result, record)
        witness = result.witness
        if witness is not None and completions:
            for completion in reversed(completions):
                witness = completion(witness)
            result = TestResult(result.verdict, result.test_name, witness=witness)
        return CascadeDecision(result, witness)

    def _record(self, result: TestResult, record: bool) -> None:
        if record:
            independent = result.verdict is Verdict.INDEPENDENT
            self.stats.record_decision(result.test_name, independent)

    # -- witness/distance lifting ------------------------------------------

    def _lift_witness(
        self,
        problem: DependenceProblem,
        work: DependenceProblem,
        transformed: TransformedSystem,
        decision: CascadeDecision,
    ) -> tuple[int, ...] | None:
        """Map a t-space witness back to the original x variables.

        When unused-variable elimination dropped variables, extend the
        witness by walking the dropped loop variables in nesting order
        and pinning each to its (evaluated) lower bound; verify against
        the original system and return None on any inconsistency rather
        than a wrong witness.
        """
        x_work = transformed.x_value(decision.witness_t)
        if work is problem:
            return tuple(x_work)
        values: dict[str, int] = dict(zip(work.names, x_work))
        full = []
        for j, name in enumerate(problem.names):
            if name in values:
                full.append(values[name])
                continue
            lower = self._lower_bound_value(problem, j, values)
            values[name] = lower if lower is not None else 0
            full.append(values[name])
        witness = tuple(full)
        if not problem.bounds.evaluate(witness):
            return None
        for coeffs, rhs in problem.equations:
            if sum(c * x for c, x in zip(coeffs, witness)) != rhs:
                return None
        return witness

    @staticmethod
    def _lower_bound_value(
        problem: DependenceProblem, var: int, values: dict[str, int]
    ) -> int | None:
        """Evaluate the variable's lower-bound constraint if possible."""
        for con in problem.bounds.constraints:
            if con.coeffs[var] >= 0:
                continue
            try:
                rest = sum(
                    c * values[problem.names[j]]
                    for j, c in enumerate(con.coeffs)
                    if c != 0 and j != var
                )
            except KeyError:
                continue
            # con: a*var + rest <= b with a < 0  ==>  var >= (b - rest)/a
            a = con.coeffs[var]
            from repro.linalg.gcdext import floor_div

            return -floor_div(con.bound - rest, -a)
        return None

    @staticmethod
    def _lift_distances(
        problem: DependenceProblem,
        surviving: list[int],
        distance: tuple[int | None, ...],
    ) -> tuple[int | None, ...]:
        """Map reduced-problem distances back to original common levels.

        Dropped common levels have no constant distance (any iteration
        difference is possible), so they report None.
        """
        lifted: list[int | None] = [None] * problem.n_common
        for reduced_level, original_level in enumerate(surviving):
            if reduced_level < len(distance):
                lifted[original_level] = distance[reduced_level]
        return tuple(lifted)
