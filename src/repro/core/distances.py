"""Distance vectors from the Extended GCD solution (paper section 6).

The GCD change of variables expresses every loop variable as an affine
function of the free ``t`` variables.  For a common loop level ``k``
the dependence distance is ``i'_k - i_k``; re-expressed over the free
variables it is ``coeffs . t + c``.  When ``coeffs`` is identically
zero the distance is the *constant* ``c`` for every dependence — the
common constant-distance case the paper exploits for direction-vector
pruning.

As the paper notes, this misses distances that are only constant
*because of the bounds* (their example: ``a[10i+j]`` vs
``a[10(i+2)+j]`` with ``1 <= j <= 10`` has distance ``(2, 0)`` but the
free-variable expression is not syntactically constant).  Direction
vectors, by contrast, are always computable exactly.
"""

from __future__ import annotations

from repro.system.depsystem import Direction
from repro.system.transform import TransformedSystem

__all__ = ["constant_distances", "forced_directions"]


def constant_distances(
    transformed: TransformedSystem,
) -> tuple[int | None, ...]:
    """Per common level: the constant distance ``i'_k - i_k``, or None."""
    problem = transformed.problem
    out: list[int | None] = []
    for level in range(problem.n_common):
        coeffs_x, const = problem.distance_coeffs(level)
        coeffs_t, c = transformed.transform_expr(coeffs_x, const)
        out.append(c if all(v == 0 for v in coeffs_t) else None)
    return tuple(out)


def forced_directions(
    distances: tuple[int | None, ...],
) -> dict[int, str]:
    """Directions implied by constant distances (distance-vector pruning).

    Distance ``d = i' - i``: positive forces ``<``, zero forces ``=``,
    negative forces ``>`` — no other direction needs testing at that
    level (paper section 6: "we know from the GCD test that i' - i = 1;
    we therefore know that i < i' and need not try out any other
    directions").
    """
    forced: dict[int, str] = {}
    for level, d in enumerate(distances):
        if d is None:
            continue
        if d > 0:
            forced[level] = Direction.LT
        elif d == 0:
            forced[level] = Direction.EQ
        else:
            forced[level] = Direction.GT
    return forced
