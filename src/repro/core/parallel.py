"""Loop-level parallelism detection — the paper's motivating client.

A loop can run its iterations concurrently iff no dependence is
*carried* by it: no pair of conflicting references whose direction
vector is ``=`` on every outer level and ``<`` or ``>`` at the loop's
own level.  (A dependence that is ``=`` at the level is loop-
independent; one carried by an outer loop doesn't constrain this one.)

This module drives dependence analysis over every testable reference
pair of a program and aggregates carried levels per loop — exactly what
a parallelizing compiler's vectorizer front-end consumes.  By default
the pairs go through the batch engine
(:func:`~repro.core.engine.analyze_batch`), which deduplicates repeated
patterns and can shard the unique problems across worker processes
(``jobs``); passing an explicit ``analyzer`` keeps the historical
serial loop, which the experiment harness uses to collect stats on a
single analyzer instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.analyzer import DependenceAnalyzer
from repro.core.result import DirectionResult
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import AccessSite, Program, reference_pairs
from repro.system.depsystem import Direction

__all__ = [
    "LoopReport",
    "carried_levels",
    "analyze_parallelism",
    "aggregate_loop_reports",
]


def carried_levels(result: DirectionResult) -> set[int]:
    """Levels at which some dependence is carried.

    A vector carries at the first non-``=`` level; ``*`` components are
    conservative (could be ``<``, ``=`` or ``>``), so a leading ``*``
    both carries at its level and lets the scan continue inward.
    """
    carried: set[int] = set()
    for vector in result.vectors:
        for level, direction in enumerate(vector):
            if direction == Direction.EQ:
                continue
            carried.add(level)
            if direction != Direction.ANY:
                break
            # '*' includes '=': deeper levels may carry as well.
    return carried


@dataclass
class LoopReport:
    """Parallelizability of one loop in the program."""

    loop: Loop
    level: int
    parallel: bool
    carriers: list[tuple[AccessSite, AccessSite]] = field(default_factory=list)

    def __str__(self) -> str:
        status = "PARALLEL" if self.parallel else "serial"
        return f"{'  ' * self.level}{self.loop}   [{status}]"


def analyze_parallelism(
    program: Program,
    analyzer: DependenceAnalyzer | None = None,
    jobs: int | None = None,
    warm=None,
    budget=None,
) -> list[LoopReport]:
    """Report, for every loop in the program, whether it is parallel.

    Loops are identified by their position in each statement's nest;
    loops shared by several statements are reported once, and are
    parallel only if *no* reference pair carries a dependence at their
    level.

    With no explicit ``analyzer`` the pairs run through the batch
    engine: repeated patterns are analyzed once and, when ``jobs`` is
    greater than one, unique problems fan out across worker processes
    (``warm`` optionally seeds their memo tables — see
    :func:`repro.core.engine.analyze_batch`).  Passing an ``analyzer``
    keeps the serial per-pair loop on that instance; the two paths
    produce identical reports.

    ``budget`` (a :class:`~repro.robust.budget.ResourceBudget`) bounds
    the engine path's workers; a budget-degraded pair answers with the
    all-``'*'`` vector, which conservatively marks every common loop
    serial.
    """
    if analyzer is None:
        from repro.core.engine import analyze_batch, queries_from_program

        report = analyze_batch(
            queries_from_program(program), jobs=jobs, warm=warm,
            budget=budget,
        )
        pair_directions = [
            (outcome.query.tag[0], outcome.query.tag[1], outcome.directions)
            for outcome in report.outcomes
        ]
    else:
        if jobs is not None and jobs != 1:
            raise ValueError(
                "jobs > 1 requires the engine path; omit the analyzer"
            )
        pair_directions = [
            (
                site1,
                site2,
                analyzer.directions(
                    site1.ref, site1.nest, site2.ref, site2.nest
                ),
            )
            for site1, site2 in reference_pairs(program)
        ]
    return aggregate_loop_reports(program, pair_directions)


def aggregate_loop_reports(
    program: Program,
    pair_directions: Iterable[
        tuple[AccessSite, AccessSite, DirectionResult]
    ],
) -> list[LoopReport]:
    """Fold per-pair direction results into per-loop parallel verdicts."""
    reports: dict[tuple[Loop, int], LoopReport] = {}

    def report_for(nest: LoopNest, level: int) -> LoopReport:
        key = (nest[level], level)
        if key not in reports:
            reports[key] = LoopReport(loop=nest[level], level=level, parallel=True)
        return reports[key]

    # Every loop starts presumed parallel.
    for stmt in program.statements:
        for level in range(stmt.nest.depth):
            report_for(stmt.nest, level)

    for site1, site2, directions in pair_directions:
        if directions.independent:
            continue
        common = site1.nest.common_prefix_depth(site2.nest)
        for level in carried_levels(directions):
            if level >= common:
                continue
            report = report_for(site1.nest, level)
            report.parallel = False
            report.carriers.append((site1, site2))

    return sorted(reports.values(), key=lambda r: (r.level, r.loop.var))
