"""Loop-level parallelism detection — the paper's motivating client.

A loop can run its iterations concurrently iff no dependence is
*carried* by it: no pair of conflicting references whose direction
vector is ``=`` on every outer level and ``<`` or ``>`` at the loop's
own level.  (A dependence that is ``=`` at the level is loop-
independent; one carried by an outer loop doesn't constrain this one.)

This module drives :class:`~repro.core.analyzer.DependenceAnalyzer`
over every testable reference pair of a program and aggregates carried
levels per loop — exactly what a parallelizing compiler's vectorizer
front-end consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import DependenceAnalyzer
from repro.core.result import DirectionResult
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import AccessSite, Program, reference_pairs
from repro.system.depsystem import Direction

__all__ = ["LoopReport", "carried_levels", "analyze_parallelism"]


def carried_levels(result: DirectionResult) -> set[int]:
    """Levels at which some dependence is carried.

    A vector carries at the first non-``=`` level; ``*`` components are
    conservative (could be ``<``, ``=`` or ``>``), so a leading ``*``
    both carries at its level and lets the scan continue inward.
    """
    carried: set[int] = set()
    for vector in result.vectors:
        for level, direction in enumerate(vector):
            if direction == Direction.EQ:
                continue
            carried.add(level)
            if direction != Direction.ANY:
                break
            # '*' includes '=': deeper levels may carry as well.
    return carried


@dataclass
class LoopReport:
    """Parallelizability of one loop in the program."""

    loop: Loop
    level: int
    parallel: bool
    carriers: list[tuple[AccessSite, AccessSite]] = field(default_factory=list)

    def __str__(self) -> str:
        status = "PARALLEL" if self.parallel else "serial"
        return f"{'  ' * self.level}{self.loop}   [{status}]"


def analyze_parallelism(
    program: Program, analyzer: DependenceAnalyzer | None = None
) -> list[LoopReport]:
    """Report, for every loop in the program, whether it is parallel.

    Loops are identified by their position in each statement's nest;
    loops shared by several statements are reported once, and are
    parallel only if *no* reference pair carries a dependence at their
    level.
    """
    if analyzer is None:
        analyzer = DependenceAnalyzer()

    reports: dict[tuple[Loop, int], LoopReport] = {}

    def report_for(nest: LoopNest, level: int) -> LoopReport:
        key = (nest[level], level)
        if key not in reports:
            reports[key] = LoopReport(loop=nest[level], level=level, parallel=True)
        return reports[key]

    # Every loop starts presumed parallel.
    for stmt in program.statements:
        for level in range(stmt.nest.depth):
            report_for(stmt.nest, level)

    for site1, site2 in reference_pairs(program):
        directions = analyzer.directions(
            site1.ref, site1.nest, site2.ref, site2.nest
        )
        if directions.independent:
            continue
        common = site1.nest.common_prefix_depth(site2.nest)
        for level in carried_levels(directions):
            if level >= common:
                continue
            report = report_for(site1.nest, level)
            report.parallel = False
            report.carriers.append((site1, site2))

    return sorted(reports.values(), key=lambda r: (r.level, r.loop.var))
