"""Loop-transformation legality from direction vectors.

The classical clients of exact dependence analysis: a loop
transformation is legal iff it keeps every dependence's direction
vector *lexicographically non-negative* (the sink iteration must not
move before its source).  Exact vectors make these checks exact:

* **parallelization** of loop ``k`` — no dependence carried at ``k``
  (see :mod:`repro.core.parallel`);
* **reversal** of loop ``k`` — legal iff no dependence is carried at
  ``k`` (a carried ``<`` would flip to ``>``);
* **interchange / arbitrary permutation** — legal iff every vector,
  with its components permuted, is still lexicographically
  non-negative.

Vectors here are *oriented* (source executes before sink, so the first
non-``=`` component is ``<`` or ``*``); ``*`` components are expanded
conservatively.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.analyzer import DependenceAnalyzer
from repro.core.kinds import DependenceEdge, classify_pair
from repro.ir.program import Program, reference_pairs
from repro.system.depsystem import Direction

__all__ = [
    "gather_dependences",
    "lexicographic_sign",
    "permutation_legal",
    "interchange_legal",
    "reversal_legal",
]


def gather_dependences(
    program: Program, analyzer: DependenceAnalyzer | None = None
) -> list[DependenceEdge]:
    """All oriented dependence edges of the program (input deps skipped)."""
    if analyzer is None:
        analyzer = DependenceAnalyzer()
    edges: list[DependenceEdge] = []
    for site1, site2 in reference_pairs(program):
        edges.extend(classify_pair(site1, site2, analyzer))
    return [e for e in edges if e.kind != "input"]


def _expand(vector: Sequence[str]) -> Iterable[tuple[str, ...]]:
    """Elementary vectors covered by a (possibly wildcarded) vector."""
    out: list[tuple[str, ...]] = [()]
    for component in vector:
        options = (
            Direction.ALL if component == Direction.ANY else (component,)
        )
        out = [prefix + (o,) for prefix in out for o in options]
    return out


def lexicographic_sign(vector: Sequence[str]) -> int:
    """+1 if the first non-= component is <, -1 if >, 0 if all =.

    Raises on ``*`` — callers expand wildcards first.
    """
    for component in vector:
        if component == Direction.EQ:
            continue
        if component == Direction.LT:
            return 1
        if component == Direction.GT:
            return -1
        raise ValueError("wildcard component; expand first")
    return 0


def permutation_legal(
    edges: Iterable[DependenceEdge], perm: Sequence[int]
) -> bool:
    """Is permuting the loops of a depth-``len(perm)`` nest legal?

    ``perm[new_level] = old_level``.  Legal iff no *realizable*
    dependence vector becomes lexicographically negative.  Edges whose
    vectors are shorter than the permutation's depth constrain only
    their own levels; deeper components are treated as ``=``.
    """
    depth = len(perm)
    if sorted(perm) != list(range(depth)):
        raise ValueError(f"{perm} is not a permutation of 0..{depth - 1}")
    for edge in edges:
        padded = tuple(edge.vector) + (Direction.EQ,) * (
            depth - len(edge.vector)
        )
        for elementary in _expand(padded[:depth]):
            if lexicographic_sign(elementary) < 0:
                # Not realizable source->sink; skip (comes from '*').
                continue
            permuted = tuple(elementary[perm[new]] for new in range(depth))
            if lexicographic_sign(permuted) < 0:
                return False
    return True


def interchange_legal(
    edges: Iterable[DependenceEdge], level: int, depth: int
) -> bool:
    """May loops ``level`` and ``level + 1`` of a depth-``depth`` nest swap?"""
    perm = list(range(depth))
    perm[level], perm[level + 1] = perm[level + 1], perm[level]
    return permutation_legal(edges, perm)


def reversal_legal(edges: Iterable[DependenceEdge], level: int) -> bool:
    """May loop ``level`` run its iterations in reverse order?

    Legal iff no dependence is carried at ``level``: reversing flips a
    carried ``<`` into an illegal ``>``.
    """
    for edge in edges:
        if level >= len(edge.vector):
            continue
        for elementary in _expand(edge.vector):
            if lexicographic_sign(elementary) < 0:
                continue
            prefix = elementary[:level]
            if all(c == Direction.EQ for c in prefix) and elementary[
                level
            ] != Direction.EQ:
                return False
    return True
