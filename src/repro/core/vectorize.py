"""Loop distribution and vectorization (Allen-Kennedy-style codegen).

The classic consumer of exact direction vectors: given statements in a
shared loop nest, build the statement-level dependence graph, condense
it into strongly connected components, and recurse:

* an SCC with **no** internal dependence at or below the current level
  becomes a **vector statement** — every remaining loop dimension runs
  data-parallel;
* an SCC whose internal dependences are all carried *deeper* keeps the
  current loop **parallel** and recurses inward;
* an SCC with a dependence carried at the current level gets a
  **serial** loop; serializing it satisfies every edge whose direction
  at this level is ``<``, which is removed before recursing.

Distinct SCCs are *distributed*: each gets its own copy of the loop,
emitted in topological order of the condensation — exactly the
loop-distribution transformation, whose legality rests on the
dependence directions being exact.  Inexact analysis (extra "assumed"
dependence edges) directly translates into fused, serialized loops;
this module is where the paper's exactness pays off in generated code.

Statements must share an identical loop nest (the canonical
vectorization setting); see :func:`vectorize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import DependenceAnalyzer
from repro.core.kinds import classify_pair
from repro.ir.program import Program, Statement, reference_pairs
from repro.system.depsystem import Direction

__all__ = [
    "vectorize",
    "VectorizationResult",
    "SerialLoop",
    "ParallelLoop",
    "VectorStatement",
    "ScalarStatement",
]


# -- result tree ----------------------------------------------------------------


@dataclass
class VectorStatement:
    """A statement whose remaining dimensions all run data-parallel."""

    stmt: Statement
    vector_levels: tuple[int, ...]

    def render(self, indent: int = 0) -> list[str]:
        dims = (
            ", ".join(self.stmt.nest[l].var for l in self.vector_levels)
            or "scalar"
        )
        return ["  " * indent + f"VECTOR[{dims}] {self.stmt.write} = ..."]


@dataclass
class ScalarStatement:
    """A statement emitted inside fully materialized loops."""

    stmt: Statement

    def render(self, indent: int = 0) -> list[str]:
        return ["  " * indent + f"{self.stmt.write} = ..."]


@dataclass
class SerialLoop:
    level: int
    var: str
    body: list = field(default_factory=list)

    def render(self, indent: int = 0) -> list[str]:
        out = ["  " * indent + f"DO {self.var} (serial)"]
        for node in self.body:
            out.extend(node.render(indent + 1))
        return out


@dataclass
class ParallelLoop:
    level: int
    var: str
    body: list = field(default_factory=list)

    def render(self, indent: int = 0) -> list[str]:
        out = ["  " * indent + f"DOALL {self.var} (parallel)"]
        for node in self.body:
            out.extend(node.render(indent + 1))
        return out


@dataclass
class VectorizationResult:
    """The distributed/vectorized program shape."""

    nodes: list
    depth: int

    def render(self) -> str:
        out: list[str] = []
        for node in self.nodes:
            out.extend(node.render())
        return "\n".join(out)

    def count(self, kind) -> int:
        total = 0

        def walk(nodes):
            nonlocal total
            for node in nodes:
                if isinstance(node, kind):
                    total += 1
                if isinstance(node, (SerialLoop, ParallelLoop)):
                    walk(node.body)

        walk(self.nodes)
        return total


# -- edge bookkeeping -------------------------------------------------------------


def _carried_at(vector: tuple[str, ...], level: int) -> bool:
    """Could this dependence be carried by loop ``level``?"""
    if level >= len(vector):
        return False
    if vector[level] == Direction.EQ:
        return False
    return all(
        vector[j] in (Direction.EQ, Direction.ANY) for j in range(level)
    )


def _satisfied_by_serial(vector: tuple[str, ...], level: int) -> bool:
    """A serial loop at ``level`` satisfies strictly-forward edges."""
    return level < len(vector) and vector[level] == Direction.LT


@dataclass(frozen=True)
class _Edge:
    src: int  # statement index
    dst: int
    vector: tuple[str, ...]


def _statement_edges(
    program: Program, analyzer: DependenceAnalyzer
) -> list[_Edge]:
    site_to_stmt = {}
    for site in program.sites():
        site_to_stmt[site.site_index] = site.stmt_index
    edges = []
    for site1, site2 in reference_pairs(program):
        for edge in classify_pair(site1, site2, analyzer):
            if edge.kind == "input":
                continue
            edges.append(
                _Edge(
                    src=site_to_stmt[edge.source.site_index],
                    dst=site_to_stmt[edge.sink.site_index],
                    vector=edge.vector,
                )
            )
    return edges


# -- Tarjan SCC + topological condensation ----------------------------------------


def _condense(nodes: list[int], edges: list[_Edge]) -> list[list[int]]:
    """SCCs of the subgraph on ``nodes``, in topological order."""
    node_set = set(nodes)
    adjacency: dict[int, list[int]] = {n: [] for n in nodes}
    for edge in edges:
        if edge.src in node_set and edge.dst in node_set:
            adjacency[edge.src].append(edge.dst)

    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [0]

    def strongconnect(v: int) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in adjacency[v]:
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            scc = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                scc.append(w)
                if w == v:
                    break
            sccs.append(sorted(scc))

    for v in nodes:
        if v not in index:
            strongconnect(v)
    # Tarjan emits SCCs in reverse topological order.
    sccs.reverse()
    return sccs


# -- the codegen recursion -----------------------------------------------------------


def vectorize(
    program: Program, analyzer: DependenceAnalyzer | None = None
) -> VectorizationResult:
    """Distribute and vectorize a program whose statements share a nest."""
    if not program.statements:
        return VectorizationResult(nodes=[], depth=0)
    nest = program.statements[0].nest
    for stmt in program.statements:
        if stmt.nest != nest:
            raise ValueError(
                "vectorize() requires all statements to share one loop nest"
            )
    if analyzer is None:
        analyzer = DependenceAnalyzer()
    edges = _statement_edges(program, analyzer)
    stmts = list(range(len(program.statements)))

    def codegen(group: list[int], level: int, live: list[_Edge]) -> list:
        if level == nest.depth:
            ordered = _order_leaves(group, live)
            return [
                ScalarStatement(program.statements[s]) for s in ordered
            ]
        out = []
        for scc in _condense(group, live):
            internal = [
                e for e in live if e.src in set(scc) and e.dst in set(scc)
            ]
            if len(scc) == 1 and not any(
                e.src == e.dst == scc[0] for e in internal
            ):
                out.append(
                    VectorStatement(
                        program.statements[scc[0]],
                        tuple(range(level, nest.depth)),
                    )
                )
                continue
            if not any(_carried_at(e.vector, level) for e in internal):
                loop = ParallelLoop(level, nest[level].var)
                loop.body = codegen(scc, level + 1, internal)
            else:
                survivors = [
                    e
                    for e in internal
                    if not _satisfied_by_serial(e.vector, level)
                ]
                loop = SerialLoop(level, nest[level].var)
                loop.body = codegen(scc, level + 1, survivors)
            out.append(loop)
        return out

    return VectorizationResult(
        nodes=codegen(stmts, 0, edges), depth=nest.depth
    )


def _order_leaves(group: list[int], edges: list[_Edge]) -> list[int]:
    """Topological order of the (acyclic at leaf level) remaining edges.

    Falls back to program order on any residual cycle — program order
    is always a safe sequential schedule.
    """
    group_set = set(group)
    preds: dict[int, set[int]] = {n: set() for n in group}
    for edge in edges:
        if edge.src in group_set and edge.dst in group_set and edge.src != edge.dst:
            preds[edge.dst].add(edge.src)
    ordered: list[int] = []
    remaining = set(group)
    while remaining:
        ready = sorted(
            n for n in remaining if not (preds[n] & remaining)
        )
        if not ready:
            ordered.extend(sorted(remaining))
            break
        ordered.extend(ready)
        remaining -= set(ready)
    return ordered
