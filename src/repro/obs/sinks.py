"""Trace sinks: where the analyzer's decision provenance flows.

The :class:`TraceSink` protocol is deliberately tiny — a boolean
``enabled`` plus ``emit(event)`` — so the analyzer's untraced hot path
pays exactly one attribute check per decision point and allocates
nothing.  The :data:`NULL_SINK` is the default everywhere.

:class:`QueryScopedSink` is the piece that keeps deep emitters simple:
the analyzer wraps its sink once per traced query, and every event the
cascade, Fourier-Motzkin, or the direction refinement emits through the
wrapper is stamped with that query's id — the tests themselves never
learn about query identity.

Sharded runs collect events in per-worker :class:`CollectingSink`\\ s;
:func:`merge_event_streams` renumbers their query ids in shard order,
which is deterministic because the batch engine deals shards
round-robin (the pool's scheduling never reorders the streams).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Protocol, TextIO, runtime_checkable

from repro.obs.events import event_to_dict

__all__ = [
    "TraceSink",
    "NullSink",
    "NULL_SINK",
    "CollectingSink",
    "StreamingSink",
    "QueryScopedSink",
    "merge_event_streams",
]


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive trace events."""

    enabled: bool

    def emit(self, event: Any) -> None: ...


class NullSink:
    """The zero-overhead default: nothing is recorded.

    Emitters must gate event *construction* on ``sink.enabled`` — with
    this sink the analyzer's only cost is that predicate check.
    """

    enabled = False

    def emit(self, event: Any) -> None:  # pragma: no cover - never called
        pass


NULL_SINK = NullSink()


class CollectingSink:
    """Buffers every event in order; the explain/debug workhorse."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[Any] = []

    def emit(self, event: Any) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def by_query(self) -> dict[int | None, list[Any]]:
        """Events grouped by query id, preserving emission order."""
        grouped: dict[int | None, list[Any]] = {}
        for event in self.events:
            grouped.setdefault(event.query_id, []).append(event)
        return grouped


class StreamingSink:
    """Writes each event as a JSONL line the moment it is emitted."""

    enabled = True

    def __init__(self, target: str | Path | TextIO):
        if isinstance(target, (str, Path)):
            self._fh: TextIO = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.emitted = 0

    def emit(self, event: Any) -> None:
        self._fh.write(json.dumps(event_to_dict(event), sort_keys=True))
        self._fh.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "StreamingSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class QueryScopedSink:
    """Stamps one query's id onto everything emitted through it."""

    __slots__ = ("inner", "query_id")

    enabled = True

    def __init__(self, inner: TraceSink, query_id: int):
        self.inner = inner
        self.query_id = query_id

    def emit(self, event: Any) -> None:
        event.query_id = self.query_id
        self.inner.emit(event)


def merge_event_streams(streams: Iterable[list[Any]]) -> list[Any]:
    """Concatenate per-shard event streams with globally unique query ids.

    Each stream's local ids (dense or not) are remapped, in order of
    first appearance, onto a single increasing sequence.  Merging the
    same streams in the same order always yields the same result, so
    sharded traces are reproducible run to run (modulo timings).
    """
    merged: list[Any] = []
    next_id = 0
    for events in streams:
        remap: dict[int, int] = {}
        for event in events:
            local = event.query_id
            if local is not None:
                if local not in remap:
                    remap[local] = next_id
                    next_id += 1
                event.query_id = remap[local]
            merged.append(event)
    return merged
