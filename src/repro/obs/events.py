"""Typed trace events: the decision provenance of one dependence query.

Every event answers part of "why did the analyzer say dependent here?":
which memo table hit, what Extended GCD concluded (and whether it
reused a cached factorization), which cascade stages were entered and
what each returned in how many nanoseconds, where Fourier-Motzkin had
to branch, and which direction-refinement tree nodes were actually
tested versus forced or served from the refinement cache.

Events are plain mutable dataclasses so the emitting analyzer can stamp
``query_id`` (see :class:`repro.obs.sinks.QueryScopedSink`) and so
shard merging can renumber them.  ``event_to_dict``/``event_from_dict``
and the JSONL helpers give them a stable serialized form for
artifacts and offline analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, ClassVar, Iterable, Iterator, TextIO

__all__ = [
    "QueryStart",
    "ConstantScreen",
    "MemoLookup",
    "EgcdResolved",
    "CascadeStage",
    "FmBranch",
    "FmSample",
    "DirectionNode",
    "QueryEnd",
    "EVENT_KINDS",
    "event_to_dict",
    "event_from_dict",
    "write_jsonl",
    "read_jsonl",
]


@dataclass
class QueryStart:
    """A dependence query entered the analyzer."""

    kind: ClassVar[str] = "query_start"

    op: str  # "analyze" | "directions"
    ref1: str
    ref2: str
    n_common: int
    query_id: int | None = None


@dataclass
class ConstantScreen:
    """The array-constant fast path fired (Table 1's first column)."""

    kind: ClassVar[str] = "constant_screen"

    independent: bool
    query_id: int | None = None


@dataclass
class MemoLookup:
    """One probe of a memo table (section 5)."""

    kind: ClassVar[str] = "memo_lookup"

    table: str  # "no_bounds" | "with_bounds"
    hit: bool
    query_id: int | None = None


@dataclass
class EgcdResolved:
    """Extended GCD resolved the subscript equalities (section 3.1).

    ``reused`` marks outcomes rebuilt from a cached factorization (a
    no-bounds memo hit) instead of a fresh echelon reduction.
    """

    kind: ClassVar[str] = "egcd"

    independent: bool
    reused: bool
    elapsed_ns: int
    query_id: int | None = None


@dataclass
class CascadeStage:
    """One cascade test was entered; its verdict and wall time."""

    kind: ClassVar[str] = "cascade_stage"

    stage: str
    verdict: str  # Verdict.value, including "not_applicable"
    elapsed_ns: int
    query_id: int | None = None


@dataclass
class FmBranch:
    """Fourier-Motzkin opened a branch-and-bound node (section 3.5)."""

    kind: ClassVar[str] = "fm_branch"

    var: int
    depth: int
    split_floor: int
    budget_left: int
    query_id: int | None = None


@dataclass
class FmSample:
    """A Fourier-Motzkin back-substitution sampling outcome.

    ``outcome`` is ``"integer_picked"`` when a variable's range held an
    integer (``value`` is the sample), or ``"empty_constant_range"``
    for the paper's exact special case — a constant range with no
    integer proves independence without branching.
    """

    kind: ClassVar[str] = "fm_sample"

    var: int
    outcome: str
    value: int | None = None
    query_id: int | None = None


@dataclass
class DirectionNode:
    """One node of the hierarchical direction-refinement tree.

    ``action`` is ``"tested"`` (a cascade run happened; ``verdict``
    holds its outcome — an independent verdict prunes the subtree),
    ``"cached"`` (vector repeated within this refinement), or
    ``"forced"`` (the starting template after distance-sign forcing;
    those levels are never tested at all).
    """

    kind: ClassVar[str] = "direction_node"

    vector: tuple[str, ...]
    action: str
    verdict: str | None = None
    query_id: int | None = None


@dataclass
class QueryEnd:
    """The query's final answer and total wall time."""

    kind: ClassVar[str] = "query_end"

    dependent: bool
    decided_by: str
    exact: bool
    elapsed_ns: int
    n_vectors: int | None = None  # direction queries only
    query_id: int | None = None


EVENT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        QueryStart,
        ConstantScreen,
        MemoLookup,
        EgcdResolved,
        CascadeStage,
        FmBranch,
        FmSample,
        DirectionNode,
        QueryEnd,
    )
}


def event_to_dict(event: Any) -> dict:
    """JSON-safe dict form; tuples become lists, ``event`` names the kind."""
    out: dict[str, Any] = {"event": event.kind}
    for f in fields(event):
        value = getattr(event, f.name)
        if isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def event_from_dict(payload: dict) -> Any:
    """Inverse of :func:`event_to_dict`."""
    data = dict(payload)
    kind = data.pop("event")
    cls = EVENT_KINDS[kind]
    if cls is DirectionNode and isinstance(data.get("vector"), list):
        data["vector"] = tuple(data["vector"])
    return cls(**data)


def write_jsonl(events: Iterable[Any], target: str | Path | TextIO) -> int:
    """Write events as one JSON object per line; returns the count."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            return write_jsonl(events, fh)
    count = 0
    for event in events:
        target.write(json.dumps(event_to_dict(event), sort_keys=True))
        target.write("\n")
        count += 1
    return count


def read_jsonl(source: str | Path | TextIO) -> Iterator[Any]:
    """Yield events back from a JSONL stream written by :func:`write_jsonl`."""
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as fh:
            yield from read_jsonl(fh)
        return
    for line in source:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))
