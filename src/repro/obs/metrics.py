"""The metrics registry: counters, labeled families, histograms/timers.

One :class:`MetricsRegistry` holds everything a run measures:

* **scalar counters** — plain named integers (``queries.total``);
* **families** — :class:`collections.Counter` keyed by label, for
  per-test breakdowns (``tests.decided_by``) where the label set is
  open-ended (the merge keeps *every* key, known or not — column
  selection is the table renderer's job, not the registry's);
* **histograms** — count/total/min/max aggregates, used both for value
  distributions and as monotonic timers (observations in nanoseconds
  from ``time.perf_counter_ns``).

Merging is associative and order-independent across all three kinds,
so sharded registries fold exactly like the analyzer stats they back
(:class:`repro.core.stats.AnalyzerStats` is a view over a registry).
``counter_snapshot`` deliberately excludes histograms: counters are
bit-deterministic across shardings, wall times are not.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Histogram", "MetricsRegistry"]


class Histogram:
    """Count/total/min/max aggregate of observed values (e.g. ns)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(
        self,
        count: int = 0,
        total: int = 0,
        min_value: int | None = None,
        max_value: int | None = None,
    ):
        self.count = count
        self.total = total
        self.min = min_value
        self.max = max_value

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        return cls(
            count=payload["count"],
            total=payload["total"],
            min_value=payload["min"],
            max_value=payload["max"],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, total={self.total}, "
            f"min={self.min}, max={self.max})"
        )


class MetricsRegistry:
    """Counters, labeled counter families and histograms under one roof.

    Mutation and snapshot paths are guarded by one re-entrant lock, so
    a registry may be shared by concurrent server threads: increments
    are never lost and snapshots never observe a half-applied merge.
    Reads of single scalars stay lock-free (a dict lookup is atomic
    under the GIL and the value is a plain int).
    """

    __slots__ = ("scalars", "families", "histograms", "_lock")

    def __init__(self) -> None:
        self.scalars: dict[str, int] = {}
        self.families: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.RLock()

    # Registries cross process boundaries inside AnalyzerStats (the
    # batch engine pickles per-shard stats); locks don't pickle, so the
    # state is the three maps and the lock is rebuilt on restore.
    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "scalars": dict(self.scalars),
                "families": {k: Counter(v) for k, v in self.families.items()},
                "histograms": dict(self.histograms),
            }

    def __setstate__(self, state: dict) -> None:
        self.scalars = state["scalars"]
        self.families = state["families"]
        self.histograms = state["histograms"]
        self._lock = threading.RLock()

    # -- scalar counters ---------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.scalars[name] = self.scalars.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.scalars.get(name, 0)

    def put(self, name: str, value: int) -> None:
        with self._lock:
            self.scalars[name] = value

    # -- labeled families --------------------------------------------------

    def family(self, name: str) -> Counter:
        """The live Counter for a label family (created on demand)."""
        counter = self.families.get(name)
        if counter is None:
            with self._lock:
                counter = self.families.get(name)
                if counter is None:
                    counter = Counter()
                    self.families[name] = counter
        return counter

    def inc_family(self, name: str, key: Any, amount: int = 1) -> None:
        """Atomic increment of one family label (thread-safe)."""
        with self._lock:
            self.family(name)[key] += amount

    # -- histograms / timers -----------------------------------------------

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            with self._lock:
                hist = self.histograms.get(name)
                if hist is None:
                    hist = Histogram()
                    self.histograms[name] = hist
        return hist

    def observe(self, name: str, value: int) -> None:
        with self._lock:
            self.histogram(name).observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Monotonic timer: records elapsed ns into the named histogram."""
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter_ns() - start)

    # -- map-reduce fold ---------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry; keeps every key of both sides."""
        with self._lock:
            for name, value in other.scalars.items():
                self.scalars[name] = self.scalars.get(name, 0) + value
            for name, counter in other.families.items():
                self.family(name).update(counter)
            for name, hist in other.histograms.items():
                self.histogram(name).merge(hist)

    # -- snapshots & serialization ----------------------------------------

    def counter_snapshot(self) -> dict[str, dict]:
        """The deterministic part: scalars + families, zeros dropped.

        Family keys are flattened to strings (tuple labels join on
        ``"|"``) so snapshots compare and serialize cleanly.  Histograms
        are excluded on purpose — wall-clock observations differ run to
        run even when the computation is identical.
        """
        with self._lock:
            scalars = {k: v for k, v in self.scalars.items() if v}
            families = {}
            for name, counter in self.families.items():
                flat = {
                    _flat_key(key): value
                    for key, value in counter.items()
                    if value
                }
                if flat:
                    families[name] = flat
            return {"scalars": scalars, "families": families}

    def to_dict(self) -> dict:
        """Full JSON-safe dump (``repro stats --json`` and round trips)."""
        with self._lock:
            out = self.counter_snapshot()
            out["histograms"] = {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
                if hist.count
            }
            return out

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        registry = cls()
        registry.scalars.update(payload.get("scalars", {}))
        for name, flat in payload.get("families", {}).items():
            counter = registry.family(name)
            for key, value in flat.items():
                counter[_unflat_key(key)] = value
        for name, hist in payload.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_dict(hist)
        return registry

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        if self.counter_snapshot() != other.counter_snapshot():
            return False
        mine = {k: h for k, h in self.histograms.items() if h.count}
        theirs = {k: h for k, h in other.histograms.items() if h.count}
        return mine == theirs

    def render(self) -> str:
        """Sorted plain-text dump (the ``repro stats`` default output)."""
        lines: list[str] = []
        snapshot = self.counter_snapshot()
        for name in sorted(snapshot["scalars"]):
            lines.append(f"{name:<40s} {snapshot['scalars'][name]:>12,}")
        for family in sorted(snapshot["families"]):
            for key in sorted(snapshot["families"][family]):
                label = f"{family}[{key}]"
                lines.append(f"{label:<40s} {snapshot['families'][family][key]:>12,}")
        timed = [
            (name, hist)
            for name, hist in sorted(self.histograms.items())
            if hist.count
        ]
        if timed:
            lines.append("")
            lines.append(
                f"{'timer':<28s} {'count':>9s} {'total_ms':>10s} "
                f"{'mean_us':>9s} {'max_us':>9s}"
            )
            for name, hist in timed:
                lines.append(
                    f"{name:<28s} {hist.count:>9,} "
                    f"{hist.total / 1e6:>10.2f} "
                    f"{hist.mean / 1e3:>9.1f} "
                    f"{(hist.max or 0) / 1e3:>9.1f}"
                )
        return "\n".join(lines)


def _flat_key(key: Any) -> str:
    if isinstance(key, tuple):
        return "|".join(str(part) for part in key)
    return str(key)


def _unflat_key(key: str) -> Any:
    if "|" in key:
        return tuple(key.split("|"))
    return key
