"""Pretty-printing for decision traces (``repro explain``)."""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.events import (
    CascadeStage,
    ConstantScreen,
    DirectionNode,
    EgcdResolved,
    FmBranch,
    FmSample,
    MemoLookup,
    QueryEnd,
    QueryStart,
)

__all__ = ["format_trace"]


def _ns(ns: int) -> str:
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f} us"
    return f"{ns} ns"


def format_trace(events: Iterable[Any]) -> str:
    """Render one query's event stream as an indented decision path."""
    lines: list[str] = []
    for event in events:
        if isinstance(event, QueryStart):
            lines.append(
                f"query[{event.query_id}] {event.op}: "
                f"{event.ref1} vs {event.ref2} "
                f"({event.n_common} common loop{'s' if event.n_common != 1 else ''})"
            )
        elif isinstance(event, ConstantScreen):
            verdict = "independent" if event.independent else "dependent"
            lines.append(f"  constant screen: {verdict} (no index variables)")
        elif isinstance(event, MemoLookup):
            lines.append(
                f"  memo[{event.table}]: {'hit' if event.hit else 'miss'}"
            )
        elif isinstance(event, EgcdResolved):
            verdict = "independent" if event.independent else "solvable"
            source = "cached factorization" if event.reused else "fresh reduction"
            lines.append(
                f"  egcd: {verdict} via {source} ({_ns(event.elapsed_ns)})"
            )
        elif isinstance(event, CascadeStage):
            lines.append(
                f"  cascade {event.stage}: {event.verdict} "
                f"({_ns(event.elapsed_ns)})"
            )
        elif isinstance(event, FmBranch):
            lines.append(
                f"    fm branch: var t{event.var} at depth {event.depth}, "
                f"split at {event.split_floor}, budget left {event.budget_left}"
            )
        elif isinstance(event, FmSample):
            if event.outcome == "integer_picked":
                lines.append(
                    f"    fm sample: t{event.var} = {event.value}"
                )
            else:
                lines.append(
                    f"    fm sample: t{event.var} range empty of integers "
                    f"(exact independence)"
                )
        elif isinstance(event, DirectionNode):
            vector = "(" + ", ".join(event.vector) + ")"
            if event.action == "tested":
                lines.append(
                    f"    direction {vector}: tested -> {event.verdict}"
                )
            elif event.action == "cached":
                lines.append(f"    direction {vector}: cached")
            else:
                lines.append(f"    direction {vector}: forced by distances")
        elif isinstance(event, QueryEnd):
            verdict = "dependent" if event.dependent else "independent"
            tail = f"  => {verdict} [{event.decided_by}]"
            if not event.exact:
                tail += " (inexact)"
            if event.n_vectors is not None:
                tail += f", {event.n_vectors} direction vector"
                tail += "s" if event.n_vectors != 1 else ""
            tail += f" ({_ns(event.elapsed_ns)})"
            lines.append(tail)
        else:  # future event kinds degrade gracefully
            lines.append(f"  {event!r}")
    return "\n".join(lines)
