"""Host metadata stamped into every benchmark artifact.

Raw wall-clock numbers are only comparable against the machine that
recorded them; each ``BENCH_*.json`` carries this block so the perf
trajectory across commits can separate code changes from runner
changes.  The regression gate itself consumes only within-run ratios
and exact workload counts, never these fields.
"""

from __future__ import annotations

import os
import platform

__all__ = ["host_metadata"]


def host_metadata() -> dict:
    return {
        "cpus": os.cpu_count() or 1,
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
    }
