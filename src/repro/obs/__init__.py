"""repro.obs — the cascade observability layer.

Three pieces, all optional and all zero-cost when unused:

* :mod:`repro.obs.events` — typed trace events covering every decision
  point of a dependence query (constant screen, memo probes, Extended
  GCD, each cascade stage with its verdict and elapsed nanoseconds,
  Fourier-Motzkin branch-and-bound, direction-refinement tree nodes),
  plus a JSONL exporter/importer.
* :mod:`repro.obs.sinks` — the pluggable :class:`TraceSink` protocol
  with a null sink (the default: a single predicate check per decision
  point), a collecting sink, and a streaming JSONL sink; per-shard
  event streams merge deterministically via
  :func:`merge_event_streams`.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  labeled counter families and histograms/timers.
  :class:`repro.core.stats.AnalyzerStats` is a view over one of these,
  so every harness table is (transitively) a view over the registry
  and sharded registries merge with the same map-reduce fold.
"""

from repro.obs.events import (
    CascadeStage,
    ConstantScreen,
    DirectionNode,
    EgcdResolved,
    FmBranch,
    FmSample,
    MemoLookup,
    QueryEnd,
    QueryStart,
    event_from_dict,
    event_to_dict,
    read_jsonl,
    write_jsonl,
)
from repro.obs.hostmeta import host_metadata
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.render import format_trace
from repro.obs.sinks import (
    NULL_SINK,
    CollectingSink,
    NullSink,
    QueryScopedSink,
    StreamingSink,
    TraceSink,
    merge_event_streams,
)

__all__ = [
    "QueryStart",
    "ConstantScreen",
    "MemoLookup",
    "EgcdResolved",
    "CascadeStage",
    "FmBranch",
    "FmSample",
    "DirectionNode",
    "QueryEnd",
    "event_to_dict",
    "event_from_dict",
    "write_jsonl",
    "read_jsonl",
    "TraceSink",
    "NullSink",
    "NULL_SINK",
    "CollectingSink",
    "StreamingSink",
    "QueryScopedSink",
    "merge_event_streams",
    "MetricsRegistry",
    "host_metadata",
    "Histogram",
    "format_trace",
]
