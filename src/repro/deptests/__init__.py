"""The cascaded exact dependence tests (paper section 3)."""

from repro.deptests.acyclic import (
    AcyclicElimination,
    AcyclicTest,
    build_constraint_graph,
)
from repro.deptests.base import DependenceTest, TestResult, Verdict
from repro.deptests.fourier_motzkin import FourierMotzkinTest
from repro.deptests.gcdtest import ExtendedGcdTest
from repro.deptests.loop_residue import (
    LoopResidueTest,
    ResidueGraph,
    build_residue_graph,
)
from repro.deptests.svpc import SvpcTest

__all__ = [
    "Verdict",
    "TestResult",
    "DependenceTest",
    "ExtendedGcdTest",
    "SvpcTest",
    "AcyclicTest",
    "AcyclicElimination",
    "build_constraint_graph",
    "LoopResidueTest",
    "ResidueGraph",
    "build_residue_graph",
    "FourierMotzkinTest",
]
