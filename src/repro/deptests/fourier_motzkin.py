"""Fourier-Motzkin elimination with integer sampling (paper section 3.5).

The backup test of the cascade.  It decides the *real* relaxation
exactly: eliminating a variable ``v`` replaces its lower/upper bound
pairs by their cross-multiplied combinations, an exact projection of
the feasible region.  If the projection is empty the integer system is
certainly independent.

If a real solution exists, back-substitution walks the eliminations in
reverse, picking the integer at the middle of each variable's allowed
range.  Two refinements recover exactness in common cases:

* If some step's range contains no integer *and the range's bounds are
  constants* (no previously chosen variable influences them — in
  particular at the first back-substitution step), then no integer
  solution exists at all: INDEPENDENT, exactly.  This is the paper's
  special case.
* Otherwise the fractional variable is branched on (``v <= floor`` /
  ``v >= ceil`` companion systems) — classic branch-and-bound, bounded
  by a node budget.  Only a blown budget produces an inexact UNKNOWN
  (treated as dependent); the paper never needed explicit branching on
  its workload and neither do we on ours.

All arithmetic is exact: eliminations cross-multiply integers (with gcd
renormalization, a valid integer tightening), and interval endpoints
during back-substitution are :class:`fractions.Fraction`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.deptests.base import CascadeTest, TestResult, Verdict
from repro.obs.events import FmBranch, FmSample
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.robust.budget import NULL_SCOPE, BudgetScope
from repro.system.constraints import ConstraintSystem, LinearConstraint

__all__ = ["FourierMotzkinTest"]

# Unbounded range ends are represented as None (no sentinel magnitude:
# symbolic bounds can legitimately exceed any finite sentinel).


@dataclass
class _Elimination:
    """One eliminated variable with its bounding constraints."""

    var: int
    lowers: list[LinearConstraint]  # coeff of var < 0: var >= .../...
    uppers: list[LinearConstraint]  # coeff of var > 0: var <= .../...


class FourierMotzkinTest(CascadeTest):
    """Exact real elimination + integer heuristics + branch-and-bound."""

    name = "fourier_motzkin"

    def __init__(self, max_branch_nodes: int = 256):
        self.max_branch_nodes = max_branch_nodes

    def applicable(self, system: ConstraintSystem) -> bool:
        return True

    def _decide(
        self, system: ConstraintSystem, sink: TraceSink, scope: BudgetScope
    ) -> TestResult:
        budget = [self.max_branch_nodes]
        verdict, witness = self._solve(
            list(system.constraints), system.n_vars, budget, sink, scope=scope
        )
        if verdict is Verdict.DEPENDENT:
            return TestResult(verdict, self.name, witness=witness)
        if verdict is Verdict.UNKNOWN:
            return TestResult(verdict, self.name, exact=False)
        return TestResult(Verdict.INDEPENDENT, self.name)

    # -- core solver ----------------------------------------------------------

    def _solve(
        self,
        constraints: list[LinearConstraint],
        n_vars: int,
        budget: list[int],
        sink: TraceSink = NULL_SINK,
        depth: int = 0,
        scope: BudgetScope = NULL_SCOPE,
    ) -> tuple[Verdict, tuple[int, ...] | None]:
        eliminations, infeasible = self._eliminate_all(
            constraints, n_vars, scope
        )
        if infeasible:
            return Verdict.INDEPENDENT, None

        values: dict[int, int] = {}
        assigned_order: list[int] = []
        for step in reversed(eliminations):
            lo, hi = self._range(step, values)
            int_lo = None if lo is None else _ceil(lo)
            int_hi = None if hi is None else _floor(hi)
            if int_lo is not None and int_hi is not None and int_lo > int_hi:
                # An empty integer range needs both ends finite; an
                # unbounded end always holds integers.
                if self._bounds_are_constant(step, assigned_order):
                    # No integer in a constant range: exactly independent.
                    if sink.enabled:
                        sink.emit(
                            FmSample(var=step.var, outcome="empty_constant_range")
                        )
                    return Verdict.INDEPENDENT, None
                return self._branch(
                    constraints,
                    n_vars,
                    step.var,
                    lo,
                    hi,
                    budget,
                    sink,
                    depth,
                    scope,
                )
            mid = _middle(lo, hi, int_lo, int_hi)
            if sink.enabled:
                sink.emit(
                    FmSample(var=step.var, outcome="integer_picked", value=mid)
                )
            values[step.var] = mid
            assigned_order.append(step.var)

        witness = tuple(values.get(v, 0) for v in range(n_vars))
        return Verdict.DEPENDENT, witness

    def _eliminate_all(
        self,
        constraints: list[LinearConstraint],
        n_vars: int,
        scope: BudgetScope = NULL_SCOPE,
    ) -> tuple[list[_Elimination], bool]:
        """Project out every variable; True flag means real-infeasible."""
        current = _dedupe(constraints)
        if any(c.is_contradiction for c in current):
            return [], True
        remaining = set(range(n_vars))
        eliminations: list[_Elimination] = []
        while remaining:
            # Elimination can square the constraint count per variable
            # and cross-multiplication grows coefficients — the two
            # blowup axes a budget bounds (plus the wall clock).
            scope.tick()
            var = self._pick_variable(current, remaining)
            remaining.discard(var)
            lowers = [c for c in current if c.coeffs[var] < 0]
            uppers = [c for c in current if c.coeffs[var] > 0]
            others = [c for c in current if c.coeffs[var] == 0]
            eliminations.append(_Elimination(var, lowers, uppers))
            combos: list[LinearConstraint] = []
            for low in lowers:
                a_l = low.coeffs[var]  # < 0
                for up in uppers:
                    a_u = up.coeffs[var]  # > 0
                    # a_u * low + (-a_l) * up eliminates var exactly.
                    coeffs = [
                        a_u * cl - a_l * cu
                        for cl, cu in zip(low.coeffs, up.coeffs)
                    ]
                    bound = a_u * low.bound - a_l * up.bound
                    combos.append(LinearConstraint.make(coeffs, bound))
            current = _dedupe(others + combos)
            scope.check_constraints(len(current))
            if scope.budget.max_coeff_bits is not None:
                for con in combos:
                    for value in con.coeffs:
                        scope.check_coeff(value)
                    scope.check_coeff(con.bound)
            if any(c.is_contradiction for c in current):
                return eliminations, True
        if any(c.is_contradiction for c in current):
            return eliminations, True
        return eliminations, False

    @staticmethod
    def _pick_variable(
        constraints: list[LinearConstraint], remaining: set[int]
    ) -> int:
        """Chernikova-style greedy order: minimize the p*q fill-in."""
        best_var = min(remaining)
        best_cost = None
        for var in sorted(remaining):
            p = sum(1 for c in constraints if c.coeffs[var] < 0)
            q = sum(1 for c in constraints if c.coeffs[var] > 0)
            cost = p * q - (p + q)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_var = var
        return best_var

    @staticmethod
    def _range(
        step: _Elimination, values: dict[int, int]
    ) -> tuple[Fraction | None, Fraction | None]:
        """The variable's allowed interval; None means unbounded."""
        lo: Fraction | None = None
        hi: Fraction | None = None
        for con in step.lowers:
            a = con.coeffs[step.var]
            rest = sum(
                c * values[j]
                for j, c in enumerate(con.coeffs)
                if j != step.var and c != 0
            )
            bound = Fraction(con.bound - rest, a)  # a < 0 flips to lower bound
            if lo is None or bound > lo:
                lo = bound
        for con in step.uppers:
            a = con.coeffs[step.var]
            rest = sum(
                c * values[j]
                for j, c in enumerate(con.coeffs)
                if j != step.var and c != 0
            )
            bound = Fraction(con.bound - rest, a)
            if hi is None or bound < hi:
                hi = bound
        return lo, hi

    @staticmethod
    def _bounds_are_constant(step: _Elimination, assigned: list[int]) -> bool:
        """True if no already-assigned variable occurs in the step's bounds."""
        assigned_set = set(assigned)
        for con in step.lowers + step.uppers:
            for j in con.variables():
                if j != step.var and j in assigned_set:
                    return False
        return True

    def _branch(
        self,
        constraints: list[LinearConstraint],
        n_vars: int,
        var: int,
        lo: Fraction,
        hi: Fraction,
        budget: list[int],
        sink: TraceSink = NULL_SINK,
        depth: int = 0,
        scope: BudgetScope = NULL_SCOPE,
    ) -> tuple[Verdict, tuple[int, ...] | None]:
        """Branch-and-bound on a variable whose range holds no integer."""
        # Governed limits raise (degrading the whole query); the legacy
        # list budget below keeps its historical soft behavior of
        # returning an inexact UNKNOWN instead.
        scope.tick()
        scope.check_depth(depth)
        scope.charge_fm_node()
        if budget[0] <= 0:
            return Verdict.UNKNOWN, None
        budget[0] -= 1
        split = (lo + hi) / 2
        floor_val = math.floor(split)
        if sink.enabled:
            sink.emit(
                FmBranch(
                    var=var,
                    depth=depth,
                    split_floor=floor_val,
                    budget_left=budget[0],
                )
            )
        unknown_seen = False
        for extra in (
            _upper_bound_constraint(n_vars, var, floor_val),
            _lower_bound_constraint(n_vars, var, floor_val + 1),
        ):
            verdict, witness = self._solve(
                constraints + [extra], n_vars, budget, sink, depth + 1, scope
            )
            if verdict is Verdict.DEPENDENT:
                return verdict, witness
            if verdict is Verdict.UNKNOWN:
                unknown_seen = True
        if unknown_seen:
            return Verdict.UNKNOWN, None
        return Verdict.INDEPENDENT, None


def _upper_bound_constraint(n_vars: int, var: int, bound: int) -> LinearConstraint:
    coeffs = [0] * n_vars
    coeffs[var] = 1
    return LinearConstraint.make(coeffs, bound)


def _lower_bound_constraint(n_vars: int, var: int, bound: int) -> LinearConstraint:
    coeffs = [0] * n_vars
    coeffs[var] = -1
    return LinearConstraint.make(coeffs, -bound)


def _dedupe(constraints: list[LinearConstraint]) -> list[LinearConstraint]:
    """Drop trivial constraints and keep the tightest bound per coeff row."""
    best: dict[tuple[int, ...], int] = {}
    contradictions: list[LinearConstraint] = []
    for con in constraints:
        if con.is_trivial:
            continue
        if con.is_contradiction:
            contradictions.append(con)
            continue
        prev = best.get(con.coeffs)
        if prev is None or con.bound < prev:
            best[con.coeffs] = con.bound
    out = [LinearConstraint(coeffs, bound) for coeffs, bound in best.items()]
    return contradictions + out


def _ceil(value: Fraction) -> int:
    return math.ceil(value)


def _floor(value: Fraction) -> int:
    return math.floor(value)


def _middle(
    lo: Fraction | None,
    hi: Fraction | None,
    int_lo: int | None,
    int_hi: int | None,
) -> int:
    """The integer nearest the middle of [lo, hi], clamped into range."""
    if lo is None and hi is None:
        return 0
    if lo is None:
        return int_hi
    if hi is None:
        return int_lo
    mid = math.floor((lo + hi) / 2)
    return max(int_lo, min(int_hi, mid))
