"""Shared interface of the cascaded dependence tests.

Each test consumes a :class:`~repro.system.constraints.ConstraintSystem`
over the free ``t`` variables produced by Extended GCD preprocessing
and returns a :class:`TestResult`.  A test either *decides* the system
(INDEPENDENT / DEPENDENT, exactly), reports itself NOT_APPLICABLE so
the cascade moves on, or — only Fourier-Motzkin with an exhausted
branch-and-bound budget — returns UNKNOWN.

All tests share the same input form (the paper lists this as a design
criterion for choosing the suite), so the cascade never converts data
between representations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol

from repro.system.constraints import ConstraintSystem

__all__ = ["Verdict", "TestResult", "DependenceTest"]


class Verdict(enum.Enum):
    """Outcome of one dependence test on one constraint system."""

    INDEPENDENT = "independent"
    DEPENDENT = "dependent"
    NOT_APPLICABLE = "not_applicable"
    UNKNOWN = "unknown"

    @property
    def decided(self) -> bool:
        return self in (Verdict.INDEPENDENT, Verdict.DEPENDENT)


@dataclass
class TestResult:
    """What a test found.

    Attributes:
        verdict: the decision (or NOT_APPLICABLE / UNKNOWN).
        test_name: which test produced this result.
        witness: for DEPENDENT, an integer point (over the system's
            variables) satisfying every constraint — the existence proof.
        exact: False only for an UNKNOWN forced out of Fourier-Motzkin
            by the branch-and-bound budget; such answers are treated as
            dependent but flagged.
    """

    verdict: Verdict
    test_name: str
    witness: tuple[int, ...] | None = None
    exact: bool = True

    def __post_init__(self) -> None:
        if self.verdict is Verdict.DEPENDENT and self.witness is None:
            raise ValueError("DEPENDENT results must carry a witness")


class DependenceTest(Protocol):
    """Protocol implemented by every test in the cascade."""

    name: str

    def applicable(self, system: ConstraintSystem) -> bool:
        """Cheap structural check: can this test decide ``system`` exactly?"""
        ...

    def decide(self, system: ConstraintSystem) -> TestResult:
        """Decide the system, or report NOT_APPLICABLE."""
        ...


@dataclass
class CascadeTrace:
    """Diagnostic record of one cascade run (which tests were consulted)."""

    consulted: list[str] = field(default_factory=list)
    decided_by: str | None = None
