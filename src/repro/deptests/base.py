"""Shared interface of the cascaded dependence tests.

Each test consumes a :class:`~repro.system.constraints.ConstraintSystem`
over the free ``t`` variables produced by Extended GCD preprocessing
and returns a :class:`TestResult`.  A test either *decides* the system
(INDEPENDENT / DEPENDENT, exactly), reports itself NOT_APPLICABLE so
the cascade moves on, or — only Fourier-Motzkin with an exhausted
branch-and-bound budget — returns UNKNOWN.

All tests share the same input form (the paper lists this as a design
criterion for choosing the suite), so the cascade never converts data
between representations.  They also share one *calling* form: every
test is invoked as ``test.run(system, sink)`` and every result carries
the same provenance fields (``name``, ``exact``, ``elapsed_ns``), so
the analyzer's cascade is a plain loop with no per-test special cases.
A NOT_APPLICABLE result may still carry work forward: the Acyclic test
hands its partially-eliminated ``residual`` system and a ``completion``
callback (lifting a residual witness over the eliminated variables) to
whichever later test finishes the job.

The pre-observability entry point ``test.decide(system)`` survives as
a deprecation shim on :class:`CascadeTest`.
"""

from __future__ import annotations

import enum
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.obs.sinks import NULL_SINK, TraceSink
from repro.robust.budget import NULL_SCOPE, BudgetScope
from repro.system.constraints import ConstraintSystem

__all__ = ["Verdict", "TestResult", "CascadeTest", "DependenceTest"]


class Verdict(enum.Enum):
    """Outcome of one dependence test on one constraint system."""

    INDEPENDENT = "independent"
    DEPENDENT = "dependent"
    NOT_APPLICABLE = "not_applicable"
    UNKNOWN = "unknown"

    @property
    def decided(self) -> bool:
        return self in (Verdict.INDEPENDENT, Verdict.DEPENDENT)


@dataclass
class TestResult:
    """What a test found.

    Attributes:
        verdict: the decision (or NOT_APPLICABLE / UNKNOWN).
        test_name: which test produced this result.
        witness: for DEPENDENT, an integer point (over the system's
            variables) satisfying every constraint — the existence proof.
        exact: False only for an UNKNOWN forced out of Fourier-Motzkin
            by the branch-and-bound budget; such answers are treated as
            dependent but flagged.
        elapsed_ns: wall time :meth:`CascadeTest.run` spent producing
            this result.
        residual: for a NOT_APPLICABLE that made partial progress (the
            Acyclic test hitting a cycle), the simplified system the
            next cascade stage should decide instead of the original.
        completion: paired with ``residual`` — lifts a witness for the
            residual system into one for the original system.
    """

    verdict: Verdict
    test_name: str
    witness: tuple[int, ...] | None = None
    exact: bool = True
    elapsed_ns: int = 0
    residual: ConstraintSystem | None = None
    completion: Callable[[tuple[int, ...] | None], tuple[int, ...]] | None = None

    def __post_init__(self) -> None:
        if self.verdict is Verdict.DEPENDENT and self.witness is None:
            raise ValueError("DEPENDENT results must carry a witness")

    @property
    def name(self) -> str:
        """Uniform provenance alias for ``test_name``."""
        return self.test_name


class CascadeTest:
    """Base class giving every dependence test one uniform entry point.

    Subclasses implement ``_decide(system, sink)`` (returning
    NOT_APPLICABLE themselves when they cannot handle the system) and
    inherit ``run``, which times the attempt and stamps ``elapsed_ns``.
    """

    name = "cascade-test"

    def applicable(self, system: ConstraintSystem) -> bool:
        """Cheap structural check: can this test decide ``system`` exactly?"""
        raise NotImplementedError

    def _decide(
        self, system: ConstraintSystem, sink: TraceSink, scope: BudgetScope
    ) -> TestResult:
        raise NotImplementedError

    def run(
        self,
        system: ConstraintSystem,
        sink: TraceSink | None = None,
        scope: BudgetScope | None = None,
    ) -> TestResult:
        """Attempt the system; the result carries uniform provenance.

        ``scope`` is the query's resource-budget scope (see
        :mod:`repro.robust.budget`); a test whose work trips a limit
        raises :class:`~repro.robust.budget.BudgetExceeded` out of
        here, which the analyzer converts into a flagged conservative
        verdict at the query boundary.  None means unlimited.
        """
        start = time.perf_counter_ns()
        result = self._decide(
            system,
            sink if sink is not None else NULL_SINK,
            scope if scope is not None else NULL_SCOPE,
        )
        result.elapsed_ns = time.perf_counter_ns() - start
        return result

    def decide(self, system: ConstraintSystem) -> TestResult:
        """Deprecated pre-observability entry point; use :meth:`run`."""
        warnings.warn(
            f"{type(self).__name__}.decide() is deprecated; "
            "use run(system, sink=None)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(system)


class DependenceTest(Protocol):
    """Protocol implemented by every test in the cascade."""

    name: str

    def applicable(self, system: ConstraintSystem) -> bool:
        """Cheap structural check: can this test decide ``system`` exactly?"""
        ...

    def run(
        self,
        system: ConstraintSystem,
        sink: TraceSink | None = None,
        scope: BudgetScope | None = None,
    ) -> TestResult:
        """Decide the system, or report NOT_APPLICABLE."""
        ...


@dataclass
class CascadeTrace:
    """Diagnostic record of one cascade run (which tests were consulted)."""

    consulted: list[str] = field(default_factory=list)
    decided_by: str | None = None
