"""The Single Variable Per Constraint test (paper section 3.2).

Applicable when every constraint mentions at most one variable.  Each
constraint is then just an upper or lower bound for that variable;
scanning once and keeping the tightest bound per variable decides the
system exactly: independent iff some variable's lower bound exceeds its
upper bound.

This is a superset of the classic single-loop single-dimension exact
test, and — thanks to Extended GCD preprocessing folding the equality
constraints away — it also covers many multi-dimensional and coupled
subscript patterns.  It decides the overwhelming majority of real cases
(Table 1) at O(constraints + variables) cost.
"""

from __future__ import annotations

from repro.deptests.base import CascadeTest, TestResult, Verdict
from repro.obs.sinks import TraceSink
from repro.robust.budget import BudgetScope
from repro.system.constraints import ConstraintSystem

__all__ = ["SvpcTest"]


class SvpcTest(CascadeTest):
    """Single Variable Per Constraint — the cheapest exact test."""

    name = "svpc"

    def applicable(self, system: ConstraintSystem) -> bool:
        return system.max_vars_per_constraint() <= 1

    def _decide(
        self, system: ConstraintSystem, sink: TraceSink, scope: BudgetScope
    ) -> TestResult:
        # One linear scan: no budget check sites needed beyond run()'s.
        if not self.applicable(system):
            return TestResult(Verdict.NOT_APPLICABLE, self.name)
        if system.has_contradiction():
            return TestResult(Verdict.INDEPENDENT, self.name)
        intervals = system.single_variable_intervals()
        if any(interval.empty for interval in intervals):
            return TestResult(Verdict.INDEPENDENT, self.name)
        witness = tuple(interval.pick() for interval in intervals)
        return TestResult(Verdict.DEPENDENT, self.name, witness=witness)
