"""The Acyclic test (paper section 3.3).

Handles systems where some constraints couple two or more variables,
provided the *constraint graph* is acyclic.  The graph has two nodes
per variable — ``+v`` ("v is bounded above through some constraint")
and ``-v`` ("bounded below") — and, for every multi-variable constraint
``sum a_k * t_k <= b`` and ordered pair of its variables ``(j, i)``, an
edge from ``(+j if a_j > 0 else -j)`` to ``(+i if a_i < 0 else -i)``:
satisfying ``t_j``'s bound through this constraint leans on ``t_i``
from the indicated side.

If the graph is acyclic, some variable occurs in multi-variable
constraints with a single sign only, i.e. it is constrained in just one
direction; pinning it to its extreme single-variable bound (or deleting
its constraints when that bound is infinite) preserves satisfiability
exactly.  Repeating this eliminates every variable, deciding the
system.  When a cycle exists, the elimination still disposes of every
variable outside the cycle, shrinking the system handed to the Loop
Residue and Fourier-Motzkin tests.

Extended GCD preprocessing is a prerequisite: an equality kept as two
inequalities always creates a two-node cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deptests.base import CascadeTest, TestResult, Verdict
from repro.linalg.gcdext import floor_div
from repro.obs.sinks import TraceSink
from repro.robust.budget import NULL_SCOPE, BudgetScope
from repro.system.constraints import (
    NEG_INF,
    POS_INF,
    ConstraintSystem,
    LinearConstraint,
)

__all__ = ["AcyclicTest", "AcyclicElimination", "build_constraint_graph"]

# Step kinds recorded during elimination.
_PIN = "pin"
_DEFER_LOW = "defer_low"  # variable only bounded above; no finite lower bound
_DEFER_HIGH = "defer_high"


def build_constraint_graph(
    system: ConstraintSystem,
) -> list[tuple[tuple[str, int], tuple[str, int]]]:
    """Edges of the two-node-per-variable constraint graph.

    Nodes are ``("+", var)`` / ``("-", var)``; only multi-variable
    constraints contribute edges.
    """
    edges: list[tuple[tuple[str, int], tuple[str, int]]] = []
    for con in system.constraints:
        used = con.variables()
        if len(used) < 2:
            continue
        for j in used:
            tail = ("+", j) if con.coeffs[j] > 0 else ("-", j)
            for i in used:
                if i == j:
                    continue
                head = ("+", i) if con.coeffs[i] < 0 else ("-", i)
                edges.append((tail, head))
    return edges


def _graph_has_cycle(
    edges: list[tuple[tuple[str, int], tuple[str, int]]]
) -> bool:
    adjacency: dict[tuple[str, int], list[tuple[str, int]]] = {}
    nodes: set[tuple[str, int]] = set()
    for tail, head in edges:
        adjacency.setdefault(tail, []).append(head)
        nodes.add(tail)
        nodes.add(head)

    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(nodes, WHITE)

    def visit(node: tuple[str, int]) -> bool:
        color[node] = GRAY
        for nxt in adjacency.get(node, ()):
            if color[nxt] == GRAY:
                return True
            if color[nxt] == WHITE and visit(nxt):
                return True
        color[node] = BLACK
        return False

    return any(color[n] == WHITE and visit(n) for n in nodes)


@dataclass
class AcyclicElimination:
    """Outcome of running the elimination on a system.

    Exactly one of the following holds:

    * ``verdict is Verdict.INDEPENDENT`` — a contradiction surfaced.
    * ``verdict is Verdict.DEPENDENT`` — all variables eliminated;
      ``complete_witness(())`` yields a satisfying point.
    * ``verdict is None`` — a cycle blocked progress; ``residual`` holds
      the simplified system for the next test, and ``complete_witness``
      upgrades that test's witness to cover the eliminated variables.
    """

    n_vars: int
    verdict: Verdict | None = None
    residual: ConstraintSystem | None = None
    steps: list[tuple[str, int, object]] = field(default_factory=list)
    base_values: dict[int, int] = field(default_factory=dict)

    def complete_witness(
        self, residual_witness: tuple[int, ...] | None
    ) -> tuple[int, ...]:
        """Fill in eliminated variables around a witness for the residual."""
        values = list(residual_witness or [0] * self.n_vars)
        if len(values) != self.n_vars:
            raise ValueError("witness arity mismatch")
        for var, val in self.base_values.items():
            values[var] = val
        for kind, var, payload in reversed(self.steps):
            if kind == _PIN:
                values[var] = payload
            else:
                removed: list[LinearConstraint] = payload
                bounds = []
                for con in removed:
                    a = con.coeffs[var]
                    rest = sum(
                        c * values[j]
                        for j, c in enumerate(con.coeffs)
                        if j != var and c != 0
                    )
                    residue = con.bound - rest
                    if kind == _DEFER_LOW:  # a > 0:  var <= residue / a
                        bounds.append(floor_div(residue, a))
                    else:  # a < 0:  var >= residue / a  ==> ceil
                        bounds.append(-floor_div(residue, -a))
                values[var] = min(bounds) if kind == _DEFER_LOW else max(bounds)
        return tuple(values)


class AcyclicTest(CascadeTest):
    """Acyclic constraint-graph test — exact when the graph has no cycle."""

    name = "acyclic"

    def applicable(self, system: ConstraintSystem) -> bool:
        return not _graph_has_cycle(build_constraint_graph(system))

    def eliminate(
        self, system: ConstraintSystem, scope: BudgetScope = NULL_SCOPE
    ) -> AcyclicElimination:
        """Run the one-direction-variable elimination to completion or cycle."""
        result = AcyclicElimination(n_vars=system.n_vars)
        constraints = list(system.constraints)
        eliminated: set[int] = set()

        while True:
            scope.tick()
            constraints = [c for c in constraints if not c.is_trivial]
            if any(c.is_contradiction for c in constraints):
                result.verdict = Verdict.INDEPENDENT
                return result

            work = ConstraintSystem(system.names, constraints)
            intervals = work.single_variable_intervals()
            if any(iv.empty for iv in intervals):
                result.verdict = Verdict.INDEPENDENT
                return result

            multi = [c for c in constraints if c.num_vars_used >= 2]
            if not multi:
                result.verdict = Verdict.DEPENDENT
                for var in range(system.n_vars):
                    if var not in eliminated:
                        result.base_values[var] = intervals[var].pick()
                return result

            candidate = self._find_one_direction_variable(multi)
            if candidate is None:
                result.residual = ConstraintSystem(system.names, constraints)
                return result

            var, positive = candidate
            eliminated.add(var)
            if positive:
                extreme = intervals[var].lo
                if extreme == NEG_INF:
                    removed = [c for c in constraints if c.coeffs[var] != 0]
                    constraints = [c for c in constraints if c.coeffs[var] == 0]
                    result.steps.append((_DEFER_LOW, var, removed))
                    continue
            else:
                extreme = intervals[var].hi
                if extreme == POS_INF:
                    removed = [c for c in constraints if c.coeffs[var] != 0]
                    constraints = [c for c in constraints if c.coeffs[var] == 0]
                    result.steps.append((_DEFER_HIGH, var, removed))
                    continue
            value = int(extreme)
            constraints = [c.substitute(var, value) for c in constraints]
            result.steps.append((_PIN, var, value))

    @staticmethod
    def _find_one_direction_variable(
        multi: list[LinearConstraint],
    ) -> tuple[int, bool] | None:
        """A variable whose coefficients in ``multi`` all share one sign.

        Returns ``(var, positive)`` — positive=True means the variable is
        only bounded *above* through multi-variable constraints, so it may
        be pinned to its lower extreme.
        """
        signs: dict[int, int] = {}
        for con in multi:
            for var in con.variables():
                sign = 1 if con.coeffs[var] > 0 else -1
                prev = signs.get(var)
                if prev is None:
                    signs[var] = sign
                elif prev != sign:
                    signs[var] = 0
        for var, sign in sorted(signs.items()):
            if sign == 1:
                return var, True
            if sign == -1:
                return var, False
        return None

    def _decide(
        self, system: ConstraintSystem, sink: TraceSink, scope: BudgetScope
    ) -> TestResult:
        elimination = self.eliminate(system, scope)
        if elimination.verdict is Verdict.INDEPENDENT:
            return TestResult(Verdict.INDEPENDENT, self.name)
        if elimination.verdict is Verdict.DEPENDENT:
            witness = elimination.complete_witness(None)
            return TestResult(Verdict.DEPENDENT, self.name, witness=witness)
        # Cycle: hand the simplified system and the witness lift forward.
        return TestResult(
            Verdict.NOT_APPLICABLE,
            self.name,
            residual=elimination.residual,
            completion=elimination.complete_witness,
        )
