"""The Extended GCD test as a cascade member (paper section 3.1).

The real work lives in :mod:`repro.system.transform`; this wrapper
gives the preprocessing step the same face as the other tests so the
statistics machinery can count "GCD returned independent" cases
(Table 1's GCD column) uniformly.
"""

from __future__ import annotations

from repro.obs.sinks import TraceSink
from repro.system.depsystem import DependenceProblem
from repro.system.transform import GcdOutcome, gcd_transform

__all__ = ["ExtendedGcdTest"]


class ExtendedGcdTest:
    """Integer solvability of the subscript equalities, ignoring bounds."""

    name = "gcd"

    def run(
        self, problem: DependenceProblem, sink: TraceSink | None = None
    ) -> GcdOutcome:
        return gcd_transform(problem)
