"""The Simple Loop Residue test (paper section 3.4).

Pratt's algorithm decides systems of difference constraints
``t_i <= t_j + c`` exactly: build a graph with one node per variable
plus a special zero node ``n0`` (a pseudo-variable fixed at 0 that
carries the single-variable constraints), put an arc of value ``c``
from ``t_i`` to ``t_j`` for each constraint, and check cycles — the
system is independent iff some cycle has negative value.

Shostak generalized the method to arbitrary two-variable constraints
but lost exactness; the paper instead extends it only to the case
``a*t_i <= a*t_j + c`` (equal coefficient on both sides), which stays
exact: dividing through gives ``t_i - t_j <= floor(c/a)`` — an exact
integer tightening.

We detect negative cycles with Bellman-Ford.  Difference-constraint
matrices are totally unimodular, so a real solution implies an integer
one; the shortest-path potentials provide an integer witness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deptests.base import CascadeTest, TestResult, Verdict
from repro.linalg.gcdext import floor_div
from repro.obs.sinks import TraceSink
from repro.robust.budget import NULL_SCOPE, BudgetScope
from repro.system.constraints import ConstraintSystem

__all__ = ["LoopResidueTest", "ResidueGraph", "build_residue_graph"]

_ZERO = -1  # node id of the special n0 node


@dataclass
class ResidueGraph:
    """The residue graph: arcs ``(src, dst, value)`` meaning ``t_src <= t_dst + value``.

    Node ``-1`` is the special zero node ``n0``.
    """

    n_vars: int
    arcs: list[tuple[int, int, int]]

    def node_name(self, node: int, names: tuple[str, ...] | None = None) -> str:
        if node == _ZERO:
            return "n0"
        return names[node] if names else f"t{node}"


def build_residue_graph(system: ConstraintSystem) -> ResidueGraph | None:
    """Translate constraints into residue arcs, or None if not applicable.

    Applicable constraints are:
      * zero-variable (checked separately),
      * single-variable ``a*t <= c``,
      * two-variable with *opposite equal* coefficients ``a*t_i - a*t_j <= c``.
    """
    arcs: list[tuple[int, int, int]] = []
    for con in system.constraints:
        used = con.variables()
        if len(used) == 0:
            if con.is_contradiction:
                # Encode as a self-loop of negative value at n0 so the
                # decision procedure reports independence uniformly.
                arcs.append((_ZERO, _ZERO, -1))
            continue
        if len(used) == 1:
            (i,) = used
            a = con.coeffs[i]
            if a > 0:
                # t_i <= floor(c/a)  ==  t_i <= n0 + floor(c/a)
                arcs.append((i, _ZERO, floor_div(con.bound, a)))
            else:
                # t_i >= -floor(c/|a|)  ==  n0 <= t_i + floor(c/|a|)
                arcs.append((_ZERO, i, floor_div(con.bound, -a)))
            continue
        if len(used) == 2:
            i, j = used
            ai, aj = con.coeffs[i], con.coeffs[j]
            if ai != -aj:
                return None
            if ai > 0:
                # ai*(t_i - t_j) <= c   ==>   t_i <= t_j + floor(c/ai)
                arcs.append((i, j, floor_div(con.bound, ai)))
            else:
                arcs.append((j, i, floor_div(con.bound, aj)))
            continue
        return None
    return ResidueGraph(system.n_vars, arcs)


class LoopResidueTest(CascadeTest):
    """Exact negative-cycle test for (scaled) difference constraints."""

    name = "loop_residue"

    def applicable(self, system: ConstraintSystem) -> bool:
        return build_residue_graph(system) is not None

    def _decide(
        self, system: ConstraintSystem, sink: TraceSink, scope: BudgetScope
    ) -> TestResult:
        graph = build_residue_graph(system)
        if graph is None:
            return TestResult(Verdict.NOT_APPLICABLE, self.name)
        potentials = self._solve(graph, scope)
        if potentials is None:
            return TestResult(Verdict.INDEPENDENT, self.name)
        witness = tuple(potentials[v] for v in range(system.n_vars))
        return TestResult(Verdict.DEPENDENT, self.name, witness=witness)

    @staticmethod
    def _solve(
        graph: ResidueGraph, scope: BudgetScope = NULL_SCOPE
    ) -> dict[int, int] | None:
        """Bellman-Ford: None on a negative cycle, else integer potentials.

        An arc ``(i, j, c)`` encodes ``t_i <= t_j + c``; relaxing along the
        arc *backwards* (``dist[i] <= dist[j] + c``) from a virtual source
        connected to every node yields feasible potentials.
        """
        nodes = {_ZERO}
        nodes.update(range(graph.n_vars))
        dist = dict.fromkeys(nodes, 0)
        for _ in range(len(nodes)):
            scope.tick()
            changed = False
            for i, j, c in graph.arcs:
                if dist[j] + c < dist[i]:
                    dist[i] = dist[j] + c
                    changed = True
            if not changed:
                break
        else:
            # One extra pass still relaxed: negative cycle.
            for i, j, c in graph.arcs:
                if dist[j] + c < dist[i]:
                    return None
        # Anchor the zero node at 0.
        shift = dist[_ZERO]
        return {v: dist[v] - shift for v in nodes}
