"""Loop normalization: rewrite strided loops to step 1 (paper section 2).

``for i = L to U step s`` becomes ``for k = 0 to trip-1`` with every
use of ``i`` replaced by ``L + s*k``.  The trip count ``(U - L) / s``
must round toward zero by Fortran DO semantics; with affine bounds that
division is only computable when ``U - L`` is a known constant, so:

* ``s == 1``  — already normal, untouched;
* ``s != 1`` with constant ``U - L`` — rewritten as above;
* otherwise — left as-is (the lowering stage reports it).

Negative steps are handled by the same formula (trip count
``(U - L) // s`` with floor-toward-zero semantics of a DO loop).
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    ForLoop,
    IfStmt,
    Name,
    Num,
    Read,
    SourceProgram,
    Stmt,
)
from repro.opt.rewrite import affine_to_expr, substitute_names, try_affine

__all__ = ["normalize_loops"]


def normalize_loops(source: SourceProgram) -> SourceProgram:
    """Return a program in which every normalizable loop has step 1."""
    return SourceProgram(
        body=[_normalize(stmt) for stmt in source.body],
        name=source.name,
        source_lines=source.source_lines,
    )


def _normalize(stmt: Stmt) -> Stmt:
    if isinstance(stmt, IfStmt):
        return IfStmt(
            stmt.op,
            stmt.left,
            stmt.right,
            [_normalize(s) for s in stmt.then_body],
            [_normalize(s) for s in stmt.else_body],
            stmt.line,
        )
    if not isinstance(stmt, ForLoop):
        return stmt
    body = [_normalize(inner) for inner in stmt.body]
    if stmt.step == 1:
        return ForLoop(stmt.var, stmt.lower, stmt.upper, 1, body, stmt.line)

    lower = try_affine(stmt.lower)
    upper = try_affine(stmt.upper)
    if lower is None or upper is None:
        return ForLoop(stmt.var, stmt.lower, stmt.upper, stmt.step, body, stmt.line)
    span = upper - lower
    if not span.is_constant:
        return ForLoop(stmt.var, stmt.lower, stmt.upper, stmt.step, body, stmt.line)

    # DO-loop trip count: executes for i = L, L+s, ... while
    # (i - L) * sign(s) <= (U - L) * sign(s); trips = span//s + 1 when
    # span and s have compatible signs, else 0 -- encode the non-positive
    # case as an upper bound of -1 (empty normalized loop).
    span_c = span.as_constant()
    trips = span_c // stmt.step + 1 if span_c * stmt.step >= 0 else 0

    new_var = f"{stmt.var}__n"
    # i = L + s * k
    replacement = BinOp(
        "+",
        affine_to_expr(lower),
        BinOp("*", Num(stmt.step), Name(new_var)),
    )
    new_body = [
        _substitute_stmt(inner, stmt.var, replacement) for inner in body
    ]
    return ForLoop(
        new_var,
        Num(0),
        Num(trips - 1),
        1,
        new_body,
        stmt.line,
    )


def _substitute_stmt(stmt: Stmt, name: str, replacement) -> Stmt:
    mapping = {name: replacement}
    if isinstance(stmt, Assign):
        from repro.opt.rewrite import map_expressions

        return map_expressions(stmt, lambda e: substitute_names(e, mapping))
    if isinstance(stmt, ForLoop):
        if stmt.var == name:
            # Inner loop shadows the name: bounds still see the outer value.
            return ForLoop(
                stmt.var,
                substitute_names(stmt.lower, mapping),
                substitute_names(stmt.upper, mapping),
                stmt.step,
                stmt.body,
                stmt.line,
            )
        return ForLoop(
            stmt.var,
            substitute_names(stmt.lower, mapping),
            substitute_names(stmt.upper, mapping),
            stmt.step,
            [_substitute_stmt(inner, name, replacement) for inner in stmt.body],
            stmt.line,
        )
    if isinstance(stmt, IfStmt):
        return IfStmt(
            stmt.op,
            substitute_names(stmt.left, mapping),
            substitute_names(stmt.right, mapping),
            [_substitute_stmt(s, name, replacement) for s in stmt.then_body],
            [_substitute_stmt(s, name, replacement) for s in stmt.else_body],
            stmt.line,
        )
    if isinstance(stmt, Read):
        return stmt
    raise TypeError(f"unknown statement {stmt!r}")
