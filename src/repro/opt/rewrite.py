"""Shared AST rewriting utilities for the prepass optimizations."""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.ir.affine import AffineExpr
from repro.lang.ast_nodes import (
    Access,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Num,
    Read,
    Stmt,
)

__all__ = [
    "substitute_names",
    "map_expressions",
    "affine_to_expr",
    "try_affine",
    "assigned_scalars",
]


def substitute_names(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace scalar Name nodes per ``mapping`` (array names untouched)."""
    if isinstance(expr, Name):
        return mapping.get(expr.ident, expr)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            substitute_names(expr.left, mapping),
            substitute_names(expr.right, mapping),
        )
    if isinstance(expr, Access):
        return Access(
            expr.array,
            tuple(substitute_names(s, mapping) for s in expr.subscripts),
        )
    return expr


def map_expressions(stmt: Stmt, fn: Callable[[Expr], Expr]) -> Stmt:
    """Apply ``fn`` to every expression position of one statement (shallow:
    loop bodies are not entered — passes control their own traversal)."""
    if isinstance(stmt, Assign):
        target = stmt.target
        if isinstance(target, Access):
            target = Access(
                target.array, tuple(fn(s) for s in target.subscripts)
            )
        return Assign(target, fn(stmt.expr), line=stmt.line)
    if isinstance(stmt, ForLoop):
        return ForLoop(
            stmt.var,
            fn(stmt.lower),
            fn(stmt.upper),
            stmt.step,
            stmt.body,
            line=stmt.line,
        )
    if isinstance(stmt, IfStmt):
        return IfStmt(
            stmt.op,
            fn(stmt.left),
            fn(stmt.right),
            stmt.then_body,
            stmt.else_body,
            line=stmt.line,
        )
    if isinstance(stmt, Read):
        return stmt
    raise TypeError(f"unknown statement {stmt!r}")


def affine_to_expr(affine: AffineExpr) -> Expr:
    """Convert an affine expression back into an AST expression tree."""
    expr: Expr | None = None

    def append(term: Expr, negative: bool) -> None:
        nonlocal expr
        if expr is None:
            expr = BinOp("-", Num(0), term) if negative else term
        else:
            expr = BinOp("-" if negative else "+", expr, term)

    for name in sorted(affine.terms):
        coeff = affine.coeff(name)
        magnitude = abs(coeff)
        term: Expr = Name(name)
        if magnitude != 1:
            term = BinOp("*", Num(magnitude), term)
        append(term, coeff < 0)
    if affine.constant != 0 or expr is None:
        append(Num(abs(affine.constant)), affine.constant < 0)
    assert expr is not None
    return expr


def try_affine(expr: Expr) -> AffineExpr | None:
    """Lower an AST expression to affine form; None when non-affine."""
    if isinstance(expr, Num):
        return AffineExpr(expr.value)
    if isinstance(expr, Name):
        return AffineExpr.variable(expr.ident)
    if isinstance(expr, BinOp):
        left = try_affine(expr.left)
        right = try_affine(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_constant:
                return right * left.constant
            if right.is_constant:
                return left * right.constant
        return None
    return None  # array accesses are never affine


def assigned_scalars(stmts: list[Stmt]) -> set[str]:
    """Scalar names assigned anywhere within the statements (recursive)."""
    out: set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, Assign) and isinstance(stmt.target, Name):
            out.add(stmt.target.ident)
        elif isinstance(stmt, ForLoop):
            out |= assigned_scalars(stmt.body)
        elif isinstance(stmt, IfStmt):
            out |= assigned_scalars(stmt.then_body)
            out |= assigned_scalars(stmt.else_body)
    return out
