"""Prepass optimizations that make subscripts and bounds affine."""

from repro.opt.constprop import propagate_constants
from repro.opt.forward_sub import forward_substitute
from repro.opt.induction import substitute_inductions
from repro.opt.normalize import normalize_loops
from repro.opt.pipeline import compile_source, optimize

__all__ = [
    "propagate_constants",
    "forward_substitute",
    "substitute_inductions",
    "normalize_loops",
    "optimize",
    "compile_source",
]
