"""Induction-variable substitution via scalar evolution (paper section 8).

The paper's motivating example::

    n = 100
    iz = 0
    for i = 1 to 10 do
        iz = iz + 2
        a[iz + n] = a[iz + 2*n + 1] + 3
    end for

must become ``a[2i + 100] = a[2i + 201] + 3`` before dependence testing
can apply.  This pass subsumes constant propagation and forward
substitution: it tracks every scalar as an affine expression over
*stable* names (enclosing loop variables and never-assigned symbols),
and additionally recognizes linear recurrences.

For each loop, each scalar ``x`` assigned in the body is test-simulated
through one iteration starting from a placeholder value; if its exit
value is ``placeholder + c`` for a constant ``c`` and its entry value
``x0`` is known, then inside the body at iteration ``i`` the pass seeds
``x = x0 + c*(i - L)`` (the pre-increment value; the sequential walk
then tracks positions before/after the increment exactly), and after
the loop ``x = x0 + c * trips``.

Caveat, shared with production strength reduction: the post-loop value
assumes the loop runs its full trip count (a zero-trip loop would leave
``x = x0``); bounds in this IR are assumed non-empty, as in the paper.
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.lang.ast_nodes import (
    Assign,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Read,
    SourceProgram,
    Stmt,
)
from repro.opt.rewrite import (
    affine_to_expr,
    assigned_scalars,
    map_expressions,
    substitute_names,
    try_affine,
)

__all__ = ["substitute_inductions"]

_PLACEHOLDER = "@{}"  # simulation-only variable names; never escape


def substitute_inductions(source: SourceProgram) -> SourceProgram:
    """Run the scalar-evolution rewrite over a whole program."""
    assigned_anywhere = assigned_scalars(source.body)
    walker = _Evolution(assigned_anywhere)
    body = walker.walk(list(source.body), {}, loop_vars=[])
    return SourceProgram(
        body=body, name=source.name, source_lines=source.source_lines
    )


class _Evolution:
    def __init__(self, assigned_anywhere: set[str]):
        self.assigned_anywhere = assigned_anywhere

    # -- value validity ----------------------------------------------------

    def _stable(self, name: str, loop_vars: list[str]) -> bool:
        return name in loop_vars or name not in self.assigned_anywhere

    def _admissible(self, value: AffineExpr, loop_vars: list[str]) -> bool:
        return all(self._stable(v, loop_vars) for v in value.variables())

    # -- main walk -----------------------------------------------------------

    def walk(
        self,
        stmts: list[Stmt],
        env: dict[str, AffineExpr],
        loop_vars: list[str],
    ) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Read):
                env.pop(stmt.ident, None)
                out.append(stmt)
            elif isinstance(stmt, Assign):
                out.append(self._assign(stmt, env, loop_vars))
            elif isinstance(stmt, ForLoop):
                out.append(self._loop(stmt, env, loop_vars))
            elif isinstance(stmt, IfStmt):
                out.append(self._branch(stmt, env, loop_vars))
            else:
                raise TypeError(f"unknown statement {stmt!r}")
        return out

    def _branch(
        self, stmt: IfStmt, env: dict[str, AffineExpr], loop_vars: list[str]
    ) -> IfStmt:
        left = self._substitute(stmt.left, env)
        right = self._substitute(stmt.right, env)
        then_env = dict(env)
        else_env = dict(env)
        then_body = self.walk(list(stmt.then_body), then_env, loop_vars)
        else_body = self.walk(list(stmt.else_body), else_env, loop_vars)
        env.clear()
        env.update(
            {
                name: value
                for name, value in then_env.items()
                if else_env.get(name) == value
            }
        )
        return IfStmt(stmt.op, left, right, then_body, else_body, stmt.line)

    def _substitute(self, expr: Expr, env: dict[str, AffineExpr]) -> Expr:
        mapping = {name: affine_to_expr(value) for name, value in env.items()}
        return substitute_names(expr, mapping)

    def _assign(
        self, stmt: Assign, env: dict[str, AffineExpr], loop_vars: list[str]
    ) -> Assign:
        rewritten = map_expressions(stmt, lambda e: self._substitute(e, env))
        assert isinstance(rewritten, Assign)
        if isinstance(rewritten.target, Name):
            name = rewritten.target.ident
            value = try_affine(rewritten.expr)
            if value is not None and self._admissible(value, loop_vars):
                env[name] = value
            else:
                env.pop(name, None)
        return rewritten

    def _loop(
        self, stmt: ForLoop, env: dict[str, AffineExpr], loop_vars: list[str]
    ) -> ForLoop:
        lower_expr = self._substitute(stmt.lower, env)
        upper_expr = self._substitute(stmt.upper, env)
        lower = try_affine(lower_expr)
        upper = try_affine(upper_expr)
        assigned = assigned_scalars(stmt.body)
        inner_vars = loop_vars + [stmt.var]

        evolutions = self._find_evolutions(stmt, env, assigned)
        entry_values = {name: env[name] for name in evolutions}

        inner_env = {
            name: value
            for name, value in env.items()
            if name not in assigned and name != stmt.var
        }
        closed_forms_ok = (
            stmt.step == 1
            and lower is not None
            and self._admissible(lower, loop_vars)
        )
        if closed_forms_ok:
            index = AffineExpr.variable(stmt.var)
            for name, stride in evolutions.items():
                inner_env[name] = entry_values[name] + (index - lower) * stride

        body = self.walk(list(stmt.body), inner_env, inner_vars)

        # Post-loop values: evolving scalars get their closed form at the
        # full trip count; everything else assigned in the body is unknown.
        env.pop(stmt.var, None)
        for name in assigned:
            env.pop(name, None)
        if (
            closed_forms_ok
            and upper is not None
            and self._admissible(upper, loop_vars)
        ):
            trips = upper - lower + 1
            for name, stride in evolutions.items():
                env[name] = entry_values[name] + trips * stride
        return ForLoop(
            stmt.var, lower_expr, upper_expr, stmt.step, body, stmt.line
        )

    def _find_evolutions(
        self,
        stmt: ForLoop,
        env: dict[str, AffineExpr],
        assigned: set[str],
    ) -> dict[str, int]:
        """Scalars evolving as ``x += c`` per iteration, with known entry.

        Returns ``{name: stride}`` only for scalars whose entry value is
        already known affine, since the closed form needs ``x0``.
        Snapshot of entry values is taken by the caller from ``env``.
        """
        candidates = {
            name for name in assigned if name in env
        }
        if not candidates:
            return {}
        sim_env: dict[str, AffineExpr] = {}
        for name, value in env.items():
            if name in assigned:
                sim_env[name] = AffineExpr.variable(_PLACEHOLDER.format(name))
            else:
                sim_env[name] = value
        self._simulate(stmt.body, sim_env)
        evolutions: dict[str, int] = {}
        for name in candidates:
            exit_value = sim_env.get(name)
            if exit_value is None:
                continue
            placeholder = _PLACEHOLDER.format(name)
            if exit_value.coeff(placeholder) != 1:
                continue
            delta = exit_value - AffineExpr.variable(placeholder)
            if not delta.is_constant:
                continue
            evolutions[name] = delta.as_constant()
        return evolutions

    def _simulate(self, stmts: list[Stmt], env: dict[str, AffineExpr]) -> None:
        """One abstract iteration: track scalar updates only."""
        for stmt in stmts:
            if isinstance(stmt, Read):
                env.pop(stmt.ident, None)
            elif isinstance(stmt, Assign) and isinstance(stmt.target, Name):
                substituted = self._substitute(stmt.expr, env)
                value = try_affine(substituted)
                name = stmt.target.ident
                if value is not None:
                    env[name] = value
                else:
                    env.pop(name, None)
            elif isinstance(stmt, ForLoop):
                for name in assigned_scalars(stmt.body):
                    env.pop(name, None)
                env.pop(stmt.var, None)
            elif isinstance(stmt, IfStmt):
                # A conditionally-assigned scalar is not a uniform
                # recurrence; reject it as an induction candidate.
                for name in assigned_scalars(stmt.then_body):
                    env.pop(name, None)
                for name in assigned_scalars(stmt.else_body):
                    env.pop(name, None)
