"""Forward substitution of affine scalar definitions (paper section 2).

Where constant propagation only tracks integer values, forward
substitution tracks whole affine expressions: after ``k = i + 1`` the
use ``a[k]`` becomes ``a[i + 1]``.  A definition is only propagated
while every variable it mentions is *stable* — an enclosing loop
variable or a never-assigned name (symbolic term).  Scalars assigned
inside a loop vary across iterations and are invalidated at loop entry;
:mod:`repro.opt.induction` recovers the linear ones.
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.lang.ast_nodes import (
    Assign,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Read,
    SourceProgram,
    Stmt,
)
from repro.opt.rewrite import (
    affine_to_expr,
    assigned_scalars,
    map_expressions,
    substitute_names,
    try_affine,
)

__all__ = ["forward_substitute"]


def forward_substitute(source: SourceProgram) -> SourceProgram:
    """Return a program with affine scalar definitions folded into uses."""
    assigned_anywhere = assigned_scalars(source.body)
    walker = _Walker(assigned_anywhere)
    body = walker.walk(source.body, {}, loop_vars=[])
    return SourceProgram(
        body=body, name=source.name, source_lines=source.source_lines
    )


class _Walker:
    def __init__(self, assigned_anywhere: set[str]):
        self.assigned_anywhere = assigned_anywhere

    def _stable(self, name: str, loop_vars: list[str]) -> bool:
        return name in loop_vars or name not in self.assigned_anywhere

    def walk(
        self,
        stmts: list[Stmt],
        env: dict[str, AffineExpr],
        loop_vars: list[str],
    ) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Read):
                env.pop(stmt.ident, None)
                out.append(stmt)
            elif isinstance(stmt, Assign):
                out.append(self._assign(stmt, env, loop_vars))
            elif isinstance(stmt, ForLoop):
                out.append(self._loop(stmt, env, loop_vars))
            elif isinstance(stmt, IfStmt):
                out.append(self._branch(stmt, env, loop_vars))
            else:
                raise TypeError(f"unknown statement {stmt!r}")
        return out

    def _branch(
        self, stmt: IfStmt, env: dict[str, AffineExpr], loop_vars: list[str]
    ) -> IfStmt:
        left = self._substitute(stmt.left, env)
        right = self._substitute(stmt.right, env)
        then_env = dict(env)
        else_env = dict(env)
        then_body = self.walk(stmt.then_body, then_env, loop_vars)
        else_body = self.walk(stmt.else_body, else_env, loop_vars)
        env.clear()
        env.update(
            {
                name: value
                for name, value in then_env.items()
                if else_env.get(name) == value
            }
        )
        return IfStmt(stmt.op, left, right, then_body, else_body, stmt.line)

    def _substitute(self, expr: Expr, env: dict[str, AffineExpr]) -> Expr:
        mapping = {name: affine_to_expr(value) for name, value in env.items()}
        return substitute_names(expr, mapping)

    def _assign(
        self, stmt: Assign, env: dict[str, AffineExpr], loop_vars: list[str]
    ) -> Assign:
        rewritten = map_expressions(stmt, lambda e: self._substitute(e, env))
        assert isinstance(rewritten, Assign)
        if isinstance(rewritten.target, Name):
            name = rewritten.target.ident
            value = try_affine(rewritten.expr)
            if value is not None and all(
                self._stable(v, loop_vars) for v in value.variables()
            ):
                env[name] = value
            else:
                env.pop(name, None)
        return rewritten

    def _loop(
        self, stmt: ForLoop, env: dict[str, AffineExpr], loop_vars: list[str]
    ) -> ForLoop:
        lower = self._substitute(stmt.lower, env)
        upper = self._substitute(stmt.upper, env)
        inner_env = dict(env)
        inner_env.pop(stmt.var, None)
        for name in assigned_scalars(stmt.body):
            inner_env.pop(name, None)
        # Definitions mentioning the loop variable of an *outer* scope
        # stay valid; ones mentioning this new variable cannot exist yet.
        body = self.walk(stmt.body, inner_env, loop_vars + [stmt.var])
        env.pop(stmt.var, None)
        for name in assigned_scalars(stmt.body):
            env.pop(name, None)
        return ForLoop(stmt.var, lower, upper, stmt.step, body, stmt.line)
