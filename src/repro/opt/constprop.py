"""Constant propagation on scalars (paper sections 2 and 8).

A flow-sensitive pass tracking scalars with known integer values and
substituting them into every expression — bounds, subscripts and
right-hand sides.  Scalars assigned inside a loop are invalidated at
loop entry (their value varies across iterations; the stronger
scalar-evolution pass in :mod:`repro.opt.induction` recovers the linear
ones); ``read(x)`` makes ``x`` a runtime unknown.
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    Assign,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Num,
    Read,
    SourceProgram,
    Stmt,
)
from repro.opt.rewrite import (
    assigned_scalars,
    map_expressions,
    substitute_names,
    try_affine,
)

__all__ = ["propagate_constants"]


def propagate_constants(source: SourceProgram) -> SourceProgram:
    """Return a program with known scalar constants substituted."""
    env: dict[str, int] = {}
    body = _walk(source.body, env)
    return SourceProgram(
        body=body, name=source.name, source_lines=source.source_lines
    )


def _walk(stmts: list[Stmt], env: dict[str, int]) -> list[Stmt]:
    out: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, Read):
            env.pop(stmt.ident, None)
            out.append(stmt)
        elif isinstance(stmt, Assign):
            out.append(_assign(stmt, env))
        elif isinstance(stmt, ForLoop):
            out.append(_loop(stmt, env))
        elif isinstance(stmt, IfStmt):
            out.append(_branch(stmt, env))
        else:
            raise TypeError(f"unknown statement {stmt!r}")
    return out


def _substitute(expr: Expr, env: dict[str, int]) -> Expr:
    mapping = {name: Num(value) for name, value in env.items()}
    return substitute_names(expr, mapping)


def _assign(stmt: Assign, env: dict[str, int]) -> Assign:
    rewritten = map_expressions(stmt, lambda e: _substitute(e, env))
    assert isinstance(rewritten, Assign)
    if isinstance(rewritten.target, Name):
        affine = try_affine(rewritten.expr)
        if affine is not None and affine.is_constant:
            env[rewritten.target.ident] = affine.as_constant()
        else:
            env.pop(rewritten.target.ident, None)
    return rewritten


def _branch(stmt: IfStmt, env: dict[str, int]) -> IfStmt:
    """Both arms start from the current facts; afterwards only facts on
    which the arms *agree* survive (the classic meet)."""
    left = _substitute(stmt.left, env)
    right = _substitute(stmt.right, env)
    then_env = dict(env)
    else_env = dict(env)
    then_body = _walk(stmt.then_body, then_env)
    else_body = _walk(stmt.else_body, else_env)
    env.clear()
    env.update(
        {
            name: value
            for name, value in then_env.items()
            if else_env.get(name) == value
        }
    )
    return IfStmt(stmt.op, left, right, then_body, else_body, stmt.line)


def _loop(stmt: ForLoop, env: dict[str, int]) -> ForLoop:
    lower = _substitute(stmt.lower, env)
    upper = _substitute(stmt.upper, env)
    # The loop variable and anything assigned in the body vary inside.
    inner_env = dict(env)
    inner_env.pop(stmt.var, None)
    for name in assigned_scalars(stmt.body):
        inner_env.pop(name, None)
    body = _walk(stmt.body, inner_env)
    # After the loop the body-assigned scalars are unknown.
    env.pop(stmt.var, None)
    for name in assigned_scalars(stmt.body):
        env.pop(name, None)
    return ForLoop(stmt.var, lower, upper, stmt.step, body, stmt.line)
