"""The prepass optimization pipeline (paper sections 2 and 8).

Order matters:

1. **loop normalization** rewrites strided loops to step 1, exposing
   plain loop variables;
2. **scalar evolution** (:func:`substitute_inductions`) folds constants,
   affine scalar definitions, and linear recurrences into subscripts
   and bounds — it subsumes constant propagation and forward
   substitution, which remain available individually for ablation.

``optimize`` is AST -> AST; ``compile_source`` goes all the way from
source text to the affine IR.
"""

from __future__ import annotations

from repro.lang.ast_nodes import SourceProgram
from repro.lang.lower import LowerResult, lower
from repro.lang.parser import parse
from repro.opt.induction import substitute_inductions
from repro.opt.normalize import normalize_loops

__all__ = ["optimize", "compile_source"]


def optimize(source: SourceProgram) -> SourceProgram:
    """Run the full prepass pipeline on a parsed program."""
    out = normalize_loops(source)
    out = substitute_inductions(out)
    return out


def compile_source(
    text: str, name: str = "<source>", strict: bool = True
) -> LowerResult:
    """Parse, optimize and lower source text to the affine IR."""
    return lower(optimize(parse(text, name=name)), strict=strict)
