"""Recursive-descent parser for the mini-Fortran loop language.

Grammar (newline-terminated statements)::

    program   := stmt*
    stmt      := read | loop | assign
    read      := "read" "(" IDENT ")"
    loop      := "for" IDENT "=" expr "to" expr ["step" INT] "do"
                    stmt* "end" ["for"]
    assign    := lvalue "=" expr
    lvalue    := IDENT ("[" expr "]")*
    expr      := term (("+" | "-") term)*
    term      := unary ("*" unary)*
    unary     := ["-"] atom
    atom      := INT | IDENT ("[" expr "]")* | "(" expr ")"
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    Access,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Num,
    Read,
    SourceProgram,
    Stmt,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

__all__ = ["parse", "Parser"]


def parse(source: str, name: str = "<source>") -> SourceProgram:
    """Parse source text into a :class:`SourceProgram`."""
    program = Parser(tokenize(source)).parse_program()
    program.name = name
    program.source_lines = source.count("\n") + 1
    return program


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing --------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._current
        if not self._check(kind, text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._accept(TokenKind.NEWLINE):
            pass

    # -- grammar ----------------------------------------------------------------

    def parse_program(self) -> SourceProgram:
        body = self._statements(until_end=False)
        self._expect(TokenKind.EOF)
        return SourceProgram(body=body)

    def _statements(self, until_end: bool) -> list[Stmt]:
        out: list[Stmt] = []
        self._skip_newlines()
        while True:
            if self._check(TokenKind.EOF):
                if until_end:
                    token = self._current
                    raise ParseError("missing 'end'", token.line, token.column)
                return out
            if until_end and self._check(TokenKind.KEYWORD, "end"):
                return out
            out.append(self._statement())
            self._skip_newlines()

    def _statement(self) -> Stmt:
        token = self._current
        if self._check(TokenKind.KEYWORD, "for"):
            return self._for_loop()
        if self._check(TokenKind.KEYWORD, "if"):
            return self._if_stmt()
        if self._check(TokenKind.KEYWORD, "read"):
            return self._read()
        if self._check(TokenKind.IDENT):
            return self._assign()
        raise ParseError(
            f"expected a statement, found {token.text!r}",
            token.line,
            token.column,
        )

    def _if_stmt(self) -> IfStmt:
        keyword = self._expect(TokenKind.KEYWORD, "if")
        left = self._expression()
        op_token = self._current
        if op_token.kind not in (
            TokenKind.LT,
            TokenKind.LE,
            TokenKind.GT,
            TokenKind.GE,
            TokenKind.EQEQ,
            TokenKind.NE,
        ):
            raise ParseError(
                f"expected a comparison operator, found {op_token.text!r}",
                op_token.line,
                op_token.column,
            )
        self._advance()
        right = self._expression()
        self._expect(TokenKind.KEYWORD, "then")
        self._end_of_statement()
        then_body = self._statements_until(("end", "else"))
        else_body: list[Stmt] = []
        if self._accept(TokenKind.KEYWORD, "else"):
            self._end_of_statement()
            else_body = self._statements_until(("end",))
        self._expect(TokenKind.KEYWORD, "end")
        self._accept(TokenKind.KEYWORD, "if")
        self._end_of_statement()
        return IfStmt(
            op=op_token.text,
            left=left,
            right=right,
            then_body=then_body,
            else_body=else_body,
            line=keyword.line,
        )

    def _statements_until(self, stops: tuple[str, ...]) -> list[Stmt]:
        out: list[Stmt] = []
        self._skip_newlines()
        while True:
            if self._check(TokenKind.EOF):
                token = self._current
                raise ParseError(
                    f"missing {' or '.join(repr(s) for s in stops)}",
                    token.line,
                    token.column,
                )
            if any(self._check(TokenKind.KEYWORD, stop) for stop in stops):
                return out
            out.append(self._statement())
            self._skip_newlines()

    def _read(self) -> Read:
        keyword = self._expect(TokenKind.KEYWORD, "read")
        self._expect(TokenKind.LPAREN)
        ident = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.RPAREN)
        self._end_of_statement()
        return Read(ident.text, line=keyword.line)

    def _for_loop(self) -> ForLoop:
        keyword = self._expect(TokenKind.KEYWORD, "for")
        var = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.ASSIGN)
        lower = self._expression()
        self._expect(TokenKind.KEYWORD, "to")
        upper = self._expression()
        step = 1
        if self._accept(TokenKind.KEYWORD, "step"):
            negative = self._accept(TokenKind.MINUS) is not None
            step_token = self._expect(TokenKind.INT)
            step = -step_token.int_value if negative else step_token.int_value
            if step == 0:
                raise ParseError(
                    "loop step must be non-zero", step_token.line, step_token.column
                )
        self._expect(TokenKind.KEYWORD, "do")
        self._end_of_statement()
        body = self._statements(until_end=True)
        self._expect(TokenKind.KEYWORD, "end")
        self._accept(TokenKind.KEYWORD, "for")
        self._end_of_statement()
        return ForLoop(var.text, lower, upper, step, body, line=keyword.line)

    def _assign(self) -> Assign:
        target = self._lvalue()
        equals = self._expect(TokenKind.ASSIGN)
        expr = self._expression()
        self._end_of_statement()
        return Assign(target, expr, line=equals.line)

    def _lvalue(self) -> Expr:
        ident = self._expect(TokenKind.IDENT)
        subs = self._subscripts()
        if subs:
            return Access(ident.text, subs)
        return Name(ident.text)

    def _subscripts(self) -> tuple[Expr, ...]:
        subs: list[Expr] = []
        while self._accept(TokenKind.LBRACKET):
            subs.append(self._expression())
            self._expect(TokenKind.RBRACKET)
        return tuple(subs)

    def _end_of_statement(self) -> None:
        if self._check(TokenKind.EOF):
            return
        if self._check(TokenKind.KEYWORD, "end"):
            return
        self._expect(TokenKind.NEWLINE)

    # -- expressions --------------------------------------------------------------

    def _expression(self) -> Expr:
        expr = self._term()
        while True:
            if self._accept(TokenKind.PLUS):
                expr = BinOp("+", expr, self._term())
            elif self._accept(TokenKind.MINUS):
                expr = BinOp("-", expr, self._term())
            else:
                return expr

    def _term(self) -> Expr:
        expr = self._unary()
        while self._accept(TokenKind.STAR):
            expr = BinOp("*", expr, self._unary())
        return expr

    def _unary(self) -> Expr:
        if self._accept(TokenKind.MINUS):
            return BinOp("-", Num(0), self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        token = self._current
        if self._accept(TokenKind.INT):
            return Num(int(token.text))
        if self._accept(TokenKind.LPAREN):
            expr = self._expression()
            self._expect(TokenKind.RPAREN)
            return expr
        if self._check(TokenKind.IDENT):
            ident = self._advance()
            subs = self._subscripts()
            if subs:
                return Access(ident.text, subs)
            return Name(ident.text)
        raise ParseError(
            f"expected an expression, found {token.text!r}",
            token.line,
            token.column,
        )
