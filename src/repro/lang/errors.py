"""Frontend error types."""

from __future__ import annotations

__all__ = ["LangError", "LexError", "ParseError", "LowerError"]


class LangError(Exception):
    """Base class for all frontend errors; carries a source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(LangError):
    """Unrecognized input character or malformed token."""


class ParseError(LangError):
    """Token stream does not match the grammar."""


class LowerError(LangError):
    """AST cannot be lowered to the affine IR (e.g. non-affine subscript)."""
