"""Mini-Fortran frontend: lexer, parser, AST, and IR lowering."""

from repro.lang.ast_nodes import (
    Access,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Num,
    Read,
    SourceProgram,
    Stmt,
)
from repro.lang.errors import LangError, LexError, LowerError, ParseError
from repro.lang.lexer import tokenize
from repro.lang.lower import LowerResult, lower, lower_expr
from repro.lang.parser import parse

__all__ = [
    "tokenize",
    "parse",
    "lower",
    "lower_expr",
    "LowerResult",
    "SourceProgram",
    "Stmt",
    "Assign",
    "Read",
    "ForLoop",
    "IfStmt",
    "Expr",
    "Num",
    "Name",
    "Access",
    "BinOp",
    "LangError",
    "LexError",
    "ParseError",
    "LowerError",
]
