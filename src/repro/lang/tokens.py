"""Token definitions for the mini-Fortran loop language."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "TokenKind", "KEYWORDS"]


class TokenKind:
    """Token categories.  Plain strings keep match sites readable."""

    INT = "int"
    IDENT = "ident"
    KEYWORD = "keyword"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    ASSIGN = "="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQEQ = "=="
    NE = "!="
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    NEWLINE = "newline"
    EOF = "eof"


KEYWORDS = frozenset(
    {"for", "to", "step", "do", "end", "read", "if", "then", "else"}
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    @property
    def int_value(self) -> int:
        if self.kind != TokenKind.INT:
            raise ValueError(f"not an integer token: {self}")
        return int(self.text)

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"
