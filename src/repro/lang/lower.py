"""Lowering the source AST to the affine loop-nest IR.

Runs after the prepass optimizer (:mod:`repro.opt`), which is
responsible for making subscripts and bounds affine wherever possible
(constant propagation, induction-variable and forward substitution,
loop normalization).  Lowering then:

* converts expressions to :class:`~repro.ir.affine.AffineExpr`;
* builds one IR :class:`~repro.ir.program.Statement` per array
  assignment, carrying its enclosing :class:`~repro.ir.loops.LoopNest`;
* treats any remaining free scalar as a *symbolic term* — but only if
  it is loop-invariant.  A scalar that is still assigned inside an
  enclosing loop after optimization cannot be summarized affinely; in
  strict mode that is a :class:`~repro.lang.errors.LowerError`, in
  permissive mode the statement is skipped and reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.affine import AffineExpr
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program, Statement
from repro.lang.ast_nodes import (
    Access,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Num,
    Read,
    SourceProgram,
    Stmt,
    walk_statements,
)
from repro.lang.errors import LowerError

__all__ = ["lower", "LowerResult", "lower_expr"]


@dataclass
class LowerResult:
    """IR program plus lowering diagnostics."""

    program: Program
    symbols: frozenset[str]
    skipped: list[str] = field(default_factory=list)


def lower_expr(expr: Expr, line: int = 0) -> AffineExpr:
    """Convert an expression tree to affine form, or raise LowerError."""
    if isinstance(expr, Num):
        return AffineExpr(expr.value)
    if isinstance(expr, Name):
        return AffineExpr.variable(expr.ident)
    if isinstance(expr, BinOp):
        left = lower_expr(expr.left, line)
        right = lower_expr(expr.right, line)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_constant:
                return right * left.constant
            if right.is_constant:
                return left * right.constant
            raise LowerError("non-affine product of two variables", line)
        raise LowerError(f"unknown operator {expr.op!r}", line)
    if isinstance(expr, Access):
        raise LowerError(
            f"array element {expr.array}[...] in an affine position", line
        )
    raise LowerError(f"cannot lower expression {expr!r}", line)


class _Lowerer:
    def __init__(self, source: SourceProgram, strict: bool):
        self.source = source
        self.strict = strict
        self.program = Program(source.name, source_lines=source.source_lines)
        self.skipped: list[str] = []
        self.read_symbols: set[str] = set()
        # Scalars still assigned anywhere after optimization are not
        # provably loop-invariant; subscripts using them are rejected.
        self.scalar_defs: set[str] = set()
        self._collect_scalar_defs()

    def _collect_scalar_defs(self) -> None:
        for stmt in walk_statements(self.source.body):
            if isinstance(stmt, Assign) and isinstance(stmt.target, Name):
                self.scalar_defs.add(stmt.target.ident)

    def run(self) -> LowerResult:
        self._lower_body(self.source.body, [])
        return LowerResult(
            program=self.program,
            symbols=frozenset(self.read_symbols),
            skipped=self.skipped,
        )

    def _lower_body(self, stmts: list[Stmt], loop_stack: list[Loop]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Read):
                self.read_symbols.add(stmt.ident)
            elif isinstance(stmt, ForLoop):
                self._lower_loop(stmt, loop_stack)
            elif isinstance(stmt, IfStmt):
                # Control flow is conservatively ignored for dependence
                # testing: references of both branches are treated as
                # potentially executed (may over-report, never misses).
                self._lower_body(stmt.then_body, loop_stack)
                self._lower_body(stmt.else_body, loop_stack)
            elif isinstance(stmt, Assign):
                self._lower_assign(stmt, loop_stack)
            else:
                raise LowerError(f"unexpected statement {stmt!r}")

    def _lower_loop(self, loop: ForLoop, loop_stack: list[Loop]) -> None:
        if loop.step != 1:
            self._problem(
                f"loop {loop.var!r} has unnormalized step {loop.step}",
                loop.line,
            )
            return
        lower = self._affine_or_none(loop.lower, loop.line, loop_stack)
        upper = self._affine_or_none(loop.upper, loop.line, loop_stack)
        if lower is None or upper is None:
            return
        ir_loop = Loop(loop.var, lower, upper)
        loop_stack.append(ir_loop)
        try:
            self._lower_body(loop.body, loop_stack)
        finally:
            loop_stack.pop()

    def _lower_assign(self, stmt: Assign, loop_stack: list[Loop]) -> None:
        if isinstance(stmt.target, Name):
            # A surviving scalar assignment: nothing to lower; uses of
            # this scalar in subscripts are validated at use sites.
            return
        assert isinstance(stmt.target, Access)
        nest = LoopNest(list(loop_stack))
        write = self._lower_ref(
            stmt.target, AccessKind.WRITE, stmt.line, loop_stack
        )
        if write is None:
            return
        reads: list[ArrayRef] = []
        ok = True
        for access in _collect_accesses(stmt.expr):
            ref = self._lower_ref(access, AccessKind.READ, stmt.line, loop_stack)
            if ref is None:
                ok = False
                break
            reads.append(ref)
        if not ok:
            return
        self.program.add(
            Statement(nest, write, tuple(reads), label=f"line{stmt.line}")
        )

    def _lower_ref(
        self,
        access: Access,
        kind: str,
        line: int,
        loop_stack: list[Loop],
    ) -> ArrayRef | None:
        subs: list[AffineExpr] = []
        for sub in access.subscripts:
            lowered = self._affine_or_none(sub, line, loop_stack)
            if lowered is None:
                return None
            subs.append(lowered)
        return ArrayRef(access.array, tuple(subs), kind)

    def _affine_or_none(
        self, expr: Expr, line: int, loop_stack: list[Loop]
    ) -> AffineExpr | None:
        try:
            lowered = lower_expr(expr, line)
        except LowerError as err:
            self._problem(str(err), line)
            return None
        loop_vars = {loop.var for loop in loop_stack}
        for name in lowered.variables():
            if name in loop_vars:
                continue
            if name in self.scalar_defs:
                # The scalar is assigned somewhere and was not turned
                # into a closed form by the optimizer: not provably
                # loop-invariant.
                self._problem(
                    f"subscript/bound uses scalar {name!r} that is "
                    "assigned in the program (not loop-invariant)",
                    line,
                )
                return None
        return lowered

    def _problem(self, message: str, line: int) -> None:
        if self.strict:
            raise LowerError(message, line)
        self.skipped.append(f"line {line}: {message}")


def _collect_accesses(expr: Expr) -> list[Access]:
    """Array reads appearing anywhere in an expression tree."""
    out: list[Access] = []

    def walk(node: Expr) -> None:
        if isinstance(node, Access):
            out.append(node)
            for sub in node.subscripts:
                walk(sub)
        elif isinstance(node, BinOp):
            walk(node.left)
            walk(node.right)

    walk(expr)
    return out


def lower(source: SourceProgram, strict: bool = True) -> LowerResult:
    """Lower a parsed (and preferably optimized) program to the IR."""
    return _Lowerer(source, strict).run()
