"""Hand-written lexer for the mini-Fortran loop language.

The language is line-oriented: newlines terminate statements (like
Fortran), ``#`` starts a comment to end of line.
"""

from __future__ import annotations

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenKind

__all__ = ["tokenize"]

_SINGLE_CHAR = {
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "=": TokenKind.ASSIGN,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
}

_TWO_CHAR = {
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQEQ,
    "!=": TokenKind.NE,
}


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list ending with EOF.

    Consecutive newlines collapse into one NEWLINE token; a trailing
    NEWLINE is guaranteed before EOF so the parser can treat lines
    uniformly.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def emit(kind: str, text: str) -> None:
        tokens.append(Token(kind, text, line, column))

    while i < n:
        ch = source[i]
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "\n":
            if tokens and tokens[-1].kind != TokenKind.NEWLINE:
                emit(TokenKind.NEWLINE, "\\n")
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        pair = source[i : i + 2]
        if pair in _TWO_CHAR:
            emit(_TWO_CHAR[pair], pair)
            i += 2
            column += 2
            continue
        if ch in _SINGLE_CHAR:
            emit(_SINGLE_CHAR[ch], ch)
            i += 1
            column += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            emit(TokenKind.INT, source[start:i])
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            emit(kind, text)
            column += i - start
            continue
        raise LexError(f"unexpected character {ch!r}", line, column)

    if tokens and tokens[-1].kind != TokenKind.NEWLINE:
        tokens.append(Token(TokenKind.NEWLINE, "\\n", line, column))
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
