"""AST for the mini-Fortran loop language.

Expressions are a small arithmetic tree (the optimizer and lowering
reduce them to affine form); statements are scalar/array assignments,
``read`` declarations (introducing symbolic unknowns), and ``for``
loops with optional constant step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr",
    "Num",
    "Name",
    "Access",
    "BinOp",
    "Stmt",
    "Assign",
    "Read",
    "ForLoop",
    "IfStmt",
    "SourceProgram",
    "walk_statements",
]


# -- expressions --------------------------------------------------------------


class Expr:
    """Base expression node."""

    __slots__ = ()


@dataclass(frozen=True)
class Num(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Name(Expr):
    """A scalar variable or loop index reference."""

    ident: str

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True)
class Access(Expr):
    """An array element read ``a[e1][e2]...`` (as an expression)."""

    array: str
    subscripts: tuple[Expr, ...]

    def __str__(self) -> str:
        return self.array + "".join(f"[{s}]" for s in self.subscripts)


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # "+", "-", "*"
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# -- statements ------------------------------------------------------------------


class Stmt:
    """Base statement node."""

    __slots__ = ()


@dataclass
class Assign(Stmt):
    """``target = expr`` — target is a scalar Name or array Access."""

    target: Expr  # Name or Access
    expr: Expr
    line: int = 0

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass
class Read(Stmt):
    """``read(x)`` — declares x as a runtime unknown (symbolic term)."""

    ident: str
    line: int = 0

    def __str__(self) -> str:
        return f"read({self.ident})"


@dataclass
class IfStmt(Stmt):
    """``if left OP right then ... [else ...] end if``.

    Conditions compare two arithmetic expressions with one of
    ``< <= > >= == !=``.  Dependence analysis treats both branches'
    references as potentially executed (control flow is conservatively
    ignored; see :mod:`repro.lang.lower`).
    """

    op: str  # "<", "<=", ">", ">=", "==", "!="
    left: Expr
    right: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)
    line: int = 0

    def __str__(self) -> str:
        out = [f"if {self.left} {self.op} {self.right} then"]
        out.extend(f"  {line}" for s in self.then_body for line in str(s).split("\n"))
        if self.else_body:
            out.append("else")
            out.extend(
                f"  {line}" for s in self.else_body for line in str(s).split("\n")
            )
        out.append("end if")
        return "\n".join(out)


@dataclass
class ForLoop(Stmt):
    """``for var = lower to upper [step k] do ... end for``."""

    var: str
    lower: Expr
    upper: Expr
    step: int
    body: list[Stmt] = field(default_factory=list)
    line: int = 0

    def __str__(self) -> str:
        step = f" step {self.step}" if self.step != 1 else ""
        header = f"for {self.var} = {self.lower} to {self.upper}{step} do"
        body = "\n".join(
            f"  {line}" for stmt in self.body for line in str(stmt).split("\n")
        )
        return f"{header}\n{body}\nend for"


@dataclass
class SourceProgram:
    """A parsed source file."""

    body: list[Stmt] = field(default_factory=list)
    name: str = "<source>"
    source_lines: int = 0

    def __str__(self) -> str:
        return "\n".join(str(stmt) for stmt in self.body)


def walk_statements(stmts: list[Stmt]):
    """Yield every statement, pre-order, at any nesting depth."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, ForLoop):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, IfStmt):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
