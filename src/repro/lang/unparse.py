"""Unparser: AST (or IR) back to mini-Fortran source text.

Supports round-trip testing (``parse(unparse(ast))`` is structurally
identical), the source-level workload generator, and human-readable
CLI/debug output.  The emitted text is canonical: one statement per
line, two-space indentation, ``end for`` closers, minimal parentheses
(the grammar's precedence is two-level, so only additive subtrees under
``*`` need them).
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.lang.ast_nodes import (
    Access,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IfStmt,
    Name,
    Num,
    Read,
    SourceProgram,
    Stmt,
)

__all__ = ["unparse", "unparse_expr", "program_to_source"]


def unparse_expr(expr: Expr) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Num):
        return str(expr.value)
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, Access):
        subs = "".join(f"[{unparse_expr(s)}]" for s in expr.subscripts)
        return f"{expr.array}{subs}"
    if isinstance(expr, BinOp):
        left = unparse_expr(expr.left)
        right = unparse_expr(expr.right)
        if expr.op == "*":
            left = _paren_if_additive(expr.left, left)
            right = _paren_if_additive(expr.right, right)
            return f"{left} * {right}"
        if expr.op == "-":
            right = _paren_if_additive(expr.right, right)
            return f"{left} - {right}"
        return f"{left} + {right}"
    raise TypeError(f"cannot unparse {expr!r}")


def _paren_if_additive(expr: Expr, text: str) -> str:
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        return f"({text})"
    return text


def _unparse_stmt(stmt: Stmt, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, Read):
        out.append(f"{pad}read({stmt.ident})")
    elif isinstance(stmt, Assign):
        out.append(
            f"{pad}{unparse_expr(stmt.target)} = {unparse_expr(stmt.expr)}"
        )
    elif isinstance(stmt, ForLoop):
        step = f" step {stmt.step}" if stmt.step != 1 else ""
        out.append(
            f"{pad}for {stmt.var} = {unparse_expr(stmt.lower)} "
            f"to {unparse_expr(stmt.upper)}{step} do"
        )
        for inner in stmt.body:
            _unparse_stmt(inner, indent + 1, out)
        out.append(f"{pad}end for")
    elif isinstance(stmt, IfStmt):
        out.append(
            f"{pad}if {unparse_expr(stmt.left)} {stmt.op} "
            f"{unparse_expr(stmt.right)} then"
        )
        for inner in stmt.then_body:
            _unparse_stmt(inner, indent + 1, out)
        if stmt.else_body:
            out.append(f"{pad}else")
            for inner in stmt.else_body:
                _unparse_stmt(inner, indent + 1, out)
        out.append(f"{pad}end if")
    else:
        raise TypeError(f"cannot unparse {stmt!r}")


def unparse(program: SourceProgram) -> str:
    """Render a whole program as canonical source text."""
    out: list[str] = []
    for stmt in program.body:
        _unparse_stmt(stmt, 0, out)
    return "\n".join(out) + "\n"


# -- IR -> source ------------------------------------------------------------


def _affine_to_text(expr: AffineExpr) -> str:
    parts: list[str] = []
    for name in sorted(expr.terms):
        coeff = expr.coeff(name)
        term = name if abs(coeff) == 1 else f"{abs(coeff)} * {name}"
        if not parts:
            parts.append(term if coeff > 0 else f"0 - {term}")
        else:
            parts.append(f"+ {term}" if coeff > 0 else f"- {term}")
    if expr.constant or not parts:
        if not parts:
            parts.append(str(expr.constant))
        elif expr.constant > 0:
            parts.append(f"+ {expr.constant}")
        else:
            parts.append(f"- {-expr.constant}")
    return " ".join(parts)


def program_to_source(program: Program) -> str:
    """Render an IR program back to source (one loop nest per statement).

    Statements sharing a nest are *not* re-fused; the output is a
    semantically equivalent program in which every assignment carries
    its own copy of the enclosing loops — sufficient for dependence
    analysis round-trips, which work per statement pair.
    """
    out: list[str] = []
    symbols: set[str] = set()
    for stmt in program.statements:
        symbols |= stmt.nest.symbols()
        for ref in stmt.refs():
            symbols |= ref.variables() - set(stmt.nest.variables)
    for symbol in sorted(symbols):
        out.append(f"read({symbol})")
    for stmt in program.statements:
        _emit_nest(stmt, out)
    return "\n".join(out) + "\n"


def _emit_nest(stmt, out: list[str]) -> None:
    nest: LoopNest = stmt.nest
    for depth, loop in enumerate(nest):
        pad = "  " * depth
        out.append(
            f"{pad}for {loop.var} = {_affine_to_text(loop.lower)} "
            f"to {_affine_to_text(loop.upper)} do"
        )
    pad = "  " * nest.depth
    write = stmt.write
    target = (
        f"{write.array}"
        + "".join(f"[{_affine_to_text(s)}]" for s in write.subscripts)
        if write is not None
        else "scratch"
    )
    read_text = " + ".join(
        ref.array + "".join(f"[{_affine_to_text(s)}]" for s in ref.subscripts)
        for ref in stmt.reads
    ) or "0"
    out.append(f"{pad}{target} = {read_text}")
    for depth in reversed(range(nest.depth)):
        out.append("  " * depth + "end for")
