"""Deterministic network chaos: a seeded TCP fault proxy.

:mod:`repro.robust.chaos` proves the *process* layer survives crashes,
hangs and torn disk writes; this module does the same for the *network*
layer.  A :class:`ChaosProxy` sits between a client and a serving
endpoint (a worker daemon or a cluster router) and injects faults into
the byte stream — and, exactly like :class:`~repro.robust.chaos
.FaultPlan`, every fault is a pure function of the seed: whether a
given connection or frame suffers is decided by a SHA-256 roll over
``(seed, site, conn, frame)``, so the same :class:`NetFaultPlan`
replays the same fault schedule in every run, on every platform, and
tests can precompute it with :meth:`NetFaultPlan.peek`.

Fault sites and kinds:

* ``connect`` site (key = connection ordinal): ``delay`` the accept,
  ``drop`` the connection (polite EOF before any byte flows), ``reset``
  it (abortive close), or ``partition`` — refuse this and the next
  ``partition_conns - 1`` connection attempts, as if a switch died;
* ``request`` / ``response`` sites (key = connection ordinal + frame
  index within that direction): ``delay`` a frame, ``drop`` it
  (swallowed; the peer times out), ``reset`` the connection mid-stream,
  or tear the frame (``torn``): forward roughly half its bytes without
  the terminating newline, then cut the connection — the classic
  partial-line failure the resilient client must turn into a typed
  :class:`~repro.serve.client.TransportError`.

Frame indices count *complete* protocol lines per direction, so a
request and its response roll independently and pipelined batches get
one roll per frame.  Connection ordinals count accepted connections in
arrival order: with one client connecting sequentially (the chaos-test
shape) the ordinal assignment — and therefore the entire fault
schedule — is fully deterministic.

Run it in-process (``proxy = ChaosProxy(plan, upstream...); thread``)
or from the CLI::

    repro chaosproxy 127.0.0.1:0 127.0.0.1:4733 --seed 7 --drop-rate 0.05

Every injection lands in the proxy's :class:`~repro.obs.metrics
.MetricsRegistry` under ``netchaos.*`` and in an in-order injection
log, mirroring :func:`repro.robust.chaos.injection_log`.
"""

from __future__ import annotations

import asyncio
import json
import hashlib
import threading
from collections import Counter
from dataclasses import dataclass, fields

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "NetFaultPlan",
    "ChaosProxy",
    "DELAY",
    "DROP",
    "RESET",
    "TORN",
    "PARTITION",
    "NET_FAULT_KINDS",
    "CONNECT_KINDS",
    "FRAME_KINDS",
    "SITE_CONNECT",
    "SITE_REQUEST",
    "SITE_RESPONSE",
]

DELAY = "delay"
DROP = "drop"
RESET = "reset"
TORN = "torn"
PARTITION = "partition"
NET_FAULT_KINDS = (DELAY, DROP, RESET, TORN, PARTITION)

SITE_CONNECT = "connect"
SITE_REQUEST = "request"
SITE_RESPONSE = "response"

#: Which kinds can fire where: a frame cannot ``partition`` (that is a
#: connect-time event) and a connection attempt cannot be ``torn``
#: (there is no frame yet).  Order matters: it fixes the cumulative
#: thresholds the SHA-256 draw walks, exactly like ``FaultPlan.peek``.
CONNECT_KINDS = (DELAY, DROP, RESET, PARTITION)
FRAME_KINDS = (DELAY, DROP, RESET, TORN)


@dataclass(frozen=True)
class NetFaultPlan:
    """A seeded, rate-parameterized network-fault schedule.

    ``*_rate`` fields are probabilities in ``[0, 1]`` applied per site;
    ``delay_s`` is how long an injected delay stalls a connection or
    frame; ``partition_conns`` is how many consecutive connection
    attempts one injected partition refuses.
    """

    seed: int = 0
    delay_rate: float = 0.0
    drop_rate: float = 0.0
    reset_rate: float = 0.0
    torn_rate: float = 0.0
    partition_rate: float = 0.0
    delay_s: float = 0.05
    partition_conns: int = 3

    def __post_init__(self) -> None:
        for name in (
            "delay_rate",
            "drop_rate",
            "reset_rate",
            "torn_rate",
            "partition_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value!r}")
        if self.partition_conns < 1:
            raise ValueError(
                f"partition_conns must be >= 1, got {self.partition_conns!r}"
            )

    def to_json(self) -> str:
        return json.dumps(
            {f.name: getattr(self, f.name) for f in fields(self)},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "NetFaultPlan":
        return cls(**json.loads(text))

    # -- the deterministic roll --------------------------------------------

    def rate(self, kind: str) -> float:
        return {
            DELAY: self.delay_rate,
            DROP: self.drop_rate,
            RESET: self.reset_rate,
            TORN: self.torn_rate,
            PARTITION: self.partition_rate,
        }[kind]

    def uniform(self, site: str, key: str) -> float:
        """A uniform [0, 1) draw, pure in ``(seed, site, key)``.

        SHA-256 rather than ``hash()``: stable across processes and
        interpreter runs regardless of ``PYTHONHASHSEED``.
        """
        payload = f"{self.seed}\x00{site}\x00{key}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def peek(self, site: str, conn: int, frame: int | None = None) -> str | None:
        """Which fault (if any) fires at this site — without injecting.

        ``site`` is ``"connect"`` (``frame`` must be None) or
        ``"request"``/``"response"`` (``frame`` is the 0-based index of
        the complete protocol line in that direction).  This is the
        same decision the live proxy makes, minus the side effects, so
        tests can precompute exact fault schedules.
        """
        if site == SITE_CONNECT:
            kinds = CONNECT_KINDS
            key = str(conn)
        elif site in (SITE_REQUEST, SITE_RESPONSE):
            kinds = FRAME_KINDS
            key = f"{conn}:{frame}"
        else:
            raise ValueError(f"unknown fault site {site!r}")
        draw = self.uniform(site, key)
        threshold = 0.0
        for kind in kinds:
            threshold += self.rate(kind)
            if draw < threshold:
                return kind
        return None


class ChaosProxy:
    """A seeded fault-injecting TCP proxy in front of one upstream.

    Lifecycle mirrors :class:`~repro.serve.server.DependenceServer`:
    construct, call :meth:`run` on a thread (or let the CLI own it),
    wait on :attr:`started`, read :attr:`bound_port`, and stop with
    :meth:`request_shutdown`.  Frames flow through ``readline`` with
    the protocol's line limit, so fault rolls line up one-to-one with
    protocol frames.
    """

    def __init__(
        self,
        plan: NetFaultPlan,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
        announce: bool = False,
    ):
        self.plan = plan
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self.port = port
        self.announce = announce
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started = threading.Event()
        self.bound_host: str | None = None
        self.bound_port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested = threading.Event()
        self._conn_counter = 0  # accepted connections, arrival order
        self._partition_until = 0  # conn ordinals below this are refused
        self._writers: set[asyncio.StreamWriter] = set()
        self._log: list[tuple[str, str, str]] = []  # (site, key, kind)

    # -- audit surface -----------------------------------------------------

    def injection_log(self) -> list[tuple[str, str, str]]:
        """All ``(site, key, kind)`` injections, in injection order."""
        return list(self._log)

    def injected_counts(self) -> Counter:
        return Counter(kind for _site, _key, kind in self._log)

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Proxy until shut down; returns the process exit code (0)."""
        asyncio.run(self._main())
        return 0

    def request_shutdown(self) -> None:
        """Stop the proxy; safe to call from any thread."""
        self._shutdown_requested.set()
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(lambda: None)  # wake the waiter
            except RuntimeError:
                pass  # loop already closed

    async def _main(self) -> None:
        from repro.serve import protocol

        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._on_connection,
            host=self.host,
            port=self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        sockname = server.sockets[0].getsockname()
        self.bound_host, self.bound_port = sockname[0], sockname[1]
        if self.announce:
            print(
                json.dumps(
                    {
                        "proxy": {
                            "host": self.bound_host,
                            "port": self.bound_port,
                            "upstream": f"{self.upstream_host}:{self.upstream_port}",
                            "seed": self.plan.seed,
                        }
                    },
                    sort_keys=True,
                ),
                flush=True,
            )
        self.started.set()
        try:
            while not self._shutdown_requested.is_set():
                await asyncio.sleep(0.05)
        finally:
            server.close()
            await server.wait_closed()
            for writer in list(self._writers):
                writer.transport.abort()
            await asyncio.sleep(0)

    # -- the fault pipeline ------------------------------------------------

    def _record(self, site: str, key: str, kind: str) -> None:
        self._log.append((site, key, kind))
        self.registry.inc("netchaos.injected")
        self.registry.inc_family("netchaos.injected_by_kind", kind)
        self.registry.inc_family("netchaos.injected_by_site", site)

    async def _on_connection(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        from repro.serve import protocol

        conn = self._conn_counter
        self._conn_counter += 1
        self.registry.inc("netchaos.connections")
        self._writers.add(client_writer)
        try:
            if conn < self._partition_until:
                # Inside an injected partition window: refuse outright.
                self._record(SITE_CONNECT, str(conn), PARTITION)
                client_writer.transport.abort()
                return
            kind = self.plan.peek(SITE_CONNECT, conn)
            if kind is not None:
                self._record(SITE_CONNECT, str(conn), kind)
            if kind == DELAY:
                await asyncio.sleep(self.plan.delay_s)
            elif kind == DROP:
                client_writer.close()
                return
            elif kind == RESET:
                client_writer.transport.abort()
                return
            elif kind == PARTITION:
                self._partition_until = (
                    self._conn_counter + self.plan.partition_conns - 1
                )
                client_writer.transport.abort()
                return
            try:
                upstream_reader, upstream_writer = await asyncio.open_connection(
                    self.upstream_host,
                    self.upstream_port,
                    limit=protocol.MAX_LINE_BYTES,
                )
            except OSError:
                self.registry.inc("netchaos.upstream_unreachable")
                client_writer.transport.abort()
                return
            self._writers.add(upstream_writer)
            try:
                await asyncio.gather(
                    self._pump(
                        client_reader, upstream_writer, SITE_REQUEST, conn
                    ),
                    self._pump(
                        upstream_reader, client_writer, SITE_RESPONSE, conn
                    ),
                )
            finally:
                self._writers.discard(upstream_writer)
                upstream_writer.close()
        finally:
            self._writers.discard(client_writer)
            client_writer.close()

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        site: str,
        conn: int,
    ) -> None:
        """Forward one direction frame-by-frame, rolling per frame."""
        frame = 0
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, OSError):
                break
            if not line:
                break
            if not line.endswith(b"\n"):
                # The peer itself tore the final frame (e.g. a kill -9
                # upstream): pass the tear through unmodified.
                try:
                    writer.write(line)
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                break
            kind = self.plan.peek(site, conn, frame)
            frame += 1
            if kind is not None:
                self._record(site, f"{conn}:{frame - 1}", kind)
            if kind == DROP:
                continue  # swallowed: the peer's read times out
            if kind == RESET:
                writer.transport.abort()
                break
            if kind == TORN:
                # Forward about half the frame with no newline, then cut.
                torn = line[: max(1, (len(line) - 1) // 2)]
                try:
                    writer.write(torn)
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                writer.transport.abort()
                break
            if kind == DELAY:
                await asyncio.sleep(self.plan.delay_s)
            try:
                writer.write(line)
                await writer.drain()
            except (ConnectionError, OSError):
                break
        # EOF (or an injected cut): propagate shutdown to the peer so
        # neither side waits forever on a half-open stream.
        try:
            if writer.can_write_eof():
                writer.write_eof()
        except (ConnectionError, OSError, RuntimeError):
            pass
