"""Resource budgets: typed limits that degrade, never hang.

Dependence testing is NP-complete in general; the paper's bet is that
real queries are cheap.  This module is the insurance policy for the
queries that are not: a :class:`ResourceBudget` bounds every dimension
along which the cascade can blow up —

* **wall clock** (``deadline_s``) — the whole query, including
  direction refinement;
* **Fourier-Motzkin branch nodes** (``fm_branch_nodes``) — the
  branch-and-bound tree (the only limit the pre-robustness analyzer
  had, as a hard-coded constructor argument);
* **live constraints** (``max_live_constraints``) — FM elimination can
  square the constraint count per eliminated variable;
* **coefficient bit length** (``max_coeff_bits``) — cross-multiplied
  combinations grow coefficients multiplicatively; exact bignum
  arithmetic never overflows but can get arbitrarily slow;
* **elimination depth** (``max_elim_depth``) — branch-and-bound
  recursion depth.

A blown budget raises :class:`BudgetExceeded` carrying a
machine-readable reason code; the analyzer catches it at the query
boundary and answers with the *conservative* flagged verdict
("dependent, any direction") instead of hanging or dying — the same
safe-approximation discipline the serving layer applies to blown
response deadlines.  Checks are explicit calls at the hot loops' heads
(a :class:`BudgetScope` per query), so an analyzer with no budget pays
a single ``None`` test per potential check site.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "BudgetExceeded",
    "ResourceBudget",
    "BudgetScope",
    "REASON_WALL_CLOCK",
    "REASON_FM_BRANCH_NODES",
    "REASON_LIVE_CONSTRAINTS",
    "REASON_COEFF_BITS",
    "REASON_ELIM_DEPTH",
    "REASON_QUARANTINE",
    "REASON_DEADLINE",
    "DEGRADED_BUDGET",
    "ALL_REASONS",
    "NULL_SCOPE",
]

# Machine-readable reason codes, shared by the analyzer's degradation
# path, the batch watchdog's quarantine and serve's response deadline
# (all surface as ``robust.degraded.<reason>`` metric labels).
REASON_WALL_CLOCK = "wall_clock"
REASON_FM_BRANCH_NODES = "fm_branch_nodes"
REASON_LIVE_CONSTRAINTS = "live_constraints"
REASON_COEFF_BITS = "coeff_bits"
REASON_ELIM_DEPTH = "elim_depth"
REASON_QUARANTINE = "quarantine"  # the batch watchdog isolated the case
REASON_DEADLINE = "deadline"  # serve's response deadline fired

ALL_REASONS = frozenset(
    {
        REASON_WALL_CLOCK,
        REASON_FM_BRANCH_NODES,
        REASON_LIVE_CONSTRAINTS,
        REASON_COEFF_BITS,
        REASON_ELIM_DEPTH,
        REASON_QUARANTINE,
        REASON_DEADLINE,
    }
)

# Pseudo test name for budget-degraded verdicts (like DECIDED_CONSTANT
# for the constant screen): ``decided_by`` of a conservative answer.
DEGRADED_BUDGET = "budget"


class BudgetExceeded(Exception):
    """A resource budget was blown; ``reason`` names which one."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class ResourceBudget:
    """Immutable per-query resource limits (``None`` = unlimited).

    Plain ints/floats only, so a budget pickles across the batch
    engine's worker-process boundary unchanged.
    """

    deadline_s: float | None = None
    fm_branch_nodes: int | None = None
    max_live_constraints: int | None = None
    max_coeff_bits: int | None = None
    max_elim_depth: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "deadline_s",
            "fm_branch_nodes",
            "max_live_constraints",
            "max_coeff_bits",
            "max_elim_depth",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_s is None
            and self.fm_branch_nodes is None
            and self.max_live_constraints is None
            and self.max_coeff_bits is None
            and self.max_elim_depth is None
        )

    def open(self) -> "BudgetScope":
        """Start the clock: one scope governs one query."""
        return BudgetScope(self)

    @classmethod
    def strict(cls, deadline_s: float = 1.0) -> "ResourceBudget":
        """The quarantine budget: tight enough that nothing lingers."""
        return cls(
            deadline_s=deadline_s,
            fm_branch_nodes=32,
            max_live_constraints=512,
            max_coeff_bits=256,
            max_elim_depth=8,
        )


class BudgetScope:
    """Mutable per-query state: the running clock and FM node counter.

    Check methods raise :class:`BudgetExceeded`; every check is a no-op
    (single attribute test) for limits the budget leaves unset.
    """

    __slots__ = ("budget", "_deadline_ns", "_fm_nodes_left")

    def __init__(self, budget: ResourceBudget):
        self.budget = budget
        self._deadline_ns = (
            time.monotonic_ns() + int(budget.deadline_s * 1e9)
            if budget.deadline_s is not None
            else None
        )
        self._fm_nodes_left = budget.fm_branch_nodes

    # -- wall clock --------------------------------------------------------

    def tick(self) -> None:
        """Deadline check; call at the head of every potentially long loop."""
        if (
            self._deadline_ns is not None
            and time.monotonic_ns() > self._deadline_ns
        ):
            raise BudgetExceeded(
                REASON_WALL_CLOCK,
                f"query exceeded its {self.budget.deadline_s}s deadline",
            )

    # -- Fourier-Motzkin branch-and-bound ----------------------------------

    @property
    def governs_fm_nodes(self) -> bool:
        return self._fm_nodes_left is not None

    def charge_fm_node(self) -> None:
        if self._fm_nodes_left is None:
            return
        if self._fm_nodes_left <= 0:
            raise BudgetExceeded(
                REASON_FM_BRANCH_NODES,
                f"branch-and-bound exceeded {self.budget.fm_branch_nodes} nodes",
            )
        self._fm_nodes_left -= 1

    # -- structural growth -------------------------------------------------

    def check_constraints(self, count: int) -> None:
        limit = self.budget.max_live_constraints
        if limit is not None and count > limit:
            raise BudgetExceeded(
                REASON_LIVE_CONSTRAINTS,
                f"{count} live constraints exceed the limit of {limit}",
            )

    def check_coeff(self, value: int) -> None:
        limit = self.budget.max_coeff_bits
        if limit is not None and value.bit_length() > limit:
            raise BudgetExceeded(
                REASON_COEFF_BITS,
                f"coefficient of {value.bit_length()} bits exceeds "
                f"the {limit}-bit limit",
            )

    def check_depth(self, depth: int) -> None:
        limit = self.budget.max_elim_depth
        if limit is not None and depth > limit:
            raise BudgetExceeded(
                REASON_ELIM_DEPTH,
                f"elimination depth {depth} exceeds the limit of {limit}",
            )


#: The no-limits scope threaded through un-budgeted queries, so check
#: sites never need a ``scope is None`` test.  Shared and stateless:
#: every check on it short-circuits on an unset limit.
NULL_SCOPE = BudgetScope(ResourceBudget())
