"""repro.robust — resource governance and crash safety.

The paper's cascade is *fast in practice*; this package is what makes
it *safe in production*: typed per-query resource budgets that degrade
pathological queries to flagged conservative verdicts
(:mod:`~repro.robust.budget`), a shard watchdog with poison-case
quarantine (:mod:`~repro.robust.watchdog`), crash-safe batch
checkpoint/resume (:mod:`~repro.robust.checkpoint`) and a
deterministic chaos-injection harness that proves all of the above
under fire (:mod:`~repro.robust.chaos`), and its network twin — a
seeded fault-injecting TCP proxy for the serving stack
(:mod:`~repro.robust.netchaos`).

Only the budget and chaos surfaces are re-exported here: the deptests
cascade imports budgets, so this ``__init__`` must stay free of any
import that reaches back into ``repro.core``.  Import the watchdog and
checkpoint modules directly.
"""

from repro.robust.budget import (
    ALL_REASONS,
    DEGRADED_BUDGET,
    NULL_SCOPE,
    REASON_COEFF_BITS,
    REASON_DEADLINE,
    REASON_ELIM_DEPTH,
    REASON_FM_BRANCH_NODES,
    REASON_LIVE_CONSTRAINTS,
    REASON_QUARANTINE,
    REASON_WALL_CLOCK,
    BudgetExceeded,
    BudgetScope,
    ResourceBudget,
)
from repro.robust.chaos import FaultPlan
from repro.robust.netchaos import ChaosProxy, NetFaultPlan

__all__ = [
    "BudgetExceeded",
    "BudgetScope",
    "ResourceBudget",
    "FaultPlan",
    "NetFaultPlan",
    "ChaosProxy",
    "NULL_SCOPE",
    "ALL_REASONS",
    "DEGRADED_BUDGET",
    "REASON_WALL_CLOCK",
    "REASON_FM_BRANCH_NODES",
    "REASON_LIVE_CONSTRAINTS",
    "REASON_COEFF_BITS",
    "REASON_ELIM_DEPTH",
    "REASON_QUARANTINE",
    "REASON_DEADLINE",
]
