"""Deterministic chaos: a seeded fault plan for crash-safety testing.

Robustness claims ("a dead worker never sinks the batch", "a corrupt
cache never poisons an answer") are only as good as the failures they
were tested against.  This module injects those failures *on purpose*
and — crucially — *deterministically*: a :class:`FaultPlan` is a seed
plus per-fault-kind rates, and whether a given site fires is a pure
function of ``(seed, site, key)`` via a SHA-256 roll.  The same plan
replays the same faults in every run, in every process, on every
platform, so chaos tests can compute exactly which faults they expect
(:meth:`FaultPlan.peek`) and assert that every one was both injected
and survived.

Fault sites live in the production code but cost nothing when chaos is
off: each site calls a module function that returns immediately unless
the ``REPRO_CHAOS_PLAN`` environment variable carries a plan.  The
environment variable is the distribution channel — worker processes
inherit it across ``fork``/``spawn``, so a plan installed in the batch
driver reaches every shard worker with no plumbing through payloads.

Supported fault kinds:

* ``crash`` — the worker process dies instantly (``os._exit``), as if
  OOM-killed;
* ``hang`` — the worker sleeps past any reasonable shard timeout, as
  if deadlocked;
* ``corrupt`` — bytes written to disk are truncated and bit-flipped,
  as if torn by power loss;
* ``write_fail`` — the write raises :class:`OSError`, as if the disk
  were full.

Every injection is recorded in a per-process log so tests can audit
the plan against reality (:func:`injection_log`, :func:`injected_counts`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import Counter
from dataclasses import dataclass, fields

__all__ = [
    "FaultPlan",
    "ENV_VAR",
    "CRASH",
    "HANG",
    "CORRUPT",
    "WRITE_FAIL",
    "FAULT_KINDS",
    "CRASH_EXIT_CODE",
    "active_plan",
    "chaos_roll",
    "worker_fault",
    "write_fault",
    "corrupt_bytes",
    "injection_log",
    "injected_counts",
    "reset_log",
]

ENV_VAR = "REPRO_CHAOS_PLAN"

CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"
WRITE_FAIL = "write_fail"
FAULT_KINDS = (CRASH, HANG, CORRUPT, WRITE_FAIL)

#: Exit status of a chaos-crashed worker.  Distinctive on purpose: a
#: watchdog test that sees 113 knows the death was injected, not real.
CRASH_EXIT_CODE = 113


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, rate-parameterized fault schedule.

    ``rate_*`` fields are probabilities in ``[0, 1]`` applied per fault
    site; ``hang_s`` is how long an injected hang sleeps (pick it
    comfortably above the shard timeout under test).
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    write_fail_rate: float = 0.0
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "corrupt_rate", "write_fail_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value!r}")

    # -- serialization (the env-var wire format) ---------------------------

    def to_json(self) -> str:
        return json.dumps(
            {f.name: getattr(self, f.name) for f in fields(self)},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls(**json.loads(text))

    def install(self) -> None:
        """Publish the plan to this process and all future children."""
        os.environ[ENV_VAR] = self.to_json()
        _invalidate_cache()

    @staticmethod
    def uninstall() -> None:
        os.environ.pop(ENV_VAR, None)
        _invalidate_cache()

    # -- the deterministic roll --------------------------------------------

    def rate(self, kind: str) -> float:
        return {
            CRASH: self.crash_rate,
            HANG: self.hang_rate,
            CORRUPT: self.corrupt_rate,
            WRITE_FAIL: self.write_fail_rate,
        }[kind]

    def uniform(self, site: str, key: str) -> float:
        """A uniform [0, 1) draw, pure in ``(seed, site, key)``.

        SHA-256 rather than ``hash()``: stable across processes and
        interpreter runs regardless of ``PYTHONHASHSEED``.
        """
        payload = f"{self.seed}\x00{site}\x00{key}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def peek(self, site: str, key: str, kinds: tuple[str, ...]) -> str | None:
        """Which fault (if any) fires at this site — without injecting.

        Tests use this to precompute the exact fault schedule a run
        will experience: it is the same decision :func:`chaos_roll`
        makes, minus the side effects.
        """
        draw = self.uniform(site, key)
        threshold = 0.0
        for kind in kinds:
            threshold += self.rate(kind)
            if draw < threshold:
                return kind
        return None


# -- per-process plan cache and injection log ------------------------------

_cached_raw: str | None = None
_cached_plan: FaultPlan | None = None
_log: list[tuple[str, str, str]] = []


def _invalidate_cache() -> None:
    global _cached_raw, _cached_plan
    _cached_raw = None
    _cached_plan = None


def active_plan() -> FaultPlan | None:
    """The installed plan, or None when chaos is off (the fast path)."""
    global _cached_raw, _cached_plan
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return None
    if raw != _cached_raw:
        _cached_raw = raw
        _cached_plan = FaultPlan.from_json(raw)
    return _cached_plan


def injection_log() -> list[tuple[str, str, str]]:
    """All ``(site, key, kind)`` injections this process has performed."""
    return list(_log)


def injected_counts() -> Counter:
    """Injection totals by fault kind (this process only)."""
    return Counter(kind for _site, _key, kind in _log)


def reset_log() -> None:
    _log.clear()


def chaos_roll(site: str, key: str, kinds: tuple[str, ...]) -> str | None:
    """Decide and record which fault (if any) fires at this site."""
    plan = active_plan()
    if plan is None:
        return None
    kind = plan.peek(site, key, kinds)
    if kind is not None:
        _log.append((site, key, kind))
    return kind


# -- fault actuators (called from production fault sites) ------------------


def worker_fault(site: str, key: str) -> None:
    """Worker-process fault site: may crash or hang the calling process.

    Placed at shard-worker entry.  A crash is ``os._exit`` — no
    cleanup, no exception propagation, exactly like a SIGKILL from the
    OOM killer.  A hang sleeps ``hang_s`` and then *continues*, so a
    run with no watchdog still terminates (slowly) rather than
    deadlocking the test suite.
    """
    kind = chaos_roll(site, key, (CRASH, HANG))
    if kind == CRASH:
        os._exit(CRASH_EXIT_CODE)
    if kind == HANG:
        time.sleep(active_plan().hang_s)


def corrupt_bytes(data: bytes, site: str, key: str) -> bytes:
    """Deterministically mangle a payload: truncate and flip a byte."""
    plan = active_plan()
    assert plan is not None
    keep = max(1, len(data) // 2)
    mangled = bytearray(data[:keep])
    if mangled:
        index = int(plan.uniform(site, key + "\x00byte") * len(mangled))
        mangled[index] ^= 0xFF
    return bytes(mangled)


def write_fault(data: bytes, site: str, key: str) -> bytes:
    """Disk-write fault site: may raise OSError or corrupt the payload.

    Called by :func:`repro.core.persist.atomic_write_text` with the
    bytes about to hit disk; returns them (possibly mangled).
    """
    kind = chaos_roll(site, key, (WRITE_FAIL, CORRUPT))
    if kind == WRITE_FAIL:
        raise OSError(f"chaos: injected write failure at {site} ({key})")
    if kind == CORRUPT:
        return corrupt_bytes(data, site, key)
    return data
