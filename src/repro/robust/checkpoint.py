"""Crash-safe batch checkpoints: resume = replay completed shards.

A long batch run should survive the machine it runs on.  The engine's
supervised path records every completed shard's output — answers,
metrics registry, memo-table dump, quarantine record — into one JSON
checkpoint file, rewritten atomically (mkstemp + fsync + replace, the
``core/persist`` convention) after each shard.  ``kill -9`` the driver
at any point, rerun with ``--resume``, and the finished shards load
from disk while only the unfinished ones re-run; because the engine
merges shard outputs in payload order regardless of where they came
from, the resumed run's results and counter snapshot are bit-identical
to an uninterrupted run.

The file is self-validating: a ``fingerprint`` (SHA-256 over the
canonicalized batch options and every deduped problem's key vector)
ties a checkpoint to exactly one batch.  A resume against a different
input set, different options, a truncated file or chaos-corrupted
bytes degrades to a cold start with a warning — never a wrong answer.

Format (version 1)::

    {
      "format": "repro-batch-checkpoint",
      "version": 1,
      "fingerprint": "<sha256 hex>",
      "shards": {
        "<payload index>": {
          "outputs": [
            {"answers": [[rep_index, result, directions|null], ...],
             "registry": <MetricsRegistry.to_dict()>,
             "memo": "<persist.dumps blob>"},
            ...
          ],
          "quarantine": [<QuarantinedCase.to_dict()>, ...]
        }
      }
    }

Version bumps are strict: any mismatch is a cold start.  Trace sinks
are not checkpointable (event streams are not serialized here), which
the engine enforces up front.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import warnings
from pathlib import Path
from typing import Any

from repro.core.result import DependenceResult, DirectionResult
from repro.core.stats import AnalyzerStats
from repro.obs.metrics import MetricsRegistry
from repro.robust.watchdog import QuarantinedCase

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "BatchCheckpoint",
    "fingerprint_batch",
    "encode_result",
    "decode_result",
    "encode_directions",
    "decode_directions",
]

CHECKPOINT_FORMAT = "repro-batch-checkpoint"
CHECKPOINT_VERSION = 1

_LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError, AttributeError)


def _jsonable(value: Any) -> Any:
    """Canonicalize arbitrary option/key structures for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__} | {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def fingerprint_batch(keys: list[tuple], opts: dict) -> str:
    """SHA-256 identity of one batch: its unique problems + options."""
    payload = json.dumps(
        {"keys": _jsonable(keys), "opts": _jsonable(opts)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# -- result serde ----------------------------------------------------------


def encode_result(result: DependenceResult) -> dict:
    return {
        "dependent": result.dependent,
        "decided_by": result.decided_by,
        "exact": result.exact,
        "witness": list(result.witness) if result.witness is not None else None,
        "from_memo": result.from_memo,
        "distance": list(result.distance) if result.distance is not None else None,
        "degraded_reason": result.degraded_reason,
    }


def decode_result(payload: dict) -> DependenceResult:
    witness = payload["witness"]
    distance = payload["distance"]
    return DependenceResult(
        dependent=payload["dependent"],
        decided_by=payload["decided_by"],
        exact=payload["exact"],
        witness=tuple(witness) if witness is not None else None,
        from_memo=payload["from_memo"],
        distance=tuple(distance) if distance is not None else None,
        degraded_reason=payload["degraded_reason"],
    )


def encode_directions(directions: DirectionResult | None) -> dict | None:
    if directions is None:
        return None
    return {
        "vectors": sorted(list(vector) for vector in directions.vectors),
        "n_common": directions.n_common,
        "exact": directions.exact,
        "from_memo": directions.from_memo,
        "tests_performed": directions.tests_performed,
        "degraded_reason": directions.degraded_reason,
    }


def decode_directions(payload: dict | None) -> DirectionResult | None:
    if payload is None:
        return None
    return DirectionResult(
        vectors=frozenset(tuple(vector) for vector in payload["vectors"]),
        n_common=payload["n_common"],
        exact=payload["exact"],
        from_memo=payload["from_memo"],
        tests_performed=payload["tests_performed"],
        degraded_reason=payload["degraded_reason"],
    )


def _encode_output(output: tuple) -> dict:
    answers, stats, memo_blob, events = output
    if events:
        raise ValueError("trace events are not checkpointable")
    return {
        "answers": [
            [rep_index, encode_result(result), encode_directions(directions)]
            for rep_index, result, directions in answers
        ],
        "registry": stats.registry.to_dict(),
        "memo": memo_blob,
    }


def _decode_output(payload: dict) -> tuple:
    answers = [
        (rep_index, decode_result(result), decode_directions(directions))
        for rep_index, result, directions in payload["answers"]
    ]
    stats = AnalyzerStats(MetricsRegistry.from_dict(payload["registry"]))
    return answers, stats, payload["memo"], []


class BatchCheckpoint:
    """One batch run's checkpoint file, rewritten after every shard.

    The engine drives it through three calls: :meth:`load` (resume),
    :meth:`record` (after each completed payload, serialized by the
    watchdog) and nothing else — the file on disk is always a complete,
    valid snapshot or the previous one (atomic replace).
    """

    def __init__(self, path: str | Path, fingerprint: str):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._shards: dict[int, dict] = {}

    def load(self, resume: bool) -> dict[int, tuple[list, list[QuarantinedCase]]]:
        """Completed payloads from disk; empty (cold) unless resuming.

        Corrupt, truncated, version-skewed or wrong-batch checkpoints
        warn and cold-start — resuming must never be less safe than
        starting over.
        """
        if not resume:
            return {}
        try:
            payload = json.loads(self.path.read_text())
            if payload["format"] != CHECKPOINT_FORMAT:
                raise ValueError("not a batch checkpoint")
            if payload["version"] != CHECKPOINT_VERSION:
                raise ValueError(
                    f"checkpoint version {payload['version']} "
                    f"!= supported {CHECKPOINT_VERSION}"
                )
            if payload["fingerprint"] != self.fingerprint:
                raise ValueError(
                    "checkpoint was written by a different batch "
                    "(inputs or options changed)"
                )
            done = {}
            for index, shard in payload["shards"].items():
                done[int(index)] = (
                    [_decode_output(output) for output in shard["outputs"]],
                    [
                        QuarantinedCase.from_dict(case)
                        for case in shard["quarantine"]
                    ],
                )
        except FileNotFoundError:
            return {}
        except _LOAD_ERRORS as exc:
            warnings.warn(
                f"ignoring unusable checkpoint {self.path}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return {}
        # Seed the in-memory image so later record() calls rewrite the
        # resumed shards too (the file stays complete throughout).
        self._shards = {
            index: {
                "outputs": [_encode_output(o) for o in outputs],
                "quarantine": [case.to_dict() for case in quarantine],
            }
            for index, (outputs, quarantine) in done.items()
        }
        return done

    def record(
        self,
        index: int,
        outputs: list,
        quarantine: list[QuarantinedCase],
    ) -> None:
        """Fold one completed payload in and rewrite the file atomically.

        Best-effort by design: a failed write (disk full, injected
        chaos fault) costs resume granularity, never the run — the
        batch carries on and the next record() retries the full image.
        """
        self._shards[index] = {
            "outputs": [_encode_output(output) for output in outputs],
            "quarantine": [case.to_dict() for case in quarantine],
        }
        image = json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "fingerprint": self.fingerprint,
                "shards": {
                    str(i): shard for i, shard in sorted(self._shards.items())
                },
            },
            sort_keys=True,
        )
        from repro.core.persist import atomic_write_text

        try:
            atomic_write_text(self.path, image, chaos_site="checkpoint.write")
        except OSError as exc:
            warnings.warn(
                f"checkpoint write to {self.path} failed ({exc}); "
                "continuing without it",
                RuntimeWarning,
                stacklevel=2,
            )
