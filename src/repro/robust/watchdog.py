"""Shard watchdog: supervised worker processes with quarantine.

The batch engine's plain ``multiprocessing.Pool`` path assumes workers
are well-behaved: a worker that dies (OOM kill, segfaulting C
extension, chaos injection) or never returns (pathological query with
no budget) takes the whole batch down with it.  This module is the
supervised alternative: each shard payload runs in its *own* child
process watched over a pipe, with

* a **per-shard timeout** — a shard that exceeds it is killed and
  counted, never waited on forever;
* **bounded retry** — a dead or stuck shard gets a fresh process (the
  death may have been environmental);
* **poison-case quarantine** — a shard that fails every attempt is
  split into single-case payloads and each case gets one isolated run;
  a case that *still* kills its worker is the poison, and is handed to
  the caller's in-process ``fallback`` (the engine analyzes it under a
  strict :class:`~repro.robust.budget.ResourceBudget`) instead of
  sinking the run.

Supervision is deliberately engine-agnostic: payload structure is
opaque, and the engine supplies ``split`` / ``fallback`` callbacks.
Outputs come back as one *list* of outputs per payload (usually a
singleton; a quarantined shard yields one output per case) so the
caller's reduce step stays a flat fold in payload order — which keeps
checkpoint resume and stats merges bit-identical to an uninterrupted
run.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable

from repro.robust import chaos

__all__ = [
    "QuarantinedCase",
    "run_supervised",
    "KIND_CRASH",
    "KIND_TIMEOUT",
]

KIND_CRASH = "crash"
KIND_TIMEOUT = "timeout"

#: How often a supervising thread re-checks the abort flag while
#: waiting on its worker's pipe.  Small enough that Ctrl-C feels
#: instant; large enough to cost nothing.
_POLL_SLICE_S = 0.05


@dataclass(frozen=True)
class QuarantinedCase:
    """One case the watchdog gave up running in a worker process."""

    rep_index: int
    label: str
    reason: str  # KIND_CRASH | KIND_TIMEOUT
    attempts: int  # worker processes this case burned before quarantine

    def to_dict(self) -> dict:
        return {
            "rep_index": self.rep_index,
            "label": self.label,
            "reason": self.reason,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuarantinedCase":
        return cls(
            rep_index=payload["rep_index"],
            label=payload["label"],
            reason=payload["reason"],
            attempts=payload["attempts"],
        )


class _Aborted(Exception):
    """Internal: supervision cancelled (Ctrl-C in the driver)."""


def _mp_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _child(conn, worker, payload, chaos_key: str) -> None:
    """Worker-process entry: chaos fault site, then the real work."""
    chaos.worker_fault("engine.shard", chaos_key)
    output = worker(payload)
    conn.send(output)
    conn.close()


def _run_attempt(
    worker: Callable[[Any], Any],
    payload: Any,
    timeout: float | None,
    chaos_key: str,
    abort: threading.Event,
) -> tuple[bool, Any]:
    """One supervised child process; ``(True, output)`` or ``(False, kind)``."""
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child,
        args=(child_conn, worker, payload, chaos_key),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        while True:
            if abort.is_set():
                raise _Aborted()
            wait_s = _POLL_SLICE_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False, KIND_TIMEOUT
                wait_s = min(wait_s, remaining)
            if parent_conn.poll(wait_s):
                try:
                    return True, parent_conn.recv()
                except (EOFError, OSError):
                    # Readable-at-EOF: the child died without sending.
                    return False, KIND_CRASH
    finally:
        if proc.is_alive():
            proc.kill()
        proc.join()
        parent_conn.close()


def _record_failure(registry, kind: str) -> None:
    if registry is None:
        return
    if kind == KIND_CRASH:
        registry.inc("robust.shard_crashes")
    else:
        registry.inc("robust.shard_timeouts")


def _supervise_payload(
    index: int,
    payload: Any,
    worker: Callable[[Any], Any],
    timeout: float | None,
    attempts: int,
    split: Callable[[Any], list[tuple[int, str, Any]]] | None,
    fallback: Callable[[Any], Any] | None,
    registry,
    abort: threading.Event,
) -> tuple[list[Any], list[QuarantinedCase]]:
    """Run one payload to completion, whatever it takes."""
    for attempt in range(attempts):
        ok, outcome = _run_attempt(
            worker, payload, timeout, f"shard:{index}:{attempt}", abort
        )
        if ok:
            return [outcome], []
        _record_failure(registry, outcome)
        if attempt + 1 < attempts and registry is not None:
            registry.inc("robust.shard_retries")
    if split is None or fallback is None:
        raise RuntimeError(
            f"shard {index} failed {attempts} attempts "
            "and no quarantine path is configured"
        )
    # Poison shard: every attempt died.  Isolate case by case — the
    # innocent majority completes in its own worker; whichever case
    # still kills its process is quarantined to the in-process
    # strict-budget fallback.
    outputs: list[Any] = []
    quarantine: list[QuarantinedCase] = []
    for rep_index, label, case_payload in split(payload):
        ok, outcome = _run_attempt(
            worker, case_payload, timeout, f"case:{index}:{rep_index}", abort
        )
        if ok:
            outputs.append(outcome)
            continue
        _record_failure(registry, outcome)
        if registry is not None:
            registry.inc("robust.quarantined")
        outputs.append(fallback(case_payload))
        quarantine.append(
            QuarantinedCase(
                rep_index=rep_index,
                label=label,
                reason=outcome,
                attempts=attempts + 1,
            )
        )
    return outputs, quarantine


def run_supervised(
    payloads: list[Any],
    worker: Callable[[Any], Any],
    *,
    timeout: float | None = None,
    attempts: int = 2,
    split: Callable[[Any], list[tuple[int, str, Any]]] | None = None,
    fallback: Callable[[Any], Any] | None = None,
    registry=None,
    done: dict[int, tuple[list[Any], list[QuarantinedCase]]] | None = None,
    on_result: Callable[[int, list[Any], list[QuarantinedCase]], None] | None = None,
    max_workers: int | None = None,
) -> tuple[list[list[Any]], list[QuarantinedCase]]:
    """Run every payload under supervision; never lose the batch.

    Args:
        payloads: opaque work units, executed as ``worker(payload)`` in
            a child process each.
        worker: module-level picklable callable.
        timeout: per-*attempt* wall-clock limit (None: wait forever,
            crashes still supervised).
        attempts: worker processes a shard may burn before its cases
            are isolated (≥ 1).
        split: shard payload → ``[(rep_index, label, case_payload)]``
            for per-case isolation of a poison shard.
        fallback: in-process conservative analysis of one quarantined
            ``case_payload`` (must not raise).
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving ``robust.shard_crashes`` / ``robust.shard_timeouts``
            / ``robust.shard_retries`` / ``robust.quarantined``.
        done: payload indices already completed (checkpoint resume);
            their entries are returned verbatim and not re-run.
        on_result: called (serialized under a lock) as each payload
            completes — the engine's checkpoint hook.
        max_workers: supervising threads (defaults to CPU count).

    Returns:
        ``(groups, quarantine)`` where ``groups[i]`` is the list of
        outputs for ``payloads[i]`` (singleton unless quarantined) and
        ``quarantine`` lists every quarantined case in payload order.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    results: dict[int, tuple[list[Any], list[QuarantinedCase]]] = dict(done or {})
    pending = [i for i in range(len(payloads)) if i not in results]
    abort = threading.Event()
    result_lock = threading.Lock()

    def _run_one(index: int) -> None:
        group = _supervise_payload(
            index,
            payloads[index],
            worker,
            timeout,
            attempts,
            split,
            fallback,
            registry,
            abort,
        )
        results[index] = group
        if on_result is not None:
            with result_lock:
                on_result(index, *group)

    if pending:
        workers = min(len(pending), max_workers or os.cpu_count() or 1)
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-watchdog"
        )
        futures = [pool.submit(_run_one, index) for index in pending]
        try:
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    future.result()  # surface supervision errors now
        except BaseException:
            # Ctrl-C (or a supervision bug): stop cleanly.  Running
            # threads notice the abort within one poll slice and kill
            # their children; queued payloads never start.
            abort.set()
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        pool.shutdown(wait=True)

    groups = [results[i][0] for i in range(len(payloads))]
    quarantine = [case for i in range(len(payloads)) for case in results[i][1]]
    return groups, quarantine
