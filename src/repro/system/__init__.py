"""Constraint systems and dependence-problem construction."""

from repro.system.constraints import (
    NEG_INF,
    POS_INF,
    ConstraintSystem,
    Interval,
    LinearConstraint,
)
from repro.system.depsystem import (
    DependenceProblem,
    Direction,
    build_problem,
    build_problem_from_sites,
)
from repro.system.transform import GcdOutcome, TransformedSystem, gcd_transform

__all__ = [
    "LinearConstraint",
    "ConstraintSystem",
    "Interval",
    "NEG_INF",
    "POS_INF",
    "DependenceProblem",
    "Direction",
    "build_problem",
    "build_problem_from_sites",
    "GcdOutcome",
    "TransformedSystem",
    "gcd_transform",
]
