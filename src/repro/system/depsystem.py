"""Building the dependence system for a pair of array references.

Following the paper's problem definition (section 2): given two
references ``a[f1(i)]...[fm(i)]`` and ``a[f1'(i')]...[fm'(i')]`` inside
loop nests with affine trapezoidal bounds, the references are dependent
iff there exist integer iteration vectors ``i`` and ``i'`` satisfying

    fk(i) == fk'(i')          for every dimension k        (equalities)
    L_j(..) <= i_j <= U_j(..) for every enclosing loop      (bounds)

:class:`DependenceProblem` holds exactly this system over the combined
variable space ``[i vars, primed i' vars, symbolic terms]``.  The
second reference's loop variables are renamed with a prime so that the
two iteration vectors are independent unknowns; loop-invariant symbols
are shared between both sides (section 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.affine import AffineExpr
from repro.ir.arrays import ArrayRef
from repro.ir.loops import LoopNest
from repro.ir.program import AccessSite
from repro.system.constraints import ConstraintSystem, LinearConstraint

__all__ = [
    "DependenceProblem",
    "build_problem",
    "build_problem_from_sites",
    "Direction",
]


class Direction:
    """Direction-vector component values (paper section 6)."""

    LT = "<"
    EQ = "="
    GT = ">"
    ANY = "*"

    ALL = (LT, EQ, GT)


# Lazily bound byte-key codec.  ``repro.core.memo`` owns the encoder
# and the global intern table, but importing it at module scope would
# cycle through ``repro.core.__init__`` back into this module.
_CODEC: tuple = ()


def _memo_codec():
    global _CODEC
    if not _CODEC:
        from repro.core.memo import encode_key, intern_key

        _CODEC = (encode_key, intern_key)
    return _CODEC


@dataclass(slots=True)
class DependenceProblem:
    """The integer system whose solvability decides dependence.

    Attributes:
        names: combined variable names, nest1 vars first, then primed
            nest2 vars, then sorted symbolic terms.
        equations: subscript equalities as ``(coeffs, rhs)`` meaning
            ``coeffs . x == rhs``.
        bounds: the loop-bound inequalities over the same variables.
        n1, n2: loop depths of the two nests.
        n_common: number of leading loops the two nests share — the
            levels for which direction vector components are defined.
    """

    names: tuple[str, ...]
    equations: list[tuple[tuple[int, ...], int]]
    bounds: ConstraintSystem
    n1: int
    n2: int
    n_common: int
    symbols: tuple[str, ...]
    # Per-instance cache of the two serializations.  The analyzer probes
    # key_vector up to three times per query (symmetry canonicalization,
    # the no-bounds table and the with-bounds table); the encoding walks
    # every equation and bound, so recomputing it dominated the memo-hit
    # fast path.  Instances are never mutated after construction.
    _key_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # -- variable indexing ----------------------------------------------------

    def var1(self, level: int) -> int:
        """Index of nest1's loop variable at ``level`` (0-based)."""
        if not 0 <= level < self.n1:
            raise IndexError(level)
        return level

    def var2(self, level: int) -> int:
        """Index of nest2's (primed) loop variable at ``level``."""
        if not 0 <= level < self.n2:
            raise IndexError(level)
        return self.n1 + level

    @property
    def n_vars(self) -> int:
        return len(self.names)

    # -- direction and distance ------------------------------------------------

    def direction_constraints(
        self, level: int, relation: str
    ) -> list[LinearConstraint]:
        """Constraints over x expressing ``i_level relation i'_level``.

        ``<`` means ``i < i'`` (i.e. ``i - i' <= -1``), ``=`` both
        ``i - i' <= 0`` and ``i' - i <= 0``, ``>`` means ``i' - i <= -1``.
        ``*`` adds nothing.
        """
        if relation == Direction.ANY:
            return []
        if level >= self.n_common:
            raise IndexError(f"level {level} beyond common depth {self.n_common}")
        i1, i2 = self.var1(level), self.var2(level)
        coeffs = [0] * self.n_vars

        def make(ci1: int, ci2: int, bound: int) -> LinearConstraint:
            row = list(coeffs)
            row[i1], row[i2] = ci1, ci2
            return LinearConstraint.make(row, bound)

        if relation == Direction.LT:
            return [make(1, -1, -1)]
        if relation == Direction.GT:
            return [make(-1, 1, -1)]
        if relation == Direction.EQ:
            return [make(1, -1, 0), make(-1, 1, 0)]
        raise ValueError(f"bad direction {relation!r}")

    def direction_rows(
        self, level: int, relation: str
    ) -> list[tuple[tuple[tuple[int, int], ...], int]]:
        """Sparse form of :meth:`direction_constraints` for the flat path.

        Each row is ``(((var, coeff), ...), bound)`` over the x
        variables.  The rows have unit coefficients, so they are
        already gcd-normalized — transforming and appending them to a
        :class:`~repro.system.flat.FlatSystem` produces exactly the
        constraints :meth:`direction_constraints` would.
        """
        if relation == Direction.ANY:
            return []
        if level >= self.n_common:
            raise IndexError(f"level {level} beyond common depth {self.n_common}")
        i1, i2 = self.var1(level), self.var2(level)
        if relation == Direction.LT:
            return [(((i1, 1), (i2, -1)), -1)]
        if relation == Direction.GT:
            return [(((i1, -1), (i2, 1)), -1)]
        if relation == Direction.EQ:
            return [(((i1, 1), (i2, -1)), 0), (((i1, -1), (i2, 1)), 0)]
        raise ValueError(f"bad direction {relation!r}")

    def distance_coeffs(self, level: int) -> tuple[list[int], int]:
        """The expression ``i'_level - i_level`` as (coeffs over x, const)."""
        coeffs = [0] * self.n_vars
        coeffs[self.var2(level)] = 1
        coeffs[self.var1(level)] = -1
        return coeffs, 0

    # -- canonical serialization (memoization keys) -----------------------------

    def key_vector(self, with_bounds: bool) -> tuple[int, ...]:
        """Flatten the problem into one integer vector (paper section 5).

        The encoding is positional: loop variables are identified by
        nesting position and symbols by their (sorted) slot, so two
        problems that differ only in variable names serialize
        identically.  The no-bounds key determines the equation matrix
        completely — a hit allows reusing the GCD factorization.
        """
        cached = self._key_cache.get(with_bounds)
        if cached is not None:
            return cached
        key = tuple(self._key_elements(with_bounds))
        self._key_cache[with_bounds] = key
        return key

    def _key_elements(self, with_bounds: bool) -> list[int]:
        vec: list[int] = [
            self.n1,
            self.n2,
            self.n_common,
            self.n_vars,
            len(self.equations),
        ]
        for coeffs, rhs in self.equations:
            vec.append(rhs)
            entries = [(j, c) for j, c in enumerate(coeffs) if c != 0]
            vec.append(len(entries))
            for j, c in entries:
                vec.extend((j, c))
        if with_bounds:
            vec.append(len(self.bounds.constraints))
            for con in self.bounds.constraints:
                vec.append(con.bound)
                entries = [
                    (j, c) for j, c in enumerate(con.coeffs) if c != 0
                ]
                vec.append(len(entries))
                for j, c in entries:
                    vec.extend((j, c))
        return vec

    def key_bytes(self, with_bounds: bool) -> bytes:
        """The key vector as interned zigzag-varint bytes (memo keys).

        ``key_bytes(b) == encode_key(key_vector(b))`` by construction;
        the bytes form skips the tuple entirely and is interned through
        the global table in :mod:`repro.core.memo`, so a repeated
        problem's memo probe hashes one shared bytes object.
        """
        # Cache slots 2/3 (bytes) are disjoint from the tuple slots
        # False==0 / True==1.
        slot = 3 if with_bounds else 2
        cached = self._key_cache.get(slot)
        if cached is not None:
            return cached
        encode, intern = _memo_codec()
        data = intern(encode(self._key_elements(with_bounds)))
        self._key_cache[slot] = data
        return data

    def swapped(self) -> "DependenceProblem":
        """The same dependence question with the two references swapped.

        Comparing ``a[i]`` to ``a[i-1]`` is the same problem as
        comparing ``a[i-1]`` to ``a[i]`` (the paper's symmetry
        optimization, section 5): the swapped problem puts nest2's
        variables first and negates the equations.  Verdicts agree;
        distances and directions flip sign/orientation.
        """
        # permutation: new order = [group2, group1, symbols]
        order = (
            list(range(self.n1, self.n1 + self.n2))
            + list(range(self.n1))
            + list(range(self.n1 + self.n2, self.n_vars))
        )

        def permute(coeffs: tuple[int, ...]) -> tuple[int, ...]:
            return tuple(coeffs[old] for old in order)

        new_names = tuple(self.names[old] for old in order)
        new_equations = [
            (tuple(-c for c in permute(coeffs)), -rhs)
            for coeffs, rhs in self.equations
        ]
        new_bounds = ConstraintSystem(new_names)
        # Bound constraints come in nest1-then-nest2 order; emit the
        # swapped problem's in its own nest order for key stability.
        group1, group2, rest = [], [], []
        for c in self.bounds.constraints:
            used = c.variables()
            if any(v < self.n1 for v in used):
                group1.append(c)
            elif any(self.n1 <= v < self.n1 + self.n2 for v in used):
                group2.append(c)
            else:
                rest.append(c)
        for con in group2 + group1 + rest:
            new_bounds.add_constraint(LinearConstraint(permute(con.coeffs), con.bound))
        return DependenceProblem(
            names=new_names,
            equations=new_equations,
            bounds=new_bounds,
            n1=self.n2,
            n2=self.n1,
            n_common=self.n_common,
            symbols=self.symbols,
        )

    # -- unused-variable elimination ----------------------------------------------

    def used_variable_closure(self, extra: set[int] | None = None) -> set[int]:
        """Variables reachable from the subscript equations.

        A loop variable is *used* if it occurs in a subscript equation,
        or (transitively) in the bound constraint of a used variable.
        Bound constraints on unused variables add no information (the
        loops are assumed non-empty) and dropping them merges cases that
        differ only in irrelevant surrounding loops (section 5).

        ``extra`` seeds the closure with additional variables to keep
        (the direction-vector path must retain both variables of any
        common level it intends to refine, plus everything their bounds
        reference — see :meth:`eliminate_unused`).
        """
        used = {
            j
            for coeffs, _ in self.equations
            for j, c in enumerate(coeffs)
            if c != 0
        }
        if extra:
            used |= extra
        changed = True
        while changed:
            changed = False
            for con in self.bounds.constraints:
                vars_in = con.variables()
                if any(v in used for v in vars_in):
                    for v in vars_in:
                        if v not in used:
                            used.add(v)
                            changed = True
        return used

    def eliminate_unused(
        self, extra_keep: set[int] | None = None
    ) -> tuple["DependenceProblem", list[int]]:
        """Project away unused variables and their bound constraints.

        Returns the reduced problem and, for each *common* level, whether
        it survived (list of surviving common level numbers).  Loop
        structure bookkeeping (n1/n2/n_common) is recomputed over the
        surviving variables; the caller uses the survivor list to map
        direction-vector components back (dropped levels get ``*``).

        ``extra_keep`` force-retains variables beyond the equation
        closure (their bound constraints, and transitively everything
        those reference, are retained too).  The direction-vector path
        uses this: a ``*`` lift is only exact for a common level whose
        two variables are *both* unused and whose loop has constant
        bounds, so :meth:`DependenceAnalyzer.directions` keeps every
        other level in the system instead of dropping it.

        The result is cached per ``extra_keep`` (problems are immutable
        once built, and the analyzer's problem cache replays identical
        queries against the same instance).
        """
        cache_key = (
            "elim",
            None if extra_keep is None else frozenset(extra_keep),
        )
        cached = self._key_cache.get(cache_key)
        if cached is not None:
            reduced, surviving = cached
            return reduced, list(surviving)
        used = self.used_variable_closure(extra_keep)
        keep = sorted(used)
        remap = {old: new for new, old in enumerate(keep)}

        def project(coeffs: tuple[int, ...]) -> tuple[int, ...]:
            return tuple(coeffs[old] for old in keep)

        new_names = tuple(self.names[old] for old in keep)
        new_equations = [(project(c), rhs) for c, rhs in self.equations]
        new_bounds = ConstraintSystem(new_names)
        for con in self.bounds.constraints:
            if all(v in used for v in con.variables()):
                new_bounds.add_constraint(
                    LinearConstraint(project(con.coeffs), con.bound)
                )

        kept1 = [lvl for lvl in range(self.n1) if lvl in used]
        kept2 = [lvl for lvl in range(self.n2) if (self.n1 + lvl) in used]
        surviving_common = [
            lvl
            for lvl in range(self.n_common)
            if lvl in used and (self.n1 + lvl) in used
        ]
        # The projection must keep nest1 vars before nest2 vars before
        # symbols; variable order within each group is preserved because
        # ``keep`` is sorted.
        n1_new = len(kept1)
        n2_new = len(kept2)
        # Common levels must stay aligned: a common level survives only if
        # both of its variables do, and all earlier common levels kept the
        # alignment.  Compute the new common depth as the length of the
        # aligned prefix.
        n_common_new = 0
        for lvl in surviving_common:
            pos1 = kept1.index(lvl)
            pos2 = kept2.index(lvl)
            if pos1 == pos2 == n_common_new:
                n_common_new += 1
            else:
                break
        new_symbols = tuple(
            name for name in new_names if name in self.symbols
        )
        reduced = DependenceProblem(
            names=new_names,
            equations=new_equations,
            bounds=new_bounds,
            n1=n1_new,
            n2=n2_new,
            n_common=n_common_new,
            symbols=new_symbols,
        )
        surviving = surviving_common[:n_common_new]
        self._key_cache[cache_key] = (reduced, tuple(surviving))
        return reduced, surviving

    def __str__(self) -> str:
        eqs = "\n".join(
            "  "
            + " + ".join(
                f"{c}*{self.names[j]}" for j, c in enumerate(coeffs) if c != 0
            )
            + f" = {rhs}"
            for coeffs, rhs in self.equations
        )
        return f"DependenceProblem over {self.names}:\n{eqs}\n{self.bounds}"


def _prime(name: str) -> str:
    return name + "'"


def build_problem(
    ref1: ArrayRef, nest1: LoopNest, ref2: ArrayRef, nest2: LoopNest
) -> DependenceProblem:
    """Construct the dependence system for two references.

    The references must name the same array with equal rank.  Free
    variables of subscripts or bounds that are not loop variables of
    their nest are treated as shared loop-invariant symbols.
    """
    if ref1.array != ref2.array:
        raise ValueError("references name different arrays")
    if ref1.rank != ref2.rank:
        raise ValueError(
            f"rank mismatch for array {ref1.array!r}: {ref1.rank} vs {ref2.rank}"
        )

    n_common = nest1.common_prefix_depth(nest2)
    vars1 = nest1.variables
    vars2 = nest2.variables
    prime_map = {name: _prime(name) for name in vars2}
    ref2p = ref2.rename(prime_map)
    loops2p = [loop.rename(prime_map) for loop in nest2]

    free1 = (ref1.variables() | nest1.symbols()) - set(vars1)
    free2: set[str] = set(ref2p.variables())
    for loop in loops2p:
        free2 |= loop.lower.variables() | loop.upper.variables()
    free2 -= set(prime_map.values())
    # A symbol shared by both sides (loop-invariant unknown) appears once.
    symbols = sorted(free1 | free2)

    names = tuple(vars1) + tuple(prime_map[v] for v in vars2) + tuple(symbols)
    # Equations and bounds are assembled straight from the expressions'
    # term maps — equivalent to the AffineExpr arithmetic
    # (``sub1 - sub2``, ``lower - var``, ``var - upper``) but without
    # allocating the intermediate expression objects, which dominated
    # the cold-query profile.
    slot = {name: j for j, name in enumerate(names)}
    n = len(names)

    equations: list[tuple[tuple[int, ...], int]] = []
    for sub1, sub2 in zip(ref1.subscripts, ref2p.subscripts):
        row = [0] * n
        for name, c in sub1._terms.items():
            row[slot[name]] += c
        for name, c in sub2._terms.items():
            row[slot[name]] -= c
        # sub1 - sub2 == 0  ==>  row . x == sub2.const - sub1.const
        equations.append((tuple(row), sub2.constant - sub1.constant))

    bounds = ConstraintSystem(names)
    for loop in list(nest1) + loops2p:
        var_slot = slot[loop.var]
        # lower <= var   ==>   (lower - var) <= 0
        row = [0] * n
        for name, c in loop.lower._terms.items():
            row[slot[name]] += c
        row[var_slot] -= 1
        bounds.add(row, -loop.lower.constant)
        # var <= upper   ==>   (var - upper) <= 0
        row = [0] * n
        for name, c in loop.upper._terms.items():
            row[slot[name]] -= c
        row[var_slot] += 1
        bounds.add(row, loop.upper.constant)

    return DependenceProblem(
        names=names,
        equations=equations,
        bounds=bounds,
        n1=len(vars1),
        n2=len(vars2),
        n_common=n_common,
        symbols=tuple(symbols),
    )


def build_problem_from_sites(
    site1: AccessSite, site2: AccessSite
) -> DependenceProblem:
    return build_problem(site1.ref, site1.nest, site2.ref, site2.nest)
