"""Flat array-backed constraint systems for the cascade hot path.

Profiling the query inner loop (``repro bench --profile``) shows the
dependence *math* is cheap; the cost is Python object churn — one
frozen-dataclass :class:`~repro.system.constraints.LinearConstraint`
per row, a tuple per coefficient vector, and per-row method dispatch.
:class:`FlatSystem` stores every row of ``A x <= b`` in one contiguous
``array('q')`` coefficient buffer (row-major, one signed 64-bit slot
per coefficient) plus a parallel bounds array, so building, copying and
scanning a system never allocates per-row objects.

The object API stays available as a thin view: the ``constraints``
property materializes :class:`LinearConstraint` rows lazily and caches
them, and :meth:`copy` shares the already-materialized prefix (rows are
append-only and immutable once written), so a refinement run that adds
two direction rows per vector constructs exactly two new objects — the
base system's rows are materialized at most once per query no matter
how many vectors are tested.

Rows are gcd-normalized exactly as :meth:`LinearConstraint.make` does
(divide by the coefficient gcd, floor the bound), keeping flat and
object cascades bit-identical — verdicts, witnesses and residuals all
agree, which ``tests/test_flat_equivalence.py`` checks property-style
on every fuzz tier.

``array('q')`` overflows past 64 bits; callers build flat systems
inside ``try/except OverflowError`` and fall back to the object path
(see :class:`repro.system.transform.TransformedSystem`), so pathological
coefficient growth degrades to the old representation instead of
crashing.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence

from repro.linalg.gcdext import floor_div, gcd_all
from repro.system.constraints import ConstraintSystem, Interval, LinearConstraint

__all__ = ["FlatSystem"]


class FlatSystem:
    """Row-major ``A x <= b`` over one contiguous int64 buffer.

    Duck-types the slice of the :class:`ConstraintSystem` API the
    cascade consumes: SVPC runs natively on the buffer; tests that need
    object rows (Acyclic's elimination, Fourier-Motzkin) go through the
    lazily-materialized ``constraints`` view.
    """

    __slots__ = ("names", "n_vars", "data", "bounds", "_objects")

    def __init__(
        self,
        names: Sequence[str],
        data: array | None = None,
        bounds: array | None = None,
        objects: list[LinearConstraint] | None = None,
    ):
        self.names = tuple(names)
        self.n_vars = len(self.names)
        self.data = data if data is not None else array("q")
        self.bounds = bounds if bounds is not None else array("q")
        # Prefix cache of materialized LinearConstraint rows: always
        # covers rows [0, len(_objects)).  Shared across copies.
        self._objects: list[LinearConstraint] = (
            objects if objects is not None else []
        )

    @property
    def n_rows(self) -> int:
        return len(self.bounds)

    def __len__(self) -> int:
        return len(self.bounds)

    # -- construction -------------------------------------------------------

    def add(self, coeffs: Sequence[int], bound: int) -> None:
        """Append a row, gcd-normalizing like :meth:`LinearConstraint.make`."""
        g = gcd_all(coeffs)
        if g > 1:
            coeffs = [c // g for c in coeffs]
            bound = floor_div(bound, g)
        self.data.extend(coeffs)
        self.bounds.append(bound)

    def add_row(self, coeffs: Sequence[int], bound: int) -> None:
        """Append an already-normalized row (no gcd division)."""
        self.data.extend(coeffs)
        self.bounds.append(bound)

    def copy(self) -> "FlatSystem":
        return FlatSystem(
            self.names, self.data[:], self.bounds[:], list(self._objects)
        )

    @classmethod
    def from_system(cls, system: ConstraintSystem) -> "FlatSystem":
        """Flat view of an object system (rows assumed normalized)."""
        flat = cls(system.names)
        data = flat.data
        bounds = flat.bounds
        for con in system.constraints:
            data.extend(con.coeffs)
            bounds.append(con.bound)
        flat._objects = list(system.constraints)
        return flat

    def to_system(self) -> ConstraintSystem:
        return ConstraintSystem(self.names, list(self.constraints))

    # -- object view ---------------------------------------------------------

    @property
    def constraints(self) -> list[LinearConstraint]:
        """Materialized object rows (lazily built, cached, shared by copies)."""
        objs = self._objects
        n_rows = len(self.bounds)
        if len(objs) < n_rows:
            n = self.n_vars
            data = self.data
            bounds = self.bounds
            for r in range(len(objs), n_rows):
                base = r * n
                objs.append(
                    LinearConstraint(tuple(data[base : base + n]), bounds[r])
                )
        return objs

    # -- cascade queries (native, no object rows) ----------------------------

    def max_vars_per_constraint(self) -> int:
        data = self.data
        n = self.n_vars
        best = 0
        base = 0
        for _ in range(len(self.bounds)):
            count = 0
            for k in range(base, base + n):
                if data[k]:
                    count += 1
            if count > best:
                best = count
            base += n
        return best

    def has_contradiction(self) -> bool:
        data = self.data
        n = self.n_vars
        base = 0
        for b in self.bounds:
            if b < 0:
                for k in range(base, base + n):
                    if data[k]:
                        break
                else:
                    return True
            base += n
        return False

    def single_variable_intervals(self) -> list[Interval]:
        """Same contract as :meth:`ConstraintSystem.single_variable_intervals`."""
        intervals = [Interval() for _ in range(self.n_vars)]
        data = self.data
        n = self.n_vars
        base = 0
        for b in self.bounds:
            var = -1
            for k in range(base, base + n):
                if data[k]:
                    if var >= 0:
                        var = -2  # multi-variable row: skip
                        break
                    var = k - base
            if var >= 0:
                a = data[base + var]
                if a > 0:
                    intervals[var].tighten_hi(floor_div(b, a))
                else:
                    intervals[var].tighten_lo(-floor_div(b, -a))
            base += n
        return intervals

    def used_variables(self) -> set[int]:
        used: set[int] = set()
        data = self.data
        n = self.n_vars
        base = 0
        for _ in range(len(self.bounds)):
            for k in range(base, base + n):
                if data[k]:
                    used.add(k - base)
            base += n
        return used

    def evaluate(self, point: Sequence[int]) -> bool:
        data = self.data
        n = self.n_vars
        base = 0
        for b in self.bounds:
            acc = 0
            for k in range(base, base + n):
                c = data[k]
                if c:
                    acc += c * point[k - base]
            if acc > b:
                return False
            base += n
        return True

    def __str__(self) -> str:
        return str(self.to_system())
