"""Canonical linear constraints over integer variables.

Every dependence test in the cascade consumes the same representation
(the paper stresses this: "They all expect their data in the same form:
A x <= b").  A :class:`LinearConstraint` is an inequality

    coeffs[0]*t0 + coeffs[1]*t1 + ... + coeffs[n-1]*t(n-1)  <=  bound

with integer coefficients over integer-valued variables.  Constraints
are gcd-normalized on construction: dividing through by the coefficient
gcd and *flooring* the bound is an exact tightening for integer
solutions (e.g. ``2t <= 5`` becomes ``t <= 2``).

A :class:`ConstraintSystem` is a named collection of constraints over a
shared variable space, with the bookkeeping the tests need: which
variables occur, per-constraint variable counts, substitution of a
variable by a constant, and single-variable interval extraction.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.linalg.gcdext import floor_div, gcd_all

__all__ = ["LinearConstraint", "ConstraintSystem", "Interval", "NEG_INF", "POS_INF"]

# Sentinels for unbounded interval ends.  Using None-free sentinels keeps
# comparisons simple: any int compares against these via the helpers below.
NEG_INF = float("-inf")
POS_INF = float("inf")


@dataclass(frozen=True, slots=True)
class LinearConstraint:
    """An immutable, gcd-normalized inequality ``coeffs . t <= bound``."""

    coeffs: tuple[int, ...]
    bound: int

    @staticmethod
    def make(coeffs: Sequence[int], bound: int) -> "LinearConstraint":
        """Build a constraint, normalizing by the coefficient gcd."""
        coeffs = tuple(int(c) for c in coeffs)
        bound = int(bound)
        g = gcd_all(coeffs)
        if g > 1:
            coeffs = tuple(c // g for c in coeffs)
            bound = floor_div(bound, g)
        return LinearConstraint(coeffs, bound)

    # -- structure queries -------------------------------------------------

    def variables(self) -> tuple[int, ...]:
        """Indices of variables with non-zero coefficients."""
        return tuple(i for i, c in enumerate(self.coeffs) if c != 0)

    @property
    def num_vars_used(self) -> int:
        return sum(1 for c in self.coeffs if c != 0)

    @property
    def is_trivial(self) -> bool:
        """All-zero coefficients and a satisfiable bound (``0 <= b, b >= 0``)."""
        return self.num_vars_used == 0 and self.bound >= 0

    @property
    def is_contradiction(self) -> bool:
        """All-zero coefficients and an unsatisfiable bound (``0 <= b, b < 0``)."""
        return self.num_vars_used == 0 and self.bound < 0

    # -- transformations -----------------------------------------------------

    def substitute(self, var: int, value: int) -> "LinearConstraint":
        """Pin ``t[var] = value``, folding its term into the bound."""
        c = self.coeffs[var]
        if c == 0:
            return self
        coeffs = list(self.coeffs)
        coeffs[var] = 0
        return LinearConstraint.make(coeffs, self.bound - c * value)

    def evaluate(self, point: Sequence[int]) -> bool:
        """True iff ``point`` satisfies the constraint."""
        return sum(c * x for c, x in zip(self.coeffs, point)) <= self.bound

    def __str__(self) -> str:
        terms = [
            f"{'+' if c > 0 else '-'}{abs(c) if abs(c) != 1 else ''}t{i}"
            for i, c in enumerate(self.coeffs)
            if c != 0
        ]
        lhs = " ".join(terms) if terms else "0"
        return f"{lhs} <= {self.bound}"


@dataclass(slots=True)
class Interval:
    """A (possibly unbounded) integer interval ``[lo, hi]``."""

    lo: float = NEG_INF  # int or NEG_INF
    hi: float = POS_INF  # int or POS_INF

    @property
    def empty(self) -> bool:
        return self.lo > self.hi

    def tighten_lo(self, value: int) -> None:
        if value > self.lo:
            self.lo = value

    def tighten_hi(self, value: int) -> None:
        if value < self.hi:
            self.hi = value

    def pick(self) -> int:
        """An arbitrary integer in the interval (prefers a finite end)."""
        if self.empty:
            raise ValueError("cannot pick from an empty interval")
        if self.lo != NEG_INF:
            return int(self.lo)
        if self.hi != POS_INF:
            return int(self.hi)
        return 0


@dataclass(slots=True)
class ConstraintSystem:
    """A set of constraints over named integer variables."""

    names: tuple[str, ...]
    constraints: list[LinearConstraint] = field(default_factory=list)

    @property
    def n_vars(self) -> int:
        return len(self.names)

    def add(self, coeffs: Sequence[int], bound: int) -> None:
        if len(coeffs) != self.n_vars:
            raise ValueError(
                f"constraint has {len(coeffs)} coefficients, "
                f"system has {self.n_vars} variables"
            )
        self.constraints.append(LinearConstraint.make(coeffs, bound))

    def add_constraint(self, constraint: LinearConstraint) -> None:
        if len(constraint.coeffs) != self.n_vars:
            raise ValueError("constraint arity mismatch")
        self.constraints.append(constraint)

    def copy(self) -> "ConstraintSystem":
        return ConstraintSystem(self.names, list(self.constraints))

    # -- queries --------------------------------------------------------------

    def used_variables(self) -> set[int]:
        used: set[int] = set()
        for c in self.constraints:
            used.update(c.variables())
        return used

    def max_vars_per_constraint(self) -> int:
        return max((c.num_vars_used for c in self.constraints), default=0)

    def has_contradiction(self) -> bool:
        return any(c.is_contradiction for c in self.constraints)

    def evaluate(self, point: Sequence[int]) -> bool:
        """True iff ``point`` satisfies every constraint."""
        return all(c.evaluate(point) for c in self.constraints)

    def single_variable_intervals(self) -> list[Interval]:
        """Per-variable intervals implied by the one-variable constraints.

        This is the bound-gathering half of the SVPC test (section 3.2);
        the Acyclic test reuses it to know each variable's extreme value.
        Multi-variable constraints are ignored here.
        """
        intervals = [Interval() for _ in range(self.n_vars)]
        for c in self.constraints:
            used = c.variables()
            if len(used) != 1:
                continue
            (var,) = used
            a = c.coeffs[var]
            # After normalization |a| may still exceed 1 only if the bound
            # made make() keep it; handle the general a*t <= b exactly.
            if a > 0:
                intervals[var].tighten_hi(floor_div(c.bound, a))
            else:
                # a*t <= b with a < 0  ==>  t >= b/a = -b/|a|, i.e.
                # t >= ceil(-b/|a|) = -floor(b/|a|).
                intervals[var].tighten_lo(-floor_div(c.bound, -a))
        return intervals

    def without_trivial(self) -> "ConstraintSystem":
        """Drop constraints that are satisfied by every point."""
        return ConstraintSystem(
            self.names, [c for c in self.constraints if not c.is_trivial]
        )

    def __str__(self) -> str:
        header = ", ".join(self.names)
        body = "\n".join(f"  {c}" for c in self.constraints)
        return f"ConstraintSystem({header}):\n{body}"
