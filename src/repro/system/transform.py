"""Extended GCD preprocessing: equalities -> free-variable system.

This implements section 3.1 of the paper.  The subscript equalities
``x @ A == c`` (one column of ``A`` per array dimension) are solved over
the integers via the unimodular/echelon factorization ``U @ A == D``:

* Solve ``t @ D == c`` by forward substitution.  Because ``D`` is
  echelon, each pivot column determines one component of ``t`` (which
  must be integral, else the references are **independent**), and
  non-pivot columns are consistency checks.
* The remaining components of ``t`` are *free*; the original variables
  are recovered as ``x = t @ U``, i.e. each ``x_j`` is an affine
  function of the free ``t``s.
* Every loop-bound inequality over ``x`` is rewritten as an inequality
  over the free ``t``s, producing the smaller, simpler system the rest
  of the cascade consumes.  Equality constraints are gone entirely —
  the Acyclic test requires this.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.linalg.echelon import echelon_factor
from repro.linalg.matrix import IntMatrix
from repro.system.constraints import ConstraintSystem, LinearConstraint
from repro.system.depsystem import DependenceProblem
from repro.system.flat import FlatSystem

__all__ = ["TransformedSystem", "GcdOutcome", "gcd_transform"]

# Sentinel: the flat build hit int64 overflow; use the object path.
_OVERFLOW = object()


class TransformedSystem:
    """The bound constraints re-expressed over the free ``t`` variables.

    ``x_offset`` and ``x_basis`` encode the general integer solution of
    the equalities:  ``x[j] = x_offset[j] + sum_f t[f] * x_basis[f][j]``.

    The t-space system exists in two forms, both built lazily from the
    problem's bounds on first access: ``flat`` (the array-backed
    :class:`FlatSystem` the cascade runs on) and ``system`` (the
    :class:`ConstraintSystem` object view, kept for tests, serde and the
    int64-overflow fallback).  Constructing the transform itself costs
    nothing — a memo hit that never reaches the cascade never transforms
    a single bound.
    """

    __slots__ = ("t_names", "x_offset", "x_basis", "problem", "_system", "_flat")

    def __init__(
        self,
        t_names: tuple[str, ...],
        system: ConstraintSystem | None = None,
        x_offset: tuple[int, ...] = (),
        x_basis: tuple[tuple[int, ...], ...] = (),
        problem: DependenceProblem | None = None,
    ):
        self.t_names = t_names
        self.x_offset = x_offset
        self.x_basis = x_basis
        self.problem = problem
        self._system = system
        self._flat: FlatSystem | object | None = None

    @property
    def n_free(self) -> int:
        return len(self.t_names)

    @property
    def flat(self) -> FlatSystem | None:
        """The transformed bounds as a :class:`FlatSystem` (None on overflow)."""
        if self._flat is None:
            try:
                self._flat = self._build_flat()
            except OverflowError:
                self._flat = _OVERFLOW
        return None if self._flat is _OVERFLOW else self._flat

    @property
    def system(self) -> ConstraintSystem:
        """Object view of the transformed bounds (materialized on demand)."""
        if self._system is None:
            flat = self.flat
            if flat is not None:
                self._system = ConstraintSystem(
                    self.t_names, list(flat.constraints)
                )
            else:
                built = ConstraintSystem(self.t_names)
                for con in self.problem.bounds.constraints:
                    built.add_constraint(self.transform_constraint(con))
                self._system = built
        return self._system

    def _build_flat(self) -> FlatSystem:
        flat = FlatSystem(self.t_names)
        offset = self.x_offset
        basis = self.x_basis
        n_free = len(basis)
        for con in self.problem.bounds.constraints:
            row = [0] * n_free
            const = 0
            for j, a in enumerate(con.coeffs):
                if a:
                    const += a * offset[j]
                    for f in range(n_free):
                        b = basis[f][j]
                        if b:
                            row[f] += a * b
            flat.add(row, con.bound - const)
        return flat

    def transform_constraint(self, constraint: LinearConstraint) -> LinearConstraint:
        """Rewrite an x-space constraint into t-space."""
        coeffs_t, const = self.transform_expr(constraint.coeffs, 0)
        return LinearConstraint.make(coeffs_t, constraint.bound - const)

    def transform_expr(
        self, coeffs_x: Sequence[int], const: int
    ) -> tuple[list[int], int]:
        """Rewrite ``coeffs_x . x + const`` as ``coeffs_t . t + const'``."""
        entries = [(j, a) for j, a in enumerate(coeffs_x) if a]
        new_const = const + sum(a * self.x_offset[j] for j, a in entries)
        coeffs_t = [
            sum(a * basis_row[j] for j, a in entries)
            for basis_row in self.x_basis
        ]
        return coeffs_t, new_const

    def x_value(self, t: Sequence[int]) -> list[int]:
        """Evaluate the original variables at a free-variable point."""
        if len(t) != self.n_free:
            raise ValueError("wrong free-variable arity")
        return [
            off + sum(tv * row[j] for tv, row in zip(t, self.x_basis))
            for j, off in enumerate(self.x_offset)
        ]

    def with_extra_constraints(
        self, extra: Sequence[LinearConstraint]
    ) -> ConstraintSystem:
        """The t-system plus transformed direction constraints."""
        system = self.system.copy()
        for con in extra:
            system.add_constraint(self.transform_constraint(con))
        return system

    def with_extra_flat(
        self, extra_rows: Sequence[tuple[tuple[tuple[int, int], ...], int]]
    ) -> FlatSystem | None:
        """The flat t-system plus transformed sparse x-space rows.

        ``extra_rows`` are ``((var, coeff), ...), bound`` pairs (see
        :meth:`DependenceProblem.direction_rows`).  Returns None when
        the flat representation overflowed int64 — callers fall back to
        :meth:`with_extra_constraints`.
        """
        base = self.flat
        if base is None:
            return None
        out = base.copy()
        offset = self.x_offset
        basis = self.x_basis
        n_free = len(basis)
        try:
            for entries, bound in extra_rows:
                row = [0] * n_free
                const = 0
                for j, a in entries:
                    const += a * offset[j]
                    for f in range(n_free):
                        b = basis[f][j]
                        if b:
                            row[f] += a * b
                out.add(row, bound - const)
        except OverflowError:
            return None
        return out


@dataclass
class GcdOutcome:
    """Result of Extended GCD preprocessing.

    ``independent`` is True when the equalities alone have no integer
    solution — the references cannot conflict regardless of bounds.
    Otherwise ``transformed`` carries the reduced inequality system.
    """

    independent: bool
    transformed: TransformedSystem | None = None


def gcd_transform(problem: DependenceProblem) -> GcdOutcome:
    """Run the Extended GCD test and change of variables (section 3.1)."""
    n = problem.n_vars
    m = len(problem.equations)

    if m == 0:
        # No subscript equalities (e.g. scalar treated as rank-0): every
        # variable stays free and x == t.
        identity = IntMatrix.identity(n)
        return _build_transformed(
            problem,
            u=identity,
            determined=[],
            rank=0,
        )

    # A has one row per variable and one column per equation.
    a = IntMatrix(
        [[problem.equations[e][0][j] for e in range(m)] for j in range(n)]
    )
    rhs = [problem.equations[e][1] for e in range(m)]

    fact = echelon_factor(a)
    d, u, rank = fact.d, fact.u, fact.rank

    # Forward-substitute t @ D == rhs, column by column.
    determined: list[int] = []
    pivot_cols = list(fact.pivot_cols)
    for col in range(m):
        acc = sum(determined[k] * d[k, col] for k in range(len(determined)))
        if len(determined) < rank and pivot_cols[len(determined)] == col:
            pivot = d[len(determined), col]
            numer = rhs[col] - acc
            if numer % pivot != 0:
                return GcdOutcome(independent=True)
            determined.append(numer // pivot)
        else:
            if acc != rhs[col]:
                return GcdOutcome(independent=True)

    return _build_transformed(problem, u=u, determined=determined, rank=rank)


def _build_transformed(
    problem: DependenceProblem,
    u: IntMatrix,
    determined: list[int],
    rank: int,
) -> GcdOutcome:
    n = problem.n_vars
    # x = t @ U with t = (determined constants | free variables).
    x_offset = [
        sum(determined[k] * u[k, j] for k in range(rank)) for j in range(n)
    ]
    x_basis = [tuple(u.row(k)) for k in range(rank, n)]
    t_names = tuple(f"t{k + 1}" for k in range(len(x_basis)))

    # The t-space bound system is built lazily (flat first) on access.
    transformed = TransformedSystem(
        t_names=t_names,
        x_offset=tuple(x_offset),
        x_basis=tuple(x_basis),
        problem=problem,
    )
    return GcdOutcome(independent=False, transformed=transformed)
