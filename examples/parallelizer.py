#!/usr/bin/env python3
"""A miniature parallelizing-compiler front end.

Parses a mini-Fortran program, runs the prepass optimizer (constant
propagation, induction-variable and forward substitution, loop
normalization), performs exact dependence analysis with direction
vectors, and reports which loops can run their iterations in parallel
— the end-to-end pipeline the paper's analysis was built for.

Run:  python examples/parallelizer.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.core.parallel import analyze_parallelism
from repro.opt import compile_source

SOURCE = """
# A small numerical kernel collection.
read(n)

# (1) independent updates: every iteration writes its own element
for i = 1 to n do
  x[i] = x[i] + 1
end for

# (2) a recurrence: iteration i needs iteration i-1's result
for i = 2 to n do
  y[i] = y[i - 1] + 1
end for

# (3) 2-D relaxation: the row loop carries, the column loop is parallel
for i = 2 to 100 do
  for j = 1 to 100 do
    u[i][j] = u[i - 1][j]
  end for
end for

# (4) induction variable masking a parallel loop
k = 0
for i = 1 to 50 do
  k = k + 2
  z[k] = z[k] + 3
end for
"""


def main():
    compiled = compile_source(SOURCE, name="kernels")
    program = compiled.program
    print(f"compiled {len(program.statements)} array statements; "
          f"symbolic terms: {sorted(compiled.symbols) or 'none'}\n")

    analyzer = DependenceAnalyzer(memoizer=Memoizer())
    reports = analyze_parallelism(program, analyzer)

    print("loop parallelism report:")
    for report in reports:
        status = "PARALLEL" if report.parallel else "serial  "
        print(f"  [{status}] {report.loop}")
        for site1, site2 in report.carriers[:3]:
            print(f"             carried by {site1.ref} <-> {site2.ref}")
    print()
    hits = analyzer.memoizer.with_bounds.stats.hits
    print(f"(memoization served {hits} repeated queries)")


if __name__ == "__main__":
    main()
