#!/usr/bin/env python3
"""Quickstart: exact dependence testing on the paper's opening examples.

The paper opens with two loops::

    for i = 1 to 10 do          for i = 1 to 10 do
        a[i] = a[i+10] + 3          a[i+1] = a[i] + 3
    end for                     end for

The first is fully parallel (writes never overlap reads); the second is
forced sequential by a loop-carried dependence.  This script analyzes
both with the cascade, showing the verdict, the deciding test, the
witness iteration pair, and the distance/direction vectors.

Run:  python examples/quickstart.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import DependenceAnalyzer, builder as B


def show(title, analyzer, write, read, nest):
    print(f"== {title}")
    print(f"   write {write}   read {read}   in:")
    for line in str(nest).splitlines():
        print(f"     {line}")
    result = analyzer.analyze(write, nest, read, nest)
    verdict = "DEPENDENT" if result.dependent else "INDEPENDENT"
    print(f"   -> {verdict} (decided by the {result.decided_by} test)")
    if result.witness is not None:
        print(f"      witness (i, i'): {result.witness}")
    if result.dependent and result.distance is not None:
        print(f"      constant distance per level: {result.distance}")
    directions = analyzer.directions(write, nest, read, nest)
    if directions.dependent:
        vectors = ", ".join(
            "(" + " ".join(v) + ")" for v in sorted(directions.vectors)
        )
        print(f"      direction vectors: {vectors}")
    print()


def main():
    analyzer = DependenceAnalyzer()
    nest = B.nest(("i", 1, 10))

    show(
        "paper intro, loop 1: a[i] = a[i+10] + 3",
        analyzer,
        B.ref("a", [B.v("i")], write=True),
        B.ref("a", [B.v("i") + 10]),
        nest,
    )
    show(
        "paper intro, loop 2: a[i+1] = a[i] + 3",
        analyzer,
        B.ref("a", [B.v("i") + 1], write=True),
        B.ref("a", [B.v("i")]),
        nest,
    )

    # The paper's section 3.2 worked example: coupled subscripts that
    # traditional per-dimension tests cannot refute.
    nest2 = B.nest(("i1", 1, 10), ("i2", 1, 10))
    show(
        "section 3.2: a[i1][i2] = a[i2+10][i1+9]",
        analyzer,
        B.ref("a", [B.v("i1"), B.v("i2")], write=True),
        B.ref("a", [B.v("i2") + 10, B.v("i1") + 9]),
        nest2,
    )


if __name__ == "__main__":
    main()
