#!/usr/bin/env python3
"""Figure 1 of the paper: the Loop Residue constraint graph.

Constraints (after GCD preprocessing and the exact division step)::

    t1 >= 1        (arc  n0 -> t1, value -1)
    t3 <= 4        (arc  t3 -> n0, value  4)
    t1 <= t3 - 4   (arc  t1 -> t3, value -4)

The cycle t1 -> t3 -> n0 -> t1 has value -4 + 4 - 1 = -1 < 0, so the
system is infeasible: the references are independent.  This script
prints the graph and the decision, then shows the same system made
feasible by relaxing the last constraint.

Run:  python examples/loop_residue_figure1.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.deptests.base import Verdict
from repro.deptests.loop_residue import LoopResidueTest, build_residue_graph
from repro.system.constraints import ConstraintSystem


def show(title, bound_for_t1_t3):
    system = ConstraintSystem(("t1", "t3"))
    system.add([-1, 0], -1)  # t1 >= 1
    system.add([0, 1], 4)  # t3 <= 4
    system.add([1, -1], bound_for_t1_t3)  # t1 - t3 <= bound

    graph = build_residue_graph(system)
    print(f"== {title}")
    for constraint in system.constraints:
        print(f"   {constraint}")
    print("   residue graph arcs (src -> dst, value):")
    for src, dst, value in graph.arcs:
        print(
            f"     {graph.node_name(src, system.names)} -> "
            f"{graph.node_name(dst, system.names)}   {value:+d}"
        )
    result = LoopResidueTest().run(system)
    if result.verdict is Verdict.INDEPENDENT:
        print("   negative cycle -> INDEPENDENT\n")
    else:
        print(f"   no negative cycle -> DEPENDENT, witness {result.witness}\n")


def main():
    show("Figure 1: t1 <= t3 - 4 (cycle value -1)", -4)
    show("relaxed: t1 <= t3 - 3 (cycle value 0)", -3)


if __name__ == "__main__":
    main()
