#!/usr/bin/env python3
"""Loop-transformation legality from exact direction vectors.

Exact dependence analysis is what makes aggressive loop restructuring
safe.  This example checks three classic transformations on three
kernels:

* matrix multiply — fully permutable (all six loop orders legal);
* a skewed recurrence with a (<, >) dependence — the textbook case
  where interchange is *illegal*;
* a column-major traversal fixed by a legal interchange.

Run:  python examples/loop_interchange.py
"""

import pathlib
import sys
from itertools import permutations

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.transforms import (
    gather_dependences,
    interchange_legal,
    permutation_legal,
    reversal_legal,
)
from repro.opt import compile_source

MATMUL = """
for i = 1 to 100 do
  for j = 1 to 100 do
    for k = 1 to 100 do
      c[i][j] = c[i][j] + a[i][k] * b[k][j]
    end
  end
end
"""

SKEWED = """
for i = 2 to 100 do
  for j = 1 to 99 do
    a[i][j] = a[i - 1][j + 1]
  end
end
"""

COLUMN_MAJOR = """
for i = 1 to 100 do
  for j = 2 to 100 do
    a[i][j] = a[i][j - 1] + b[j][i]
  end
end
"""


def main():
    print("== matrix multiply: which loop permutations are legal?")
    edges = gather_dependences(compile_source(MATMUL, name="matmul").program)
    legal = [
        perm for perm in permutations(range(3)) if permutation_legal(edges, perm)
    ]
    names = "ijk"
    print(
        "   legal orders:",
        ", ".join("".join(names[p] for p in perm) for perm in legal),
    )
    print(f"   ({len(legal)}/6 — the c[i][j] reduction vectors are (=,=,<))\n")

    print("== skewed recurrence a[i][j] = a[i-1][j+1]")
    edges = gather_dependences(compile_source(SKEWED, name="skewed").program)
    for edge in edges:
        print(f"   {edge.kind} dependence with vector {edge.vector}")
    print(f"   interchange (i<->j) legal? {interchange_legal(edges, 0, 2)}")
    print("   (the (<, >) vector would become (>, <): sink before source)\n")

    print("== column-major traversal")
    edges = gather_dependences(
        compile_source(COLUMN_MAJOR, name="col").program
    )
    print(f"   interchange legal? {interchange_legal(edges, 0, 2)}")
    print(f"   inner-loop reversal legal? {reversal_legal(edges, 1)}")
    print(f"   outer-loop reversal legal? {reversal_legal(edges, 0)}")


if __name__ == "__main__":
    main()
