#!/usr/bin/env python3
"""Memoization in action — paper section 5.

Runs one synthetic PERFECT program (NA, the largest mixed one) through
the analyzer twice: without memoization and with the paper's two-table
scheme, printing the test counts and hit rates that Tables 2 and 3
aggregate.  Also shows the improved (unused-variable-eliminated) keys
merging the paper's (a)/(b) example programs.

Run:  python examples/memoization_demo.py
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.core.stats import TEST_ORDER
from repro.perfect import PROGRAM_SPECS, generate_program


def run(queries, memoizer):
    analyzer = DependenceAnalyzer(memoizer=memoizer, want_witness=False)
    start = time.perf_counter()
    for query in queries:
        analyzer.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
    elapsed = time.perf_counter() - start
    return analyzer, elapsed


def main():
    spec = next(s for s in PROGRAM_SPECS if s.name == "NA")
    queries = generate_program(spec)
    print(f"program NA: {len(queries)} dependence queries\n")

    plain, t_plain = run(queries, memoizer=None)
    print("without memoization:")
    for test in TEST_ORDER:
        print(f"  {test:18s} {plain.stats.decided_by.get(test, 0):5d} calls")
    print(f"  wall clock         {1000 * t_plain:8.1f} ms\n")

    memo = Memoizer(improved=True)
    memoized, t_memo = run(queries, memoizer=memo)
    print("with memoization (improved keys):")
    for test in TEST_ORDER:
        print(f"  {test:18s} {memoized.stats.decided_by.get(test, 0):5d} calls")
    wb = memo.with_bounds.stats
    nb = memo.no_bounds.stats
    print(f"  with-bounds table  {wb.queries} queries, {wb.hits} hits, "
          f"{wb.unique} unique ({100 * wb.unique_fraction:.1f}%)")
    print(f"  no-bounds table    {nb.queries} queries, {nb.hits} hits, "
          f"{nb.unique} unique")
    print(f"  wall clock         {1000 * t_memo:8.1f} ms "
          f"({t_plain / t_memo:.1f}x faster)\n")

    # The paper's (a)/(b) merging example.
    from repro.ir import builder as B

    nest = B.nest(("i", 1, 10), ("j", 1, 10))
    analyzer = DependenceAnalyzer(memoizer=Memoizer(improved=True))
    analyzer.analyze(
        B.ref("a", [B.v("i") + 10], write=True), nest,
        B.ref("a", [B.v("i")]), nest,
    )
    second = analyzer.analyze(
        B.ref("a", [B.v("j") + 10], write=True), nest,
        B.ref("a", [B.v("j")]), nest,
    )
    print("improved keys: a[i+10]=a[i] and a[j+10]=a[j] under the same "
          f"i,j nest collapse to one case -> from_memo={second.from_memo}")


if __name__ == "__main__":
    main()
