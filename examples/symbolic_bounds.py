#!/usr/bin/env python3
"""Symbolic (unknown) terms in dependence testing — paper section 8.

Demonstrates the three behaviours the paper highlights:

1. the prepass optimizer turning induction variables and constants
   into affine subscripts (the paper's ``iz = iz + 2`` example);
2. a genuinely unknown ``read(n)`` value flowing through the analysis
   as an unbounded shared variable, with no loss of exactness;
3. symbolic cancellation: a shift of ``n`` on both sides of a pair is
   refuted exactly even though ``n`` itself is unknown.

Run:  python examples/symbolic_bounds.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.analyzer import DependenceAnalyzer
from repro.ir.program import reference_pairs
from repro.lang.parser import parse
from repro.opt import compile_source, optimize


def main():
    analyzer = DependenceAnalyzer()

    # 1. The paper's optimizer example.
    source = """
n = 100
iz = 0
for i = 1 to 10 do
  iz = iz + 2
  a[iz + n] = a[iz + 2*n + 1] + 3
end for
"""
    print("== prepass optimization (section 8)")
    print("   before:", "a[iz + n] = a[iz + 2*n + 1] + 3")
    optimized = optimize(parse(source))
    program = compile_source(source).program
    stmt = program.statements[0]
    print(f"   after : {stmt.write} = {stmt.reads[0]} + 3")
    site1, site2 = reference_pairs(program)[0]
    result = analyzer.analyze_sites(site1, site2)
    print(f"   -> {'DEPENDENT' if result.dependent else 'INDEPENDENT'} "
          f"({result.decided_by})\n")

    # 2. A true runtime unknown.
    source2 = """
read(n)
for i = 1 to 10 do
  a[i + n] = a[i + 2*n + 1] + 3
end for
"""
    print("== unknown n in subscripts (the paper's read(n) example)")
    program2 = compile_source(source2).program
    site1, site2 = reference_pairs(program2)[0]
    result2 = analyzer.analyze_sites(site1, site2)
    print(f"   {site1.ref} vs {site2.ref}")
    print(f"   -> {'DEPENDENT' if result2.dependent else 'INDEPENDENT'} "
          f"({result2.decided_by}); exact: some n admits a collision")
    if result2.witness is not None:
        print(f"      e.g. witness (i, i', n) = {result2.witness}\n")

    # 3. Symbolic cancellation.
    source3 = """
read(n)
for i = 1 to 10 do
  b[i + n] = b[i + n + 11] + 1
end for
"""
    print("== symbolic cancellation")
    program3 = compile_source(source3).program
    site1, site2 = reference_pairs(program3)[0]
    result3 = analyzer.analyze_sites(site1, site2)
    print(f"   {site1.ref} vs {site2.ref}")
    print(f"   -> {'DEPENDENT' if result3.dependent else 'INDEPENDENT'} "
          f"({result3.decided_by}): the n cancels, the shift of 11 "
          "exceeds the 10-iteration range for every n")


if __name__ == "__main__":
    main()
