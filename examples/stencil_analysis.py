#!/usr/bin/env python3
"""Stencil dependence analysis: Jacobi vs Gauss-Seidel.

The classic motivating workloads for distance/direction vectors:

* **Jacobi** reads only the *previous* grid ``b`` and writes ``a`` — no
  dependences between iterations at all; both loops parallelize.
* **Gauss-Seidel** updates in place, reading west and north neighbours
  it just wrote — dependences with distance (1,0) and (0,1); neither
  loop alone parallelizes, but the distances prove a wavefront
  (skewed) schedule is legal.

Run:  python examples/stencil_analysis.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.analyzer import DependenceAnalyzer
from repro.core.parallel import analyze_parallelism
from repro.ir.program import reference_pairs
from repro.opt import compile_source

JACOBI = """
for i = 2 to 99 do
  for j = 2 to 99 do
    a[i][j] = b[i - 1][j] + b[i + 1][j] + b[i][j - 1] + b[i][j + 1]
  end for
end for
"""

GAUSS_SEIDEL = """
for i = 2 to 99 do
  for j = 2 to 99 do
    a[i][j] = a[i - 1][j] + a[i][j - 1] + a[i + 1][j] + a[i][j + 1]
  end for
end for
"""


def analyze(name, source):
    print(f"== {name}")
    program = compile_source(source, name=name).program
    analyzer = DependenceAnalyzer()

    distances = set()
    for site1, site2 in reference_pairs(program):
        result = analyzer.analyze(site1.ref, site1.nest, site2.ref, site2.nest)
        if result.dependent and result.distance is not None:
            distances.add(result.distance)
            dirs = analyzer.directions(
                site1.ref, site1.nest, site2.ref, site2.nest
            )
            vectors = ", ".join(
                "(" + " ".join(v) + ")" for v in sorted(dirs.vectors)
            )
            print(
                f"   {site1.ref} <-> {site2.ref}: distance {result.distance}, "
                f"directions {vectors}"
            )

    for report in analyze_parallelism(program, DependenceAnalyzer()):
        status = "PARALLEL" if report.parallel else "serial"
        print(f"   loop {report.loop.var}: {status}")

    if distances and all(
        d is not None and all(c is not None for c in d) for d in distances
    ):
        # Normalize each dependence to its lexicographically positive
        # form (a "backward" pair order is the same dependence flipped).
        def normalize(d):
            for c in d:
                if c > 0:
                    return d
                if c < 0:
                    return tuple(-x for x in d)
            return d

        normalized = {normalize(d) for d in distances}
        if all(all(c >= 0 for c in d) for d in normalized):
            print(
                f"   normalized distances {sorted(normalized)} are all "
                "non-negative -> wavefront (skewed) schedule is legal"
            )
    print()


def main():
    analyze("Jacobi (out of place)", JACOBI)
    analyze("Gauss-Seidel (in place)", GAUSS_SEIDEL)


if __name__ == "__main__":
    main()
