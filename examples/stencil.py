"""A real-Python Jacobi stencil the frontend lowers to repro IR.

Twin of ``stencil.loop``: ``python -m repro deps examples/stencil.py``
and ``python -m repro deps examples/stencil.loop`` print the identical
dependence graph — the frontend contract, pinned by the corpus tests.
"""


def jacobi(A, B, n):
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            B[i][j] = A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            A[i][j] = B[i][j]
