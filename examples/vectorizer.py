#!/usr/bin/env python3
"""Loop distribution and vectorization driven by exact dependences.

The end of the pipeline the paper's introduction motivates: exact
direction vectors feed an Allen-Kennedy-style code generator that
distributes loops over dependence-graph SCCs and vectorizes everything
that can be.  The last kernel shows what exactness buys: an inexact
analyzer would assume a dependence between the two coupled references
and serialize a loop that is in fact fully vectorizable.

Run:  python examples/vectorizer.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import banerjee_independent, simple_gcd_independent
from repro.core.vectorize import vectorize
from repro.ir.program import reference_pairs
from repro.opt import compile_source

KERNELS = [
    (
        "distribute + vectorize (producer feeds consumer across iterations)",
        """
for i = 2 to 100 do
  a[i] = b[i] + 1
  c[i] = a[i - 1] + 2
end
""",
    ),
    (
        "mutual recurrence stays fused and serial",
        """
for i = 2 to 100 do
  a[i] = b[i - 1]
  b[i] = a[i - 1]
end
""",
    ),
    (
        "2-D relaxation: outer parallel, inner serial",
        """
for i = 1 to 50 do
  for j = 2 to 50 do
    u[i][j] = u[i][j - 1]
  end
end
""",
    ),
    (
        "exactness pays: coupled subscripts a[i][i] vs a[j][j+1]",
        """
for i = 1 to 50 do
  for j = 1 to 50 do
    a[i][i] = a[j][j + 1] + 1
  end
end
""",
    ),
]


def main():
    for title, source in KERNELS:
        print(f"== {title}")
        program = compile_source(source).program
        result = vectorize(program)
        for line in result.render().splitlines():
            print(f"   {line}")
        print()

    # Show the inexact baseline failing on the last kernel.
    program = compile_source(KERNELS[-1][1]).program
    (site1, site2), *_ = reference_pairs(program)
    refuted_gcd = simple_gcd_independent(
        site1.ref, site1.nest, site2.ref, site2.nest
    )
    refuted_ban = banerjee_independent(
        site1.ref, site1.nest, site2.ref, site2.nest
    )
    print(
        "traditional tests on the coupled kernel: "
        f"simple GCD refutes? {refuted_gcd}; Banerjee refutes? {refuted_ban} "
        "-> they would assume a dependence and serialize both loops."
    )


if __name__ == "__main__":
    main()
