"""Benchmark: Table 4 — direction vectors via naive hierarchical refinement.

Counting every direction tested, the unoptimized Burke-Cytron hierarchy
multiplies test counts enormously (paper: 332 plain tests become
~12,500 direction tests).  The companion Table 5 benchmark shows the
pruned version.
"""

from repro.harness.experiments import run_table4


def test_bench_table4(benchmark, capsys):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.text)
    # Shape check: naive refinement costs far more than the 332 plain
    # unique tests (paper: ~12,500).
    assert result.extra["total_tests"] > 2_000
